"""Hierarchical spans on the simulated clock, exportable as a Chrome trace.

The repo's cost model (:mod:`repro.common.accounting`) produces *simulated*
seconds — host wall time measures Python, not the architecture.  A
:class:`TraceRecorder` therefore keeps its own simulated timeline and lets
instrumentation open nested spans against it:

* a span opened **with a meter** anchors that meter's ``elapsed_sec`` onto
  the global timeline, so everything charged inside the span lands at the
  right simulated instant;
* a span opened **without a meter** (e.g. one analyst query) brackets its
  children: when an inner anchored meter closes, the recorder folds the
  elapsed simulated time back into the global clock, so the outer span's
  duration is the sum of its children's simulated time.

Parallel work (map tasks fanning out across nodes) is recorded with
:meth:`TraceRecorder.record` on per-node *tracks*, which export as separate
threads so overlapping tasks render side by side.

Export is the Chrome trace-event JSON format (``ph: "X"`` complete events
plus thread-name metadata), loadable in Perfetto / ``chrome://tracing``.
Simulated seconds map to trace microseconds.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

_DEFAULT_TRACK = "main"


@dataclass
class Span:
    """One completed span on the simulated timeline."""

    name: str
    category: str
    track: str
    start: float  # simulated seconds since session start
    duration: float
    depth: int  # nesting depth at open time (0 = top level)
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def contains(self, other: "Span") -> bool:
        """Whether ``other`` nests inside this span on the timeline."""
        eps = 1e-12
        return (
            other.start >= self.start - eps and other.end <= self.end + eps
        )


class TraceRecorder:
    """Collects spans against a global simulated clock."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._base = 0.0  # global simulated time with no meter anchored
        # Stack of (meter, offset): global now = offset + meter.elapsed_sec.
        self._anchors: List[Tuple[Any, float]] = []
        self._depth = 0

    @property
    def now(self) -> float:
        """Current global simulated time."""
        if self._anchors:
            meter, offset = self._anchors[-1]
            return offset + meter.elapsed_sec
        return self._base

    @contextmanager
    def span(
        self,
        name: str,
        meter: Any = None,
        category: str = "span",
        track: str = _DEFAULT_TRACK,
        **args: Any,
    ) -> Iterator[Dict[str, Any]]:
        """Open a nested span; yields the mutable ``args`` dict.

        When ``meter`` is a :class:`~repro.common.accounting.CostMeter`,
        the span's duration follows the meter's simulated ``elapsed_sec``
        and the span records the cost *deltas* accrued inside it
        (``bytes_scanned``, ``bytes_shipped``, ``nodes_touched``, ...).
        """
        anchored = meter is not None and (
            not self._anchors or self._anchors[-1][0] is not meter
        )
        if anchored:
            self._anchors.append((meter, self.now - meter.elapsed_sec))
        start = self.now
        before = meter.freeze() if meter is not None else None
        depth = self._depth
        self._depth += 1
        try:
            yield args
        finally:
            self._depth -= 1
            end = self.now
            if meter is not None:
                after = meter.freeze()
                args.setdefault("bytes_scanned", after.bytes_scanned - before.bytes_scanned)
                args.setdefault(
                    "bytes_shipped",
                    (after.bytes_shipped_lan + after.bytes_shipped_wan)
                    - (before.bytes_shipped_lan + before.bytes_shipped_wan),
                )
                args.setdefault("nodes_touched", after.nodes_touched - before.nodes_touched)
                args.setdefault("node_sec", after.node_sec - before.node_sec)
            if anchored:
                self._pop_anchor(end)
            elif not self._anchors:
                self._base = max(self._base, end)
            self.spans.append(
                Span(
                    name=name,
                    category=category,
                    track=track,
                    start=start,
                    duration=max(0.0, end - start),
                    depth=depth,
                    args=args,
                )
            )

    def record(
        self,
        name: str,
        start: float,
        duration: float,
        category: str = "task",
        track: str = _DEFAULT_TRACK,
        **args: Any,
    ) -> Span:
        """Record an already-timed span (e.g. one parallel node-task).

        ``start`` is in global simulated seconds — callers typically take
        :attr:`now` at the beginning of a parallel phase and lay tasks out
        from there on per-node tracks.
        """
        span = Span(
            name=name,
            category=category,
            track=track,
            start=start,
            duration=max(0.0, duration),
            depth=self._depth,
            args=args,
        )
        self.spans.append(span)
        return span

    def _pop_anchor(self, end: float) -> None:
        """Close an anchored meter, folding its elapsed time outward."""
        self._anchors.pop()
        if self._anchors:
            meter, offset = self._anchors[-1]
            # Push the outer local clock forward so time stays monotonic
            # even though the outer meter never saw the inner one's work.
            self._anchors[-1] = (meter, max(offset, end - meter.elapsed_sec))
        else:
            self._base = max(self._base, end)

    # Introspection ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def find(self, name_prefix: str) -> List[Span]:
        """All spans whose name starts with ``name_prefix``."""
        return [s for s in self.spans if s.name.startswith(name_prefix)]

    def children_of(self, parent: Span) -> List[Span]:
        """Spans strictly nested inside ``parent`` (same or other tracks)."""
        return [
            s
            for s in self.spans
            if s is not parent and parent.contains(s) and s.depth >= parent.depth
        ]

    # Export -----------------------------------------------------------------
    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON document (dict, ready to dump)."""
        events: List[Dict[str, Any]] = []
        tids: Dict[str, int] = {}

        def tid_for(track: str) -> int:
            if track not in tids:
                tids[track] = len(tids)
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 1,
                        "tid": tids[track],
                        "args": {"name": track},
                    }
                )
            return tids[track]

        tid_for(_DEFAULT_TRACK)  # keep the main track first
        for span in self.spans:
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "pid": 1,
                    "tid": tid_for(span.track),
                    "ts": span.start * 1e6,  # simulated sec -> trace "us"
                    "dur": span.duration * 1e6,
                    "args": _jsonable(span.args),
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export(self, path: str, overwrite: bool = False) -> str:
        """Write the Chrome trace JSON to ``path``; returns the path.

        Parent directories are created; an existing file is refused
        unless ``overwrite=True``.
        """
        from repro.obs.export import prepare_export_path

        path = prepare_export_path(path, overwrite=overwrite)
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=None)
        return path


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to JSON-serializable builtins."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    # numpy scalars and anything else with an item()/float view
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except Exception:
            pass
    return str(value)
