"""The observer interface the SEA stack is instrumented against.

Instrumented code (engines, agents, routers, the cost meter) talks to an
:class:`Observer`.  The base class *is* the null implementation: every
hook is a no-op, ``enabled`` is False, and ``span`` returns a shared
no-op context manager — so the uninstrumented path costs one attribute
check and zero allocations per charge.  Hot loops additionally guard
with ``if observer.enabled:`` so even argument packing is skipped.

:class:`StackObserver` is the recording implementation, bundling the
three surfaces of :mod:`repro.obs`:

* ``trace`` — a :class:`~repro.obs.trace.TraceRecorder` (Chrome trace);
* ``metrics`` — a :class:`~repro.obs.metrics.MetricsRegistry`
  (Prometheus text exposition);
* ``events`` — an :class:`~repro.obs.events.EventLog` (JSONL).

It also implements ``on_charge``, turning every simulated cost charge
into metric increments, so byte/second accounting shows up in the
metrics without the engines doing anything beyond carrying the observer
on their :class:`~repro.common.accounting.CostMeter`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, TraceRecorder


class _NullSpan:
    """Reusable no-op context manager (one shared instance, no state)."""

    __slots__ = ()

    def __enter__(self) -> Dict[str, Any]:
        return {}

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Observer:
    """Null observer: every hook is free.  Subclass to record."""

    __slots__ = ()

    enabled = False

    @property
    def now(self) -> float:
        """Current global simulated time (always 0 when not recording)."""
        return 0.0

    # Tracing ----------------------------------------------------------------
    def span(
        self,
        name: str,
        meter: Any = None,
        category: str = "span",
        track: str = "main",
        **args: Any,
    ):
        """A no-op context manager; :class:`StackObserver` records a span."""
        return _NULL_SPAN

    def record_span(
        self,
        name: str,
        start: float,
        duration: float,
        category: str = "task",
        track: str = "main",
        **args: Any,
    ) -> Optional[Span]:
        return None

    # Cost charges (called by CostMeter on every charge) ---------------------
    def on_charge(
        self, kind: str, node_id: str, num_bytes: int, seconds: float
    ) -> None:
        pass

    # Metrics ----------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0, **labels: str) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        pass

    def observe(self, name: str, value: float, **labels: str) -> None:
        pass

    # Events -----------------------------------------------------------------
    def event(self, type: str, **fields: Any) -> None:
        pass


NULL_OBSERVER = Observer()


class StackObserver(Observer):
    """Recording observer: simulated-clock trace + metrics + event log."""

    enabled = True

    def __init__(
        self,
        trace: Optional[TraceRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
        event_capacity: Optional[int] = None,
    ) -> None:
        self.trace = trace or TraceRecorder()
        self.metrics = metrics or MetricsRegistry()
        self.events = events or EventLog(capacity=event_capacity)

    @property
    def now(self) -> float:
        return self.trace.now

    # Tracing ----------------------------------------------------------------
    def span(
        self,
        name: str,
        meter: Any = None,
        category: str = "span",
        track: str = "main",
        **args: Any,
    ):
        return self.trace.span(
            name, meter=meter, category=category, track=track, **args
        )

    def record_span(
        self,
        name: str,
        start: float,
        duration: float,
        category: str = "task",
        track: str = "main",
        **args: Any,
    ) -> Optional[Span]:
        return self.trace.record(
            name, start, duration, category=category, track=track, **args
        )

    # Cost charges -----------------------------------------------------------
    def on_charge(
        self, kind: str, node_id: str, num_bytes: int, seconds: float
    ) -> None:
        metrics = self.metrics
        metrics.counter(
            "sea_charges_total", "Simulated cost charges by kind"
        ).labels(kind=kind).inc()
        if num_bytes:
            metrics.counter(
                "sea_charge_bytes_total", "Simulated bytes by charge kind"
            ).labels(kind=kind).inc(num_bytes)
        metrics.counter(
            "sea_node_seconds_total", "Simulated node-occupancy seconds"
        ).inc(seconds)

    # Metrics ----------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0, **labels: str) -> None:
        self.metrics.counter(name).labels(**labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        self.metrics.gauge(name).labels(**labels).set(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        self.metrics.histogram(name).labels(**labels).observe(value)

    # Events -----------------------------------------------------------------
    def event(self, type: str, **fields: Any) -> None:
        self.events.emit(type, ts=self.now, **fields)

    # Exports ----------------------------------------------------------------
    def export_trace(self, path: str) -> str:
        return self.trace.export(path)

    def export_metrics(self, path: str) -> str:
        return self.metrics.export(path)

    def export_events(self, path: str) -> str:
        return self.events.export(path)

    def snapshot(self) -> Dict[str, float]:
        """Flat metrics snapshot plus trace/event volumes.

        The shape benchmarks attach to ``benchmark.extra_info``.
        """
        out = self.metrics.as_dict()
        out["obs_spans_recorded"] = float(len(self.trace.spans))
        out["obs_events_recorded"] = float(len(self.events))
        out["obs_simulated_seconds"] = float(self.trace.now)
        return out


def attach_observer(component: Any, observer: Observer) -> Any:
    """Attach ``observer`` to any component that supports observation.

    Prefers the component's own ``attach_observer`` method; falls back to
    setting an ``observer`` attribute.  Returns the observer for chaining.
    """
    hook = getattr(component, "attach_observer", None)
    if callable(hook) and hook is not attach_observer:
        hook(observer)
    else:
        component.observer = observer
    return observer
