"""The observer interface the SEA stack is instrumented against.

Instrumented code (engines, agents, routers, the cost meter) talks to an
:class:`Observer`.  The base class *is* the null implementation: every
hook is a no-op, ``enabled`` is False, and ``span`` returns a shared
no-op context manager — so the uninstrumented path costs one attribute
check and zero allocations per charge.  Hot loops additionally guard
with ``if observer.enabled:`` so even argument packing is skipped.

:class:`StackObserver` is the recording implementation, bundling the
three surfaces of :mod:`repro.obs`:

* ``trace`` — a :class:`~repro.obs.trace.TraceRecorder` (Chrome trace);
* ``metrics`` — a :class:`~repro.obs.metrics.MetricsRegistry`
  (Prometheus text exposition);
* ``events`` — an :class:`~repro.obs.events.EventLog` (JSONL).

It also implements ``on_charge``, turning every simulated cost charge
into metric increments, so byte/second accounting shows up in the
metrics without the engines doing anything beyond carrying the observer
on their :class:`~repro.common.accounting.CostMeter`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.events import DEFAULT_EVENT_CAPACITY, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import FlightRecorder, QueryProfile
from repro.obs.trace import Span, TraceRecorder


class _NullSpan:
    """Reusable no-op context manager (one shared instance, no state)."""

    __slots__ = ()

    def __enter__(self) -> Dict[str, Any]:
        return {}

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Observer:
    """Null observer: every hook is free.  Subclass to record."""

    __slots__ = ()

    enabled = False

    @property
    def now(self) -> float:
        """Current global simulated time (always 0 when not recording)."""
        return 0.0

    # Tracing ----------------------------------------------------------------
    def span(
        self,
        name: str,
        meter: Any = None,
        category: str = "span",
        track: str = "main",
        **args: Any,
    ):
        """A no-op context manager; :class:`StackObserver` records a span."""
        return _NULL_SPAN

    def record_span(
        self,
        name: str,
        start: float,
        duration: float,
        category: str = "task",
        track: str = "main",
        **args: Any,
    ) -> Optional[Span]:
        return None

    # Cost charges (called by CostMeter on every charge) ---------------------
    def on_charge(
        self, kind: str, node_id: str, num_bytes: int, seconds: float
    ) -> None:
        pass

    # Metrics ----------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0, **labels: str) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        pass

    def observe(self, name: str, value: float, **labels: str) -> None:
        pass

    # Events -----------------------------------------------------------------
    def event(self, type: str, **fields: Any) -> None:
        pass

    # Query profiles (the flight recorder; see repro.obs.profile) ------------
    def profile_begin(self, query: Any) -> None:
        pass

    def profile_note(self, kind: str, query: Any = None, **fields: Any) -> None:
        pass

    def profile_end(self, query: Any, **outcome: Any) -> Optional["QueryProfile"]:
        return None

    def profile_activate(self, query: Any):
        """No-op activation context (shared instance, no allocation)."""
        return _NULL_SPAN


NULL_OBSERVER = Observer()


class StackObserver(Observer):
    """Recording observer: simulated-clock trace + metrics + event log."""

    enabled = True

    def __init__(
        self,
        trace: Optional[TraceRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
        event_capacity: Optional[int] = DEFAULT_EVENT_CAPACITY,
        profiles: Optional[FlightRecorder] = None,
        profile_capacity: int = 4096,
    ) -> None:
        """Both in-memory logs are bounded by default so long-running
        sessions cannot grow without bound: ``event_capacity`` caps the
        decision log (None = unbounded) and ``profile_capacity`` caps the
        completed-profile buffer; drops are counted, never silent (see
        :meth:`snapshot`)."""
        self.trace = trace or TraceRecorder()
        self.metrics = metrics or MetricsRegistry()
        self.events = events or EventLog(capacity=event_capacity)
        self.profiles = profiles or FlightRecorder(capacity=profile_capacity)

    @property
    def now(self) -> float:
        return self.trace.now

    # Tracing ----------------------------------------------------------------
    def span(
        self,
        name: str,
        meter: Any = None,
        category: str = "span",
        track: str = "main",
        **args: Any,
    ):
        return self.trace.span(
            name, meter=meter, category=category, track=track, **args
        )

    def record_span(
        self,
        name: str,
        start: float,
        duration: float,
        category: str = "task",
        track: str = "main",
        **args: Any,
    ) -> Optional[Span]:
        return self.trace.record(
            name, start, duration, category=category, track=track, **args
        )

    # Cost charges -----------------------------------------------------------
    def on_charge(
        self, kind: str, node_id: str, num_bytes: int, seconds: float
    ) -> None:
        metrics = self.metrics
        metrics.counter(
            "sea_charges_total", "Simulated cost charges by kind"
        ).labels(kind=kind).inc()
        if num_bytes:
            metrics.counter(
                "sea_charge_bytes_total", "Simulated bytes by charge kind"
            ).labels(kind=kind).inc(num_bytes)
        metrics.counter(
            "sea_node_seconds_total", "Simulated node-occupancy seconds"
        ).inc(seconds)

    # Metrics ----------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0, **labels: str) -> None:
        self.metrics.counter(name).labels(**labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        self.metrics.gauge(name).labels(**labels).set(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        self.metrics.histogram(name).labels(**labels).observe(value)

    # Events -----------------------------------------------------------------
    def event(self, type: str, **fields: Any) -> None:
        self.events.emit(type, ts=self.now, **fields)

    # Query profiles ---------------------------------------------------------
    def profile_begin(self, query: Any) -> None:
        self.profiles.begin(query)

    def profile_note(self, kind: str, query: Any = None, **fields: Any) -> None:
        self.profiles.note(kind, query=query, **fields)

    def profile_end(self, query: Any, **outcome: Any) -> Optional[QueryProfile]:
        return self.profiles.end(query, **outcome)

    def profile_activate(self, query: Any):
        return self.profiles.activate(query)

    # Exports ----------------------------------------------------------------
    def export_trace(self, path: str, overwrite: bool = False) -> str:
        return self.trace.export(path, overwrite=overwrite)

    def export_metrics(self, path: str, overwrite: bool = False) -> str:
        return self.metrics.export(path, overwrite=overwrite)

    def export_events(self, path: str, overwrite: bool = False) -> str:
        return self.events.export(path, overwrite=overwrite)

    def export_profiles(self, path: str, overwrite: bool = False) -> str:
        return self.profiles.export(path, overwrite=overwrite)

    def snapshot(self) -> Dict[str, float]:
        """Flat metrics snapshot plus trace/event/profile volumes.

        The shape benchmarks attach to ``benchmark.extra_info``.  Drop
        counters surface capacity pressure: nonzero values mean the
        bounded logs shed data and their capacities need raising.
        """
        out = self.metrics.as_dict()
        out["obs_spans_recorded"] = float(len(self.trace.spans))
        out["obs_events_recorded"] = float(len(self.events))
        out["obs_events_dropped"] = float(self.events.n_dropped)
        out["obs_profiles_recorded"] = float(len(self.profiles))
        out["obs_profiles_dropped"] = float(self.profiles.n_dropped)
        out["obs_simulated_seconds"] = float(self.trace.now)
        return out


def attach_observer(component: Any, observer: Observer) -> Any:
    """Attach ``observer`` to any component that supports observation.

    Prefers the component's own ``attach_observer`` method; falls back to
    setting an ``observer`` attribute.  Returns the observer for chaining.
    """
    hook = getattr(component, "attach_observer", None)
    if callable(hook) and hook is not attach_observer:
        hook(observer)
    else:
        component.observer = observer
    return observer
