"""Observability for the SEA stack: traces, metrics, and events.

Three surfaces, all on the *simulated* clock of the cost model:

* :mod:`repro.obs.trace` — hierarchical spans (query → engine phase →
  per-node task) exported as Chrome trace-event JSON for Perfetto;
* :mod:`repro.obs.metrics` — counters, gauges and reservoir-backed
  latency histograms with Prometheus text exposition;
* :mod:`repro.obs.events` — a structured JSONL log of the decisions the
  stack makes (train/predict/fallback, drift, optimizer choices,
  geo routing).

:class:`~repro.obs.observer.Observer` is the null default every
instrumented component carries — attaching a
:class:`~repro.obs.observer.StackObserver` turns recording on; leaving
the default keeps the hot paths allocation-free.
"""

from repro.obs.events import Event, EventLog
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.observer import (
    NULL_OBSERVER,
    Observer,
    StackObserver,
    attach_observer,
)
from repro.obs.trace import Span, TraceRecorder

__all__ = [
    "Event",
    "EventLog",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "Observer",
    "StackObserver",
    "attach_observer",
    "Span",
    "TraceRecorder",
]
