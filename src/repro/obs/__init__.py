"""Observability for the SEA stack: traces, metrics, and events.

Three surfaces, all on the *simulated* clock of the cost model:

* :mod:`repro.obs.trace` — hierarchical spans (query → engine phase →
  per-node task) exported as Chrome trace-event JSON for Perfetto;
* :mod:`repro.obs.metrics` — counters, gauges and reservoir-backed
  latency histograms with Prometheus text exposition;
* :mod:`repro.obs.events` — a structured JSONL log of the decisions the
  stack makes (train/predict/fallback, drift, optimizer choices,
  geo routing).

Layered on top of those (DESIGN §10):

* :mod:`repro.obs.profile` — the query flight recorder: per-query
  ``EXPLAIN`` / ``EXPLAIN ANALYZE`` :class:`QueryProfile` trees;
* :mod:`repro.obs.slo` — rolling per-class SLO windows with burn-rate
  health statuses;
* :mod:`repro.obs.anomaly` — accuracy-drift anomaly detection on
  predicted-vs-exact residuals.

:class:`~repro.obs.observer.Observer` is the null default every
instrumented component carries — attaching a
:class:`~repro.obs.observer.StackObserver` turns recording on; leaving
the default keeps the hot paths allocation-free.
"""

from repro.obs.anomaly import AccuracyDriftMonitor, AnomalyEvent
from repro.obs.events import DEFAULT_EVENT_CAPACITY, Event, EventLog
from repro.obs.export import prepare_export_path
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.observer import (
    NULL_OBSERVER,
    Observer,
    StackObserver,
    attach_observer,
)
from repro.obs.profile import (
    FlightRecorder,
    PartitionProfile,
    QueryProfile,
    build_plan_profile,
)
from repro.obs.slo import SLOMonitor, SLOPolicy, SLOTarget
from repro.obs.trace import Span, TraceRecorder

__all__ = [
    "AccuracyDriftMonitor",
    "AnomalyEvent",
    "DEFAULT_EVENT_CAPACITY",
    "Event",
    "EventLog",
    "FlightRecorder",
    "PartitionProfile",
    "QueryProfile",
    "SLOMonitor",
    "SLOPolicy",
    "SLOTarget",
    "build_plan_profile",
    "prepare_export_path",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "Observer",
    "StackObserver",
    "attach_observer",
    "Span",
    "TraceRecorder",
]
