"""A metrics registry: counters, gauges, and latency histograms.

Modelled on the Prometheus client data model — named metric *families*
that fan out into labelled children — with text exposition in the
Prometheus format, so the output of :meth:`MetricsRegistry.exposition`
pastes straight into any Prometheus-literate tooling.

Latency histograms reuse :class:`repro.ml.sketches.ReservoirSample` for
bounded-memory quantile estimation (the same primitive the AQP baselines
use), and expose as Prometheus *summaries*: ``{quantile="0.5"}`` sample
lines plus ``_sum``/``_count``.

**Reservoir sizing.**  Each labelled histogram child holds at most
``reservoir_size`` float samples (default 512 ≈ 4 KB), so histogram
memory is bounded no matter how many observations stream in — the
knob trades memory for tail fidelity, not correctness.  512 resolves
p99 to roughly ±1 percentile on stationary streams; quadruple it (2048)
when p99.9 matters or the stream is strongly bimodal, and drop to 128
for high-cardinality label sets where per-child memory dominates.  Pass
it per family: ``registry.histogram(name, reservoir_size=2048)`` — the
first registration wins, matching Prometheus client semantics.

The registry is thread-safe end to end: child creation (family and
label lookup) and every update (``inc``/``set``/``observe``) are
lock-protected, so concurrent charging from :mod:`repro.parallel`
worker threads can never lose an increment or tear a histogram.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.common.validation import require
from repro.ml.sketches import ReservoirSample

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


class Counter:
    """Monotonically increasing value (lock-protected)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        require(amount >= 0, "counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (lock-protected)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Reservoir-backed distribution: count, sum, and quantiles.

    ``observe`` touches several fields plus the reservoir, so updates
    and quantile reads share one lock — a torn observation would
    otherwise desynchronise ``count`` from the reservoir state.
    """

    __slots__ = ("count", "total", "_min", "_max", "_reservoir", "_lock")

    def __init__(self, reservoir_size: int = 512, seed: int = 0) -> None:
        self.count = 0
        self.total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._reservoir = ReservoirSample(reservoir_size, seed=seed)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            self._reservoir.add(value)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile from the reservoir (nan when empty)."""
        with self._lock:
            sample = list(self._reservoir.sample)
        if not sample:
            return float("nan")
        return float(np.quantile(np.asarray(sample, dtype=float), q))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")


class MetricFamily:
    """One named metric with labelled children of a single type."""

    def __init__(self, name: str, kind: str, help_text: str = "", **child_kwargs) -> None:
        require(kind in ("counter", "gauge", "histogram"), f"bad kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self._child_kwargs = child_kwargs
        self._children: Dict[LabelKey, object] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: str):
        """The child metric for this label set (created on first use)."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            # Check-then-create under the lock: two threads racing on a
            # fresh label set must agree on one child object.
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._new_child()
                    self._children[key] = child
        return child

    def _new_child(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(**self._child_kwargs)

    # Unlabelled convenience: family acts as its own () child.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self) -> float:
        return self.labels().value

    def children(self) -> Iterable[Tuple[LabelKey, object]]:
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """Registry of metric families with Prometheus text exposition."""

    def __init__(self, quantiles: Tuple[float, ...] = (0.5, 0.9, 0.99)) -> None:
        self.quantiles = quantiles
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    # Family constructors ----------------------------------------------------
    def counter(self, name: str, help_text: str = "") -> MetricFamily:
        return self._family(name, "counter", help_text)

    def gauge(self, name: str, help_text: str = "") -> MetricFamily:
        return self._family(name, "gauge", help_text)

    def histogram(
        self, name: str, help_text: str = "", reservoir_size: int = 512
    ) -> MetricFamily:
        return self._family(
            name, "histogram", help_text, reservoir_size=reservoir_size
        )

    def _family(self, name: str, kind: str, help_text: str, **kwargs) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = MetricFamily(name, kind, help_text, **kwargs)
                    self._families[name] = family
                    return family
        require(
            family.kind == kind,
            f"metric {name!r} already registered as {family.kind}",
        )
        if help_text and not family.help_text:
            family.help_text = help_text
        return family

    # Views ------------------------------------------------------------------
    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def as_dict(self) -> Dict[str, float]:
        """Flat ``{exposition-style name: value}`` snapshot.

        Histograms flatten to ``name_count``/``name_sum``/``name_p50``...
        Convenient for attaching to ``benchmark.extra_info``.
        """
        out: Dict[str, float] = {}
        for family in self.families():
            for key, child in family.children():
                suffix = _render_labels(key)
                if isinstance(child, Histogram):
                    out[f"{family.name}_count{suffix}"] = float(child.count)
                    out[f"{family.name}_sum{suffix}"] = float(child.total)
                    for q in self.quantiles:
                        out[f"{family.name}_p{int(q * 100)}{suffix}"] = child.quantile(q)
                else:
                    out[f"{family.name}{suffix}"] = float(child.value)
        return out

    # Prometheus text format -------------------------------------------------
    def exposition(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: List[str] = []
        for family in self.families():
            if family.help_text:
                lines.append(f"# HELP {family.name} {family.help_text}")
            kind = "summary" if family.kind == "histogram" else family.kind
            lines.append(f"# TYPE {family.name} {kind}")
            for key, child in family.children():
                if isinstance(child, Histogram):
                    for q in self.quantiles:
                        value = child.quantile(q)
                        lines.append(
                            f"{family.name}"
                            f"{_render_labels(key, ('quantile', repr(q)))} "
                            f"{_fmt(value)}"
                        )
                    lines.append(
                        f"{family.name}_sum{_render_labels(key)} {_fmt(child.total)}"
                    )
                    lines.append(
                        f"{family.name}_count{_render_labels(key)} {_fmt(child.count)}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_render_labels(key)} {_fmt(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    def export(self, path: str, overwrite: bool = False) -> str:
        """Write the exposition text to ``path``; returns the path.

        Parent directories are created; an existing file is refused
        unless ``overwrite=True``.
        """
        from repro.obs.export import prepare_export_path

        path = prepare_export_path(path, overwrite=overwrite)
        with open(path, "w") as handle:
            handle.write(self.exposition())
        return path


def _fmt(value: float) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
