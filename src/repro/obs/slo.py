"""Rolling SLO monitor on the simulated clock.

An :class:`SLOPolicy` declares per-query-class targets (latency, bytes
scanned, reported error estimate) with an availability *objective* — the
fraction of queries in the rolling window that must meet their targets.
The :class:`SLOMonitor` folds every served query in, keeps a bounded
window per class on the *simulated* clock (each record advances it by the
record's ``elapsed_sec``), computes windowed quantiles and the classic
error-budget **burn rate**::

    burn_rate = violation_rate / (1 - objective)

``burn_rate == 1`` means the class is consuming its error budget exactly
as fast as the objective allows; ``>= warn_burn_rate`` turns the class
``warn``, ``>= breach_burn_rate`` turns it ``breach``.  Status
transitions are emitted to the decision log (``slo_status`` events), and
:meth:`SLOMonitor.health` returns the snapshot ``session.health()``
exposes.

Everything is deterministic: the clock is simulated, windows are
order-of-arrival, quantiles are exact over the bounded window.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.common.validation import require, require_in_range

#: Status ranking, worst last.
_STATUS_ORDER = ("ok", "warn", "breach")


@dataclass(frozen=True)
class SLOTarget:
    """Targets one query class is held to (None disables a dimension)."""

    latency_sec: Optional[float] = 0.5  # per-query simulated latency
    max_bytes_scanned: Optional[float] = None
    max_error_estimate: Optional[float] = None  # predicted-mode answers
    objective: float = 0.95  # fraction of queries that must meet targets
    latency_quantile: float = 0.95  # reported in health snapshots
    warn_burn_rate: float = 1.0
    breach_burn_rate: float = 2.0

    def __post_init__(self) -> None:
        require_in_range(self.objective, "objective", 0.0, 0.999999)
        require_in_range(
            self.latency_quantile, "latency_quantile", 0.0, 1.0
        )
        require(
            self.breach_burn_rate >= self.warn_burn_rate,
            "breach_burn_rate must be >= warn_burn_rate",
        )

    def violated_by(self, record: Any) -> bool:
        """Whether one served query blows any of this target's dimensions."""
        cost = record.cost
        if self.latency_sec is not None and cost.elapsed_sec > self.latency_sec:
            return True
        if (
            self.max_bytes_scanned is not None
            and cost.bytes_scanned > self.max_bytes_scanned
        ):
            return True
        if self.max_error_estimate is not None and record.mode == "predicted":
            prediction = record.prediction
            error = (
                prediction.error_estimate if prediction is not None else None
            )
            if error is not None and error > self.max_error_estimate:
                return True
        return False


@dataclass
class SLOPolicy:
    """Per-class SLO targets with a default, plus window sizing.

    The default classifier groups queries by aggregate name (``count``,
    ``mean``, ...) — the axis along which cost and accuracy profiles
    differ most in this stack; subclass and override :meth:`classify`
    for workload-specific classes (per table, per dashboard, ...).
    """

    targets: Dict[str, SLOTarget] = field(default_factory=dict)
    default: SLOTarget = field(default_factory=SLOTarget)
    window_sec: float = 3600.0  # simulated seconds of history per class
    max_samples: int = 4096  # hard per-class memory bound

    def __post_init__(self) -> None:
        require(self.window_sec > 0.0, "window_sec must be positive")
        require(self.max_samples >= 1, "max_samples must be >= 1")

    def classify(self, record: Any) -> str:
        """The query class one served record falls in."""
        return record.query.aggregate.name

    def target_for(self, query_class: str) -> SLOTarget:
        return self.targets.get(query_class, self.default)


#: One window sample: (arrival clock, latency, bytes, violated).
_Sample = Tuple[float, float, float, bool]


class SLOMonitor:
    """Folds served queries into rolling per-class SLO windows."""

    def __init__(self, policy: Optional[SLOPolicy] = None) -> None:
        self.policy = policy or SLOPolicy()
        self.clock = 0.0  # simulated seconds of serving folded in
        self.n_recorded = 0
        self._windows: Dict[str, Deque[_Sample]] = {}
        self._status: Dict[str, str] = {}

    # Folding ----------------------------------------------------------------
    def record(self, record: Any, observer: Any = None) -> str:
        """Fold one served query in; returns the class's new status.

        ``record`` is anything shaped like
        :class:`~repro.core.agent.ServedQuery` (query, mode, cost,
        prediction).  Status *transitions* are emitted as ``slo_status``
        events when an enabled observer is passed.
        """
        cost = record.cost
        self.clock += float(cost.elapsed_sec)
        self.n_recorded += 1
        query_class = self.policy.classify(record)
        target = self.policy.target_for(query_class)
        violated = target.violated_by(record)
        window = self._windows.setdefault(query_class, deque())
        window.append(
            (
                self.clock,
                float(cost.elapsed_sec),
                float(cost.bytes_scanned),
                violated,
            )
        )
        self._trim(window)
        status = self._class_status(target, window)
        previous = self._status.get(query_class)
        self._status[query_class] = status
        if (
            observer is not None
            and observer.enabled
            and status != previous
        ):
            observer.event(
                "slo_status",
                query_class=query_class,
                status=status,
                previous=previous if previous is not None else "none",
                burn_rate=round(self._burn_rate(target, window), 9),
                window_n=len(window),
            )
        return status

    def _trim(self, window: Deque[_Sample]) -> None:
        horizon = self.clock - self.policy.window_sec
        while window and (
            window[0][0] < horizon or len(window) > self.policy.max_samples
        ):
            window.popleft()

    # Evaluation -------------------------------------------------------------
    @staticmethod
    def _violation_rate(window: Deque[_Sample]) -> float:
        if not window:
            return 0.0
        return sum(1 for s in window if s[3]) / len(window)

    def _burn_rate(
        self, target: SLOTarget, window: Deque[_Sample]
    ) -> float:
        budget = 1.0 - target.objective
        return self._violation_rate(window) / budget

    def _class_status(
        self, target: SLOTarget, window: Deque[_Sample]
    ) -> str:
        burn = self._burn_rate(target, window)
        if burn >= target.breach_burn_rate:
            return "breach"
        if burn >= target.warn_burn_rate:
            return "warn"
        return "ok"

    def health(self) -> Dict[str, Any]:
        """The deterministic health snapshot ``session.health()`` returns."""
        classes: Dict[str, Dict[str, Any]] = {}
        worst = "ok"
        for query_class in sorted(self._windows):
            window = self._windows[query_class]
            target = self.policy.target_for(query_class)
            status = self._status.get(query_class, "ok")
            latencies = [s[1] for s in window]
            classes[query_class] = {
                "status": status,
                "n": len(window),
                "violation_rate": round(self._violation_rate(window), 9),
                "burn_rate": round(self._burn_rate(target, window), 9),
                "objective": target.objective,
                "latency_target_sec": target.latency_sec,
                "latency_p50_sec": round(_quantile(latencies, 0.5), 9),
                f"latency_p{int(target.latency_quantile * 100)}_sec": round(
                    _quantile(latencies, target.latency_quantile), 9
                ),
            }
            if _STATUS_ORDER.index(status) > _STATUS_ORDER.index(worst):
                worst = status
        return {
            "status": worst,
            "clock_sec": round(self.clock, 9),
            "queries_recorded": self.n_recorded,
            "classes": classes,
        }


def _quantile(values: List[float], q: float) -> float:
    """Exact order-statistic quantile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[index]
