"""Accuracy-drift anomaly detection on predicted-vs-exact residuals.

Every learning fallback gives the stack a free labelled sample: the
prediction that was *about* to be served and the exact answer that
replaced it.  The :class:`AccuracyDriftMonitor` keeps a rolling window of
those relative residuals per ``(signature, quantum)`` and fires when a
new residual is a z-score outlier against the window — typically several
observations *before* the prequential error estimator's quantile crosses
the serving threshold, so the decision log shows drift starting, not
just drift confirmed (the E13 failure mode).

The monitor is deterministic (order-of-arrival windows, O(1) rolling
moments) and allocation-light; the agent feeds it regardless of observer
state but only emits ``accuracy_anomaly`` events / metrics when one is
attached.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Set, Tuple

from repro.common.validation import require


@dataclass(frozen=True)
class AnomalyEvent:
    """One fired anomaly: the residual and the window it defied."""

    signature: str
    quantum_id: int
    residual: float
    zscore: float
    mean: float
    std: float
    n: int  # window size the z-score was computed against


class _Rolling:
    """Bounded window with O(1) rolling mean/std (population moments)."""

    __slots__ = ("window", "values", "total", "total_sq")

    def __init__(self, window: int) -> None:
        self.window = window
        self.values: Deque[float] = deque()
        self.total = 0.0
        self.total_sq = 0.0

    def push(self, value: float) -> None:
        self.values.append(value)
        self.total += value
        self.total_sq += value * value
        if len(self.values) > self.window:
            old = self.values.popleft()
            self.total -= old
            self.total_sq -= old * old

    def stats(self) -> Tuple[int, float, float]:
        n = len(self.values)
        if n == 0:
            return 0, 0.0, 0.0
        mean = self.total / n
        variance = max(0.0, self.total_sq / n - mean * mean)
        return n, mean, math.sqrt(variance)


class AccuracyDriftMonitor:
    """Rolling z-score detector over per-quantum relative residuals."""

    def __init__(
        self,
        window: int = 64,
        z_threshold: float = 3.5,
        min_samples: int = 12,
    ) -> None:
        require(window >= 2, "window must be >= 2")
        require(z_threshold > 0.0, "z_threshold must be positive")
        require(min_samples >= 2, "min_samples must be >= 2")
        self.window = window
        self.z_threshold = z_threshold
        self.min_samples = min_samples
        self.n_observed = 0
        self.n_anomalies = 0
        self._state: Dict[Tuple[str, int], _Rolling] = {}
        self._flagged: Set[Tuple[str, int]] = set()

    def observe(
        self, signature: str, quantum_id: int, residual: float
    ) -> Optional[AnomalyEvent]:
        """Fold one residual in; returns an event iff it is an outlier.

        The z-score is computed against the window *before* the new
        residual joins it, so a drift burst is judged by the stable
        regime it breaks, not a window it already contaminated.
        """
        key = (signature, int(quantum_id))
        state = self._state.get(key)
        if state is None:
            state = self._state[key] = _Rolling(self.window)
        n, mean, std = state.stats()
        event: Optional[AnomalyEvent] = None
        if n >= self.min_samples and std > 1e-12:
            zscore = (residual - mean) / std
            if abs(zscore) > self.z_threshold:
                event = AnomalyEvent(
                    signature=signature,
                    quantum_id=int(quantum_id),
                    residual=float(residual),
                    zscore=float(zscore),
                    mean=mean,
                    std=std,
                    n=n,
                )
                self.n_anomalies += 1
                self._flagged.add(key)
        state.push(float(residual))
        self.n_observed += 1
        return event

    def summary(self) -> Dict[str, float]:
        """Flat counters for stats()/health() merging."""
        return {
            "accuracy_residuals_observed": float(self.n_observed),
            "accuracy_anomalies": float(self.n_anomalies),
            "accuracy_quanta_flagged": float(len(self._flagged)),
            "accuracy_quanta_tracked": float(len(self._state)),
        }
