"""Structured event log: the *decisions* the SEA stack makes, as data.

Where the trace answers "where did simulated time go", the event log
answers "what did the system decide and why": train/predict/fallback
choices with their estimated errors, drift detections, model
invalidations and retrains, learned-optimizer choices with predicted vs
actual cost, and geo-routing tier decisions (edge hit / peer / WAN
fallback).  Every event carries its simulated timestamp, so events line
up with trace spans.

Export is JSON Lines — one event per line — which greps, tails and loads
into any dataframe tool without a schema registry.

The in-memory log is bounded: past ``capacity`` events, :meth:`emit`
drops (counting drops in ``n_dropped``) instead of growing without
bound, so a long-running session's decision log is a fixed-size budget
rather than a leak.  :class:`~repro.obs.observer.StackObserver` applies
:data:`DEFAULT_EVENT_CAPACITY` unless told otherwise; pass
``capacity=None`` for the unbounded behaviour when a short experiment
needs every event.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.export import prepare_export_path
from repro.obs.trace import _jsonable

#: Default decision-log bound applied by ``StackObserver``.  At the
#: typical few-hundred-bytes-per-event this is a ~30 MB ceiling; raise
#: it for long soak runs, or lower it when only the tail matters.
DEFAULT_EVENT_CAPACITY = 100_000


@dataclass
class Event:
    """One structured event on the simulated timeline."""

    ts: float
    type: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"ts": round(self.ts, 9), "type": self.type}
        out.update(_jsonable(self.fields))
        return out


class EventLog:
    """Append-only in-memory event log with JSONL export."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = capacity
        self.events: List[Event] = []
        self.n_dropped = 0

    def emit(self, type: str, ts: float = 0.0, **fields: Any) -> Optional[Event]:
        """Record one event; returns it (or None if over capacity)."""
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.n_dropped += 1
            return None
        event = Event(ts=ts, type=type, fields=fields)
        self.events.append(event)
        return event

    def of_type(self, *types: str) -> List[Event]:
        wanted = set(types)
        return [e for e in self.events if e.type in wanted]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    # Export -----------------------------------------------------------------
    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(e.as_dict()) for e in self.events) + (
            "\n" if self.events else ""
        )

    def export(self, path: str, overwrite: bool = False) -> str:
        """Write the log as JSON Lines to ``path``; returns the path.

        Parent directories are created; an existing file is refused
        unless ``overwrite=True``.
        """
        path = prepare_export_path(path, overwrite=overwrite)
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())
        return path

    @staticmethod
    def load_jsonl(path: str) -> List[Dict[str, Any]]:
        """Parse a JSONL file back into plain dicts (for round-trip tests)."""
        out: List[Dict[str, Any]] = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    out.append(json.loads(line))
        return out
