"""Export-path ergonomics shared by every obs artefact writer.

All observability exports (trace JSON, metrics exposition, events JSONL,
query-profile JSONL, one-shot session dumps) funnel their target path
through :func:`prepare_export_path`, which gives them a uniform contract:

* parent directories are created on demand, so ``export_trace(
  "results/run-7/trace.json")`` just works;
* an existing file is never silently clobbered — callers must pass
  ``overwrite=True`` to replace it, which keeps benchmark trajectories
  and archived runs safe from accidental re-exports.
"""

from __future__ import annotations

import os

from repro.common.errors import ConfigurationError


def prepare_export_path(path: str, overwrite: bool = False) -> str:
    """Validate and prepare ``path`` for an export write.

    Creates missing parent directories and refuses to overwrite an
    existing file unless ``overwrite=True``.  Returns the path.
    """
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    if not overwrite and os.path.exists(path):
        raise ConfigurationError(
            f"refusing to overwrite existing export {path!r}; "
            "pass overwrite=True to replace it"
        )
    return path
