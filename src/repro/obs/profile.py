"""The query flight recorder: per-query EXPLAIN / EXPLAIN ANALYZE profiles.

Raw spans, metrics and events (PR 1) tell you what the *system* did;
a :class:`QueryProfile` tells you what happened to *one query*: which
partitions its plan scanned, skipped, or answered from zone-map
synopses (and the bytes that saved), whether the answer cache hit, which
serving path the agent chose and the error estimate that drove it, every
fault probe / retry / failover hop and any degraded bounds, the morsel
fan-out, the per-phase simulated time, and the final cost report.

The :class:`FlightRecorder` assembles profiles from ``profile_*`` hook
calls the instrumented stack makes through its
:class:`~repro.obs.observer.Observer` — all no-ops on the null observer,
so the detached path stays allocation-free.  Two routing modes exist:

* **keyed** notes carry the query object (``profile_note(kind,
  query=q, ...)``) and land on that query's open profile directly —
  used where the callsite knows the query (plans, cache lookups);
* **activated** notes carry no query and land on the profile of the
  innermost ``profile_activate(query)`` context — used deep in the
  engine (phase timings, failover retries) where only the job is known.

Determinism contract: everything folded into a profile comes from the
*serial charging path* — plans, cache state, the fault injector's seeded
draws, simulated phase times, cost reports.  Nothing host-timed and
nothing worker-dependent (no ``parallel_*`` artefacts) ever enters a
profile, so the JSON and the ``EXPLAIN ANALYZE`` text are byte-identical
at any worker count.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.export import prepare_export_path

#: Partition classifications in a profile's plan tree.  The first three
#: mirror :mod:`repro.engine.pruning`; ``"lost"`` marks a partition the
#: fault layer could not read from any replica (degrade mode).
P_SCAN = "scan"
P_SKIP = "skip"
P_SYNOPSIS = "synopsis"
P_LOST = "lost"

#: A profile's ``kind``: planned-only vs plan + actuals.
EXPLAIN = "explain"
EXPLAIN_ANALYZE = "explain_analyze"


@dataclass
class PartitionProfile:
    """How the plan treated one stored partition.

    ``read_bytes`` is what execution actually read there (the full
    stored partition for a scan, the projected columns' encoded bytes
    for a column-pruned scan, the synopsis footprint for a
    short-circuit, zero for a skip or a lost partition), so
    per-partition rows always reconcile with the job's CostMeter
    charges.  ``n_bytes`` stays the decoded row-major footprint;
    ``stored_bytes`` is the on-disk footprint (== ``n_bytes`` for row
    layout, the encoded bytes for columnar layout).  ``delta_rows``
    counts staged ingest rows not yet compacted into the base image
    (nonzero only between a durable write and its epoch close); a
    nonzero value explains why this partition scanned instead of using
    its synopsis or column pruning.
    """

    index: int
    action: str  # "scan" | "skip" | "synopsis" | "lost"
    n_rows: int
    n_bytes: int
    read_bytes: int
    stored_bytes: int = -1  # -1 -> defaults to n_bytes (row layout)
    delta_rows: int = 0  # staged (uncompacted) ingest rows in the view

    def __post_init__(self) -> None:
        if self.stored_bytes < 0:
            self.stored_bytes = self.n_bytes

    @property
    def bytes_saved(self) -> int:
        """Decoded bytes the plan + layout avoided reading here.

        Zero for a plain row-major scan; positive when pruning skipped
        or short-circuited the partition *or* when encoding/column
        projection shrank what the scan had to read.
        """
        return self.n_bytes - self.read_bytes

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "action": self.action,
            "n_rows": self.n_rows,
            "n_bytes": self.n_bytes,
            "read_bytes": self.read_bytes,
            "stored_bytes": self.stored_bytes,
            "delta_rows": self.delta_rows,
        }


@dataclass
class QueryProfile:
    """One query's flight record: the plan tree plus (optionally) actuals.

    ``kind=="explain"`` profiles come from :meth:`SEASession.explain` —
    the plan and the *expected* serving path, nothing executed.
    ``kind=="explain_analyze"`` profiles ride on every served answer
    (``answer.profile``) and add phase timings, fault history, the cost
    report and the answer itself.
    """

    query: str
    signature: str
    table: str
    aggregate: str
    kind: str = EXPLAIN_ANALYZE
    mode: Optional[str] = None  # "train" | "predicted" | "fallback"
    cache_hit: Optional[bool] = None  # None: cache disabled / not consulted
    error_estimate: Optional[float] = None
    error_threshold: Optional[float] = None
    quantum_id: Optional[int] = None
    novelty: Optional[float] = None
    reliable: Optional[bool] = None
    pruning: bool = False  # True iff a zone-map plan constrained the scan
    partitions: List[PartitionProfile] = field(default_factory=list)
    phases: Dict[str, float] = field(default_factory=dict)  # simulated sec
    fault_probes: int = 0
    fault_retries: int = 0
    fault_failovers: int = 0
    lost_partitions: List[str] = field(default_factory=list)
    served_despite_loss: bool = False
    degraded: Optional[Dict[str, Any]] = None
    cost: Optional[Dict[str, float]] = None
    answer: Optional[str] = None  # repr of the served value

    # Plan-tree aggregates ---------------------------------------------------
    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    @property
    def n_scanned(self) -> int:
        return sum(1 for p in self.partitions if p.action == P_SCAN)

    @property
    def n_skipped(self) -> int:
        return sum(1 for p in self.partitions if p.action == P_SKIP)

    @property
    def n_covered(self) -> int:
        return sum(1 for p in self.partitions if p.action == P_SYNOPSIS)

    @property
    def n_lost(self) -> int:
        return sum(1 for p in self.partitions if p.action == P_LOST)

    @property
    def morsels(self) -> int:
        """Partition-level work units the scan fans out (plan-derived,
        identical at any worker count)."""
        return self.n_scanned

    @property
    def bytes_scanned(self) -> int:
        """Partition bytes the plan's scans read; reconciles with the
        cost report's ``bytes_scanned`` on the exact path."""
        return sum(
            p.read_bytes for p in self.partitions if p.action == P_SCAN
        )

    @property
    def bytes_saved(self) -> int:
        """Bytes pruning (and synopsis short-circuits) avoided reading."""
        return sum(p.bytes_saved for p in self.partitions)

    # Serialization ----------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """Deterministic plain-dict view (JSON-ready)."""
        return {
            "kind": self.kind,
            "query": self.query,
            "signature": self.signature,
            "table": self.table,
            "aggregate": self.aggregate,
            "mode": self.mode,
            "cache_hit": self.cache_hit,
            "error_estimate": _rounded(self.error_estimate),
            "error_threshold": _rounded(self.error_threshold),
            "quantum_id": self.quantum_id,
            "novelty": _rounded(self.novelty),
            "reliable": self.reliable,
            "pruning": self.pruning,
            "n_partitions": self.n_partitions,
            "n_scanned": self.n_scanned,
            "n_skipped": self.n_skipped,
            "n_covered": self.n_covered,
            "n_lost": self.n_lost,
            "morsels": self.morsels,
            "bytes_scanned": self.bytes_scanned,
            "bytes_saved": self.bytes_saved,
            "partitions": [p.as_dict() for p in self.partitions],
            "phases": {k: _rounded(v) for k, v in self.phases.items()},
            "fault_probes": self.fault_probes,
            "fault_retries": self.fault_retries,
            "fault_failovers": self.fault_failovers,
            "lost_partitions": list(self.lost_partitions),
            "served_despite_loss": self.served_despite_loss,
            "degraded": self.degraded,
            "cost": (
                {k: _rounded(v) for k, v in self.cost.items()}
                if self.cost is not None
                else None
            ),
            "answer": self.answer,
        }

    def to_json(self) -> str:
        """One deterministic JSON line (sorted keys, no whitespace)."""
        return json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":")
        )

    # Rendering --------------------------------------------------------------
    def render(self, max_partitions: int = 64) -> str:
        """The deterministic ``EXPLAIN [ANALYZE]`` text for this profile."""
        analyzed = self.kind == EXPLAIN_ANALYZE
        lines = [
            ("EXPLAIN ANALYZE " if analyzed else "EXPLAIN ") + self.query
        ]
        mode = self.mode if self.mode is not None else "?"
        if not analyzed and self.mode is not None:
            mode += " (expected)"
        cache = (
            "off"
            if self.cache_hit is None
            else ("hit" if self.cache_hit else "miss")
        )
        lines.append(
            f"  signature={self.signature} mode={mode} cache={cache}"
        )
        if self.error_estimate is not None or self.error_threshold is not None:
            lines.append(
                "  agent: "
                f"error_estimate={_fmt(self.error_estimate)} "
                f"threshold={_fmt(self.error_threshold)} "
                f"reliable={_fmt(self.reliable)} "
                f"quantum={_fmt(self.quantum_id)} "
                f"novelty={_fmt(self.novelty)}"
            )
        if self.partitions:
            lines.append(
                f"  plan: table={self.table} pruning={_fmt(self.pruning)} "
                f"partitions={self.n_partitions} scan={self.n_scanned} "
                f"skip={self.n_skipped} synopsis={self.n_covered}"
                + (f" lost={self.n_lost}" if self.n_lost else "")
                + f" morsels={self.morsels}"
            )
            total = sum(p.n_bytes for p in self.partitions)
            saved = self.bytes_saved
            pct = 100.0 * saved / total if total else 0.0
            lines.append(
                f"    bytes: scanned={self.bytes_scanned} "
                f"saved={saved} ({pct:.1f}% pruned)"
            )
            for p in self.partitions[:max_partitions]:
                extra = ""
                if p.stored_bytes != p.n_bytes:
                    extra = f" enc={p.stored_bytes}"
                if p.action == P_SYNOPSIS:
                    extra += f" read={p.read_bytes}"
                elif p.action == P_SCAN and p.read_bytes != p.stored_bytes:
                    extra += f" read={p.read_bytes}"
                if p.bytes_saved:
                    extra += f" saved={p.bytes_saved}"
                if p.delta_rows:
                    extra += f" delta={p.delta_rows}"
                lines.append(
                    f"    [{p.index}] {p.action:<8} "
                    f"rows={p.n_rows} bytes={p.n_bytes}{extra}"
                )
            hidden = len(self.partitions) - max_partitions
            if hidden > 0:
                lines.append(f"    ... ({hidden} more partitions)")
        elif analyzed and self.mode == "predicted":
            lines.append("  plan: answered by the agent (no data access)")
        if self.phases:
            rendered = " ".join(
                f"{name}={_fmt(seconds)}"
                for name, seconds in self.phases.items()
            )
            lines.append(f"  phases: {rendered}")
        if self.fault_probes or self.fault_retries or self.fault_failovers:
            lines.append(
                f"  faults: probes={self.fault_probes} "
                f"retries={self.fault_retries} "
                f"failovers={self.fault_failovers} "
                f"lost={self.lost_partitions!r}"
            )
        if self.served_despite_loss:
            lines.append(
                "  served despite loss: exact fallback lost its base data; "
                "the model answered"
            )
        if self.degraded is not None:
            d = self.degraded
            lines.append(
                f"  degraded: coverage={_fmt(d.get('coverage'))} "
                f"bounded={_fmt(d.get('bounded'))} "
                f"bounds=[{_fmt(d.get('lower'))}, {_fmt(d.get('upper'))}]"
            )
        if self.cost is not None:
            c = self.cost
            lines.append(
                f"  cost: elapsed_sec={_fmt(c.get('elapsed_sec'))} "
                f"node_sec={_fmt(c.get('node_sec'))} "
                f"bytes_scanned={_fmt(c.get('bytes_scanned'))} "
                f"nodes_touched={_fmt(c.get('nodes_touched'))} "
                f"tasks_launched={_fmt(c.get('tasks_launched'))}"
            )
        if analyzed:
            lines.append(f"  answer: {self.answer}")
        return "\n".join(lines)


def _rounded(value: Optional[float]) -> Optional[float]:
    """Round floats to the event log's 9-dp convention (ints pass through)."""
    if value is None or isinstance(value, (bool, int)):
        return value
    return round(float(value), 9)


def _fmt(value: Any) -> str:
    if value is None:
        return "?"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(round(value, 9))
    return str(value)


class FlightRecorder:
    """Collects open profiles keyed by query identity, bounded when done.

    ``capacity`` bounds the *completed*-profile buffer the same way the
    event log is bounded: once full, finished profiles still return to
    the caller (``answer.profile`` keeps working) but are no longer
    retained for export, and ``n_dropped`` counts them.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self.profiles: List[QueryProfile] = []
        self.n_dropped = 0
        self._open: Dict[int, QueryProfile] = {}
        self._stack: List[Optional[QueryProfile]] = []

    def __len__(self) -> int:
        return len(self.profiles)

    # Collection hooks -------------------------------------------------------
    def begin(self, query: Any) -> QueryProfile:
        """Open a profile for ``query`` (keyed by object identity)."""
        profile = QueryProfile(
            query=repr(query),
            signature=query.signature(),
            table=query.table_name,
            aggregate=query.aggregate.name,
        )
        self._open[id(query)] = profile
        return profile

    @property
    def current(self) -> Optional[QueryProfile]:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def activate(self, query: Any) -> Iterator[None]:
        """Route un-keyed notes to ``query``'s profile inside the context.

        Activating ``None`` (or a query with no open profile) masks any
        outer activation, so unrelated engine work never pollutes an
        enclosing query's profile.
        """
        profile = self._open.get(id(query)) if query is not None else None
        self._stack.append(profile)
        try:
            yield
        finally:
            self._stack.pop()

    def note(self, kind: str, query: Any = None, **fields: Any) -> None:
        """Fold one observation into a profile (keyed or activated)."""
        if query is not None:
            profile = self._open.get(id(query))
        else:
            profile = self.current
        if profile is None:
            return
        if kind == "plan":
            profile.pruning = bool(fields.get("pruned", False))
            partitions = []
            for index, entry in enumerate(fields["partitions"]):
                # 4-tuples predate columnar layouts (stored == decoded);
                # 5-tuples add the encoded on-disk footprint; 6-tuples
                # add staged ingest delta rows.
                delta_rows = 0
                if len(entry) == 6:
                    (
                        action,
                        n_rows,
                        n_bytes,
                        read_bytes,
                        stored_bytes,
                        delta_rows,
                    ) = entry
                elif len(entry) == 5:
                    action, n_rows, n_bytes, read_bytes, stored_bytes = entry
                else:
                    action, n_rows, n_bytes, read_bytes = entry
                    stored_bytes = n_bytes
                partitions.append(
                    PartitionProfile(
                        index=index,
                        action=action,
                        n_rows=n_rows,
                        n_bytes=n_bytes,
                        read_bytes=read_bytes,
                        stored_bytes=stored_bytes,
                        delta_rows=delta_rows,
                    )
                )
            profile.partitions = partitions
        elif kind == "phase":
            name = fields["name"]
            profile.phases[name] = round(
                profile.phases.get(name, 0.0) + fields["seconds"], 12
            )
        elif kind == "cache":
            profile.cache_hit = fields["hit"]
        elif kind == "probe":
            profile.fault_probes += 1
        elif kind == "retry":
            profile.fault_retries += 1
        elif kind == "failover":
            profile.fault_failovers += 1
        elif kind == "lost":
            profile.lost_partitions.append(fields["partition"])
        elif kind == "served_despite_loss":
            profile.served_despite_loss = True
        elif kind == "degraded":
            profile.degraded = dict(fields)

    def end(
        self,
        query: Any,
        mode: Optional[str] = None,
        cost: Any = None,
        answer: Any = None,
        prediction: Any = None,
        error_threshold: Optional[float] = None,
    ) -> Optional[QueryProfile]:
        """Finish ``query``'s profile with the serving outcome."""
        profile = self._open.pop(id(query), None)
        if profile is None:
            return None
        profile.mode = mode
        profile.error_threshold = error_threshold
        if prediction is not None:
            profile.error_estimate = prediction.error_estimate
            profile.quantum_id = int(prediction.quantum_id)
            profile.novelty = float(prediction.novelty)
            profile.reliable = bool(prediction.reliable)
        if cost is not None:
            profile.cost = cost.as_dict()
        profile.answer = repr(answer)
        if len(self.profiles) >= self.capacity:
            self.n_dropped += 1
        else:
            self.profiles.append(profile)
        return profile

    # Export -----------------------------------------------------------------
    def to_jsonl(self) -> str:
        return "\n".join(p.to_json() for p in self.profiles) + (
            "\n" if self.profiles else ""
        )

    def export(self, path: str, overwrite: bool = False) -> str:
        """Write completed profiles as JSON Lines; returns the path."""
        path = prepare_export_path(path, overwrite=overwrite)
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())
        return path


def build_plan_profile(query: Any, engine: Any, agent: Any = None) -> QueryProfile:
    """A plan-only (``EXPLAIN``) profile: no execution, no mutation.

    Reads the engine's zone-map plan and the stored table's partition
    footprints; when an ``agent`` is given, adds the serving path the
    agent *would* take (via its non-mutating :meth:`SEAAgent.preview`).
    Works without an observer attached.
    """
    profile = QueryProfile(
        query=repr(query),
        signature=query.signature(),
        table=query.table_name,
        aggregate=query.aggregate.name,
        kind=EXPLAIN,
    )
    plan = engine.plan_for(query)
    scan_for = getattr(engine, "scan_for", None)
    scan = scan_for(query) if scan_for is not None else None
    stored = engine.store.table(query.table_name)
    profile.pruning = plan is not None
    for index, partition in enumerate(stored.partitions):
        action = P_SCAN if plan is None else plan.actions[index]
        columnar = getattr(partition, "columnar", None)
        stored_bytes = int(
            getattr(partition, "stored_bytes", partition.n_bytes)
        )
        if action == P_SCAN:
            if scan is not None and columnar is not None:
                read_bytes = int(columnar.column_bytes(scan.columns))
            else:
                read_bytes = stored_bytes
        elif action == P_SYNOPSIS:
            read_bytes = int(plan.synopsis_bytes.get(index, 0))
        else:
            read_bytes = 0
        delta = getattr(partition, "delta", None)
        profile.partitions.append(
            PartitionProfile(
                index=index,
                action=action,
                n_rows=int(partition.n_rows),
                n_bytes=int(partition.n_bytes),
                read_bytes=read_bytes,
                stored_bytes=stored_bytes,
                delta_rows=int(delta.n_rows) if delta is not None else 0,
            )
        )
    if agent is not None:
        mode, prediction, cache_hit = agent.preview(query)
        profile.mode = mode
        profile.cache_hit = cache_hit
        profile.error_threshold = agent.config.error_threshold
        if prediction is not None:
            profile.error_estimate = prediction.error_estimate
            profile.quantum_id = int(prediction.quantum_id)
            profile.novelty = float(prediction.novelty)
            profile.reliable = bool(prediction.reliable)
    return profile
