"""The analytical query object: selection + aggregate.

:class:`AnalyticsQuery` is what analysts submit (Fig. 1/2), what engines
execute, and what the learned stack featurizes: its :meth:`vector` is the
point in "query space" that RT1.1 quantizes.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.data.tabular import Table
from repro.queries.aggregates import Aggregate
from repro.queries.selections import Selection

Answer = Union[float, np.ndarray]


class AnalyticsQuery:
    """One analytical query over one table."""

    def __init__(
        self, table_name: str, selection: Selection, aggregate: Aggregate
    ) -> None:
        self.table_name = table_name
        self.selection = selection
        self.aggregate = aggregate
        # The agent asks for these on every routing / caching decision;
        # both are pure functions of the (immutable-by-convention)
        # selection, so compute once.  Treat the vector as read-only.
        self._vector_cache: Optional[np.ndarray] = None
        self._signature_cache: Optional[str] = None

    @property
    def answer_dim(self) -> int:
        return self.aggregate.answer_dim

    def vector(self) -> np.ndarray:
        """The query's position in query space (selection features only).

        Queries with different aggregates live in *separate* query spaces —
        the agent keeps one predictor per (table, aggregate) pair — so the
        aggregate is deliberately not encoded here.
        """
        if self._vector_cache is None:
            self._vector_cache = self.selection.vector()
        return self._vector_cache

    def evaluate(self, table: Table) -> Answer:
        """Ground-truth answer on a materialised table."""
        selected = table.select(self.selection.mask(table))
        return self.aggregate.compute(selected)

    def signature(self) -> str:
        """Key identifying which predictor serves this query."""
        if self._signature_cache is None:
            self._signature_cache = (
                f"{self.table_name}:{self.aggregate.name}:{len(self.vector())}"
            )
        return self._signature_cache

    def __repr__(self) -> str:
        return (
            f"Query({self.aggregate!r} over {self.selection!r} "
            f"on {self.table_name!r})"
        )
