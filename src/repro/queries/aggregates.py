"""Analytical operators applied within a selected data subspace.

Sec. III.A asks for both "descriptive statistics (e.g., aggregations) and
dependence (multivariate) statistics (e.g., regressions, correlations)".
Each aggregate maps the selected rows of a table to a scalar (or small
coefficient vector for regression).  Empty selections return the
aggregate's defined neutral value rather than NaN, mirroring SQL.

Aggregates are also *decomposable or not*: decomposable ones (count, sum,
mean, std, correlation, regression via sufficient statistics) can be
computed from per-partition partial states; holistic ones (median,
quantiles) need the values.  Engines use :attr:`Aggregate.decomposable`
and the ``partial``/``merge`` protocol to shuffle only small states for
the former.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.common.validation import require
from repro.data.tabular import Table


class Aggregate:
    """Interface for analytical operators."""

    name: str = "aggregate"
    decomposable: bool = True
    answer_dim: int = 1

    def compute(self, table: Table) -> float:
        """Exact value over all rows of ``table``."""
        raise NotImplementedError

    def partial(self, table: Table) -> Any:
        """Partial state from one partition (decomposable aggregates)."""
        raise NotImplementedError

    def partial_from_mask(self, table: Table, mask: np.ndarray) -> Any:
        """Partial state of the masked rows of ``table``.

        Always equal to ``partial(table.select(mask))``.  The base
        implementation materialises the selected sub-table; column
        aggregates override it to mask only the columns they read, which
        is what makes shared-scan batched execution cheap.
        """
        return self.partial(table.select(mask))

    def merge(self, partials: List[Any]) -> float:
        """Combine partition states into the final value."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.name


class Count(Aggregate):
    """Row count of the subspace — the paper's canonical example [26], [27]."""

    name = "count"

    def compute(self, table: Table) -> float:
        return float(table.n_rows)

    def partial(self, table: Table) -> float:
        return float(table.n_rows)

    def partial_from_mask(self, table: Table, mask: np.ndarray) -> float:
        return float(np.count_nonzero(mask))

    def merge(self, partials: List[float]) -> float:
        return float(sum(partials))


class _ColumnAggregate(Aggregate):
    def __init__(self, column: str) -> None:
        self.column = column
        self.name = f"{type(self).__name__.lower()}({column})"


class Sum(_ColumnAggregate):
    def compute(self, table: Table) -> float:
        if table.n_rows == 0:
            return 0.0
        return float(table.column(self.column).sum())

    def partial(self, table: Table) -> float:
        return self.compute(table)

    def partial_from_mask(self, table: Table, mask: np.ndarray) -> float:
        col = table.column(self.column)[mask]
        if col.size == 0:
            return 0.0
        return float(col.sum())

    def merge(self, partials: List[float]) -> float:
        return float(sum(partials))


class Mean(_ColumnAggregate):
    def compute(self, table: Table) -> float:
        if table.n_rows == 0:
            return 0.0
        return float(table.column(self.column).mean())

    def partial(self, table: Table) -> Tuple[float, int]:
        if table.n_rows == 0:
            return (0.0, 0)
        return (float(table.column(self.column).sum()), table.n_rows)

    def partial_from_mask(self, table: Table, mask: np.ndarray) -> Tuple[float, int]:
        col = table.column(self.column)[mask]
        if col.size == 0:
            return (0.0, 0)
        return (float(col.sum()), int(col.size))

    def merge(self, partials: List[Tuple[float, int]]) -> float:
        total = sum(p[0] for p in partials)
        count = sum(p[1] for p in partials)
        return float(total / count) if count else 0.0


class Std(_ColumnAggregate):
    """Population standard deviation via (sum, sum-of-squares, count)."""

    def compute(self, table: Table) -> float:
        if table.n_rows == 0:
            return 0.0
        return float(table.column(self.column).std())

    def partial(self, table: Table) -> Tuple[float, float, int]:
        col = table.column(self.column).astype(float)
        return (float(col.sum()), float((col**2).sum()), table.n_rows)

    def partial_from_mask(
        self, table: Table, mask: np.ndarray
    ) -> Tuple[float, float, int]:
        col = table.column(self.column)[mask].astype(float)
        return (float(col.sum()), float((col**2).sum()), int(col.size))

    def merge(self, partials: List[Tuple[float, float, int]]) -> float:
        total = sum(p[0] for p in partials)
        total_sq = sum(p[1] for p in partials)
        count = sum(p[2] for p in partials)
        if count == 0:
            return 0.0
        variance = max(0.0, total_sq / count - (total / count) ** 2)
        return float(np.sqrt(variance))


class Min(_ColumnAggregate):
    """Minimum value; empty subspaces return +inf (the fold identity)."""

    def compute(self, table: Table) -> float:
        if table.n_rows == 0:
            return float("inf")
        return float(table.column(self.column).min())

    def partial(self, table: Table) -> float:
        return self.compute(table)

    def partial_from_mask(self, table: Table, mask: np.ndarray) -> float:
        col = table.column(self.column)[mask]
        if col.size == 0:
            return float("inf")
        return float(col.min())

    def merge(self, partials: List[float]) -> float:
        return float(min(partials)) if partials else float("inf")


class Max(_ColumnAggregate):
    """Maximum value; empty subspaces return -inf (the fold identity)."""

    def compute(self, table: Table) -> float:
        if table.n_rows == 0:
            return float("-inf")
        return float(table.column(self.column).max())

    def partial(self, table: Table) -> float:
        return self.compute(table)

    def partial_from_mask(self, table: Table, mask: np.ndarray) -> float:
        col = table.column(self.column)[mask]
        if col.size == 0:
            return float("-inf")
        return float(col.max())

    def merge(self, partials: List[float]) -> float:
        return float(max(partials)) if partials else float("-inf")


class Variance(_ColumnAggregate):
    """Population variance via (sum, sum-of-squares, count)."""

    def compute(self, table: Table) -> float:
        if table.n_rows == 0:
            return 0.0
        return float(table.column(self.column).var())

    def partial(self, table: Table) -> Tuple[float, float, int]:
        col = table.column(self.column).astype(float)
        return (float(col.sum()), float((col**2).sum()), table.n_rows)

    def partial_from_mask(
        self, table: Table, mask: np.ndarray
    ) -> Tuple[float, float, int]:
        col = table.column(self.column)[mask].astype(float)
        return (float(col.sum()), float((col**2).sum()), int(col.size))

    def merge(self, partials: List[Tuple[float, float, int]]) -> float:
        total = sum(p[0] for p in partials)
        total_sq = sum(p[1] for p in partials)
        count = sum(p[2] for p in partials)
        if count == 0:
            return 0.0
        return float(max(0.0, total_sq / count - (total / count) ** 2))


class Median(_ColumnAggregate):
    """Holistic: partials are the raw values."""

    decomposable = False

    def compute(self, table: Table) -> float:
        if table.n_rows == 0:
            return 0.0
        return float(np.median(table.column(self.column)))

    def partial(self, table: Table) -> np.ndarray:
        return table.column(self.column).astype(float)

    def partial_from_mask(self, table: Table, mask: np.ndarray) -> np.ndarray:
        return table.column(self.column)[mask].astype(float)

    def merge(self, partials: List[np.ndarray]) -> float:
        values = np.concatenate(partials) if partials else np.empty(0)
        return float(np.median(values)) if values.size else 0.0


class Quantile(_ColumnAggregate):
    """Holistic q-quantile, q in [0, 1]."""

    decomposable = False

    def __init__(self, column: str, q: float) -> None:
        super().__init__(column)
        require(0.0 <= q <= 1.0, f"q must be in [0, 1], got {q}")
        self.q = float(q)
        self.name = f"quantile({column}, {q})"

    def compute(self, table: Table) -> float:
        if table.n_rows == 0:
            return 0.0
        return float(np.quantile(table.column(self.column), self.q))

    def partial(self, table: Table) -> np.ndarray:
        return table.column(self.column).astype(float)

    def partial_from_mask(self, table: Table, mask: np.ndarray) -> np.ndarray:
        return table.column(self.column)[mask].astype(float)

    def merge(self, partials: List[np.ndarray]) -> float:
        values = np.concatenate(partials) if partials else np.empty(0)
        return float(np.quantile(values, self.q)) if values.size else 0.0


class Correlation(Aggregate):
    """Pearson correlation between two columns (dependence statistics).

    Decomposable via the five sufficient sums.  Degenerate subspaces
    (fewer than two rows, or zero variance) return 0.0.
    """

    def __init__(self, column_a: str, column_b: str) -> None:
        self.column_a = column_a
        self.column_b = column_b
        self.name = f"corr({column_a}, {column_b})"

    def compute(self, table: Table) -> float:
        return self.merge([self.partial(table)])

    def partial(self, table: Table) -> Tuple[float, float, float, float, float, int]:
        a = table.column(self.column_a).astype(float)
        b = table.column(self.column_b).astype(float)
        return (
            float(a.sum()),
            float(b.sum()),
            float((a * a).sum()),
            float((b * b).sum()),
            float((a * b).sum()),
            table.n_rows,
        )

    def partial_from_mask(
        self, table: Table, mask: np.ndarray
    ) -> Tuple[float, float, float, float, float, int]:
        a = table.column(self.column_a)[mask].astype(float)
        b = table.column(self.column_b)[mask].astype(float)
        return (
            float(a.sum()),
            float(b.sum()),
            float((a * a).sum()),
            float((b * b).sum()),
            float((a * b).sum()),
            int(a.size),
        )

    def merge(self, partials: List[Tuple]) -> float:
        sa = sum(p[0] for p in partials)
        sb = sum(p[1] for p in partials)
        saa = sum(p[2] for p in partials)
        sbb = sum(p[3] for p in partials)
        sab = sum(p[4] for p in partials)
        n = sum(p[5] for p in partials)
        if n < 2:
            return 0.0
        var_a = saa - sa * sa / n
        var_b = sbb - sb * sb / n
        if var_a <= 0 or var_b <= 0:
            return 0.0
        cov = sab - sa * sb / n
        return float(cov / np.sqrt(var_a * var_b))


class RegressionCoefficients(Aggregate):
    """OLS coefficients of ``target ~ features`` within the subspace.

    The answer is the vector ``(intercept, slope_1 ... slope_d)``, the
    "model coefficients for predictive analytics" functionality of
    Sec. III.A.  Decomposable through the normal-equation sufficient
    statistics X'X and X'y.
    """

    def __init__(self, target: str, features: Sequence[str]) -> None:
        require(len(features) >= 1, "regression needs at least one feature")
        self.target = target
        self.features = tuple(features)
        self.name = f"reg({target} ~ {', '.join(features)})"
        self.answer_dim = len(features) + 1

    def compute(self, table: Table) -> np.ndarray:
        return self.merge([self.partial(table)])

    def partial(self, table: Table) -> Tuple[np.ndarray, np.ndarray, int]:
        if table.n_rows == 0:
            d = len(self.features) + 1
            return (np.zeros((d, d)), np.zeros(d), 0)
        x = table.matrix(self.features)
        design = np.hstack([np.ones((x.shape[0], 1)), x])
        y = table.column(self.target).astype(float)
        return (design.T @ design, design.T @ y, table.n_rows)

    def merge(self, partials: List[Tuple]) -> np.ndarray:
        d = len(self.features) + 1
        xtx = np.zeros((d, d))
        xty = np.zeros(d)
        n = 0
        for px, py, pn in partials:
            xtx += px
            xty += py
            n += pn
        if n <= d:
            return np.zeros(d)
        # Tiny ridge term for numerical stability on near-singular subspaces.
        return np.linalg.solve(xtx + 1e-9 * np.eye(d), xty)
