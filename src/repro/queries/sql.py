"""A small SQL-like front end for analytical queries.

Sec. III.A: analysts "can directly issue SQL(-like) queries, (e.g., in
Hive or Pig environments implemented on top of a BDAS)".  This module
parses the analytical fragment those queries take in the paper — one
aggregate over one table restricted to a conjunctive range predicate —
into an :class:`~repro.queries.query.AnalyticsQuery`:

    SELECT COUNT(*)        FROM sensors WHERE x0 BETWEEN 10 AND 20
    SELECT AVG(value)      FROM sensors WHERE x0 >= 10 AND x0 <= 20 AND x1 < 5
    SELECT CORR(x0, value) FROM sensors WHERE x1 BETWEEN 0 AND 50
    SELECT REGR(value; x0, x1) FROM sensors WHERE x0 BETWEEN 10 AND 30

Supported aggregates: COUNT(*), SUM/AVG/MEAN, MIN, MAX, STD, VAR,
MEDIAN, QUANTILE(col, q), CORR(a, b), REGR(target; features...).
Predicates: ``BETWEEN a AND b``, ``>=``, ``<=``, ``>``, ``<``, joined by
``AND``.  Open-ended comparisons clamp against +-1e18 (effectively
unbounded).  The grammar is deliberately tiny: it is an analyst-facing
convenience, not a SQL engine.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.common.errors import QueryError
from repro.queries.aggregates import (
    Aggregate,
    Correlation,
    Count,
    Max,
    Mean,
    Median,
    Min,
    Quantile,
    RegressionCoefficients,
    Std,
    Sum,
    Variance,
)
from repro.queries.query import AnalyticsQuery
from repro.queries.selections import RangeSelection

_UNBOUNDED = 1e18

_NUMBER = r"[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?"

_QUERY_RE = re.compile(
    r"^\s*SELECT\s+(?P<agg>.+?)\s+FROM\s+(?P<table>\w+)"
    r"(?:\s+WHERE\s+(?P<where>.+?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)

_BETWEEN_RE = re.compile(
    rf"^(?P<col>\w+)\s+BETWEEN\s+(?P<lo>{_NUMBER})\s+AND\s+(?P<hi>{_NUMBER})$",
    re.IGNORECASE,
)

_COMPARE_RE = re.compile(
    rf"^(?P<col>\w+)\s*(?P<op>>=|<=|>|<)\s*(?P<value>{_NUMBER})$"
)

_AGG_RE = re.compile(r"^(?P<name>\w+)\s*\(\s*(?P<args>[^)]*)\s*\)$")


def parse_query(sql: str) -> AnalyticsQuery:
    """Parse one SQL-like statement into an :class:`AnalyticsQuery`."""
    match = _QUERY_RE.match(sql)
    if match is None:
        raise QueryError(
            f"cannot parse {sql!r}: expected "
            "'SELECT <aggregate> FROM <table> [WHERE <predicates>]'"
        )
    aggregate = _parse_aggregate(match.group("agg"))
    table = match.group("table")
    bounds = _parse_where(match.group("where"))
    if not bounds:
        raise QueryError(
            "a WHERE clause with at least one range predicate is required "
            "(analytical queries select a data subspace, Sec. III.A)"
        )
    columns = sorted(bounds)
    lows = [bounds[c][0] for c in columns]
    highs = [bounds[c][1] for c in columns]
    selection = RangeSelection(tuple(columns), lows, highs)
    return AnalyticsQuery(table, selection, aggregate)


def _parse_aggregate(text: str) -> Aggregate:
    text = text.strip()
    match = _AGG_RE.match(text)
    if match is None:
        raise QueryError(f"cannot parse aggregate {text!r}")
    name = match.group("name").upper()
    args = [a.strip() for a in _split_args(match.group("args"))]
    if name == "COUNT":
        if args not in ([""], ["*"]):
            raise QueryError("COUNT takes '*' (per-column counts unsupported)")
        return Count()
    if name == "REGR":
        raw = match.group("args")
        if ";" not in raw:
            raise QueryError("REGR syntax: REGR(target; feature1, feature2...)")
        target, features_text = raw.split(";", 1)
        features = [f.strip() for f in features_text.split(",") if f.strip()]
        if not features:
            raise QueryError("REGR needs at least one feature column")
        return RegressionCoefficients(target.strip(), features)
    if name == "CORR":
        if len(args) != 2 or not all(args):
            raise QueryError("CORR takes exactly two columns")
        return Correlation(args[0], args[1])
    if name == "QUANTILE":
        if len(args) != 2:
            raise QueryError("QUANTILE takes (column, q)")
        return Quantile(args[0], float(args[1]))
    single = {
        "SUM": Sum,
        "AVG": Mean,
        "MEAN": Mean,
        "MIN": Min,
        "MAX": Max,
        "STD": Std,
        "VAR": Variance,
        "VARIANCE": Variance,
        "MEDIAN": Median,
    }
    if name in single:
        if len(args) != 1 or not args[0] or args[0] == "*":
            raise QueryError(f"{name} takes exactly one column")
        return single[name](args[0])
    raise QueryError(f"unsupported aggregate {name!r}")


def _split_args(text: str) -> List[str]:
    return text.split(",") if text.strip() else [""]


def _parse_where(where: Optional[str]) -> Dict[str, Tuple[float, float]]:
    """Conjunctive predicates -> per-column (lo, hi) bounds."""
    if where is None:
        return {}
    bounds: Dict[str, Tuple[float, float]] = {}
    # Split on AND, then re-join the AND that belongs to BETWEEN a AND b.
    raw = re.split(r"\s+AND\s+", where.strip(), flags=re.IGNORECASE)
    parts: List[str] = []
    i = 0
    half_between = re.compile(
        rf"^\w+\s+BETWEEN\s+{_NUMBER}$", re.IGNORECASE
    )
    while i < len(raw):
        token = raw[i].strip()
        if half_between.match(token):
            if i + 1 >= len(raw):
                raise QueryError(f"dangling BETWEEN in {where!r}")
            token = f"{token} AND {raw[i + 1].strip()}"
            i += 1
        parts.append(token)
        i += 1
    for part in parts:
        part = part.strip()
        between = _BETWEEN_RE.match(part)
        if between:
            _merge(
                bounds,
                between.group("col"),
                float(between.group("lo")),
                float(between.group("hi")),
            )
            continue
        compare = _COMPARE_RE.match(part)
        if compare is None:
            raise QueryError(f"cannot parse predicate {part!r}")
        column = compare.group("col")
        value = float(compare.group("value"))
        op = compare.group("op")
        if op in (">=", ">"):
            _merge(bounds, column, value, _UNBOUNDED)
        else:
            _merge(bounds, column, -_UNBOUNDED, value)
    return bounds


def _merge(
    bounds: Dict[str, Tuple[float, float]], column: str, lo: float, hi: float
) -> None:
    if column in bounds:
        old_lo, old_hi = bounds[column]
        lo, hi = max(old_lo, lo), min(old_hi, hi)
    if lo > hi:
        raise QueryError(
            f"contradictory predicates on {column!r}: [{lo}, {hi}] is empty"
        )
    bounds[column] = (lo, hi)
