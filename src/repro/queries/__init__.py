"""Analytical query algebra.

Sec. III.A: queries "consist of (a) selection operators, which identify a
data subspace of interest and (b) an analytical operator over the data
items within this data subspace."

* :mod:`repro.queries.selections` — range (hyper-rectangle), radius
  (hyper-sphere) and kNN selections.
* :mod:`repro.queries.aggregates` — descriptive statistics (count, sum,
  mean, std, median, quantile) and dependence statistics (correlation,
  linear-regression coefficients).
* :mod:`repro.queries.query` — :class:`AnalyticsQuery` combining the two,
  with the vector encoding the learned models quantize (RT1.1).
"""

from repro.queries.selections import (
    Selection,
    RangeSelection,
    RadiusSelection,
    KNNSelection,
    batch_masks,
)
from repro.queries.aggregates import (
    Aggregate,
    Count,
    Sum,
    Mean,
    Std,
    Variance,
    Min,
    Max,
    Median,
    Quantile,
    Correlation,
    RegressionCoefficients,
)
from repro.queries.query import AnalyticsQuery
from repro.queries.sql import parse_query

__all__ = [
    "Selection",
    "RangeSelection",
    "RadiusSelection",
    "KNNSelection",
    "Aggregate",
    "Count",
    "Sum",
    "Mean",
    "Std",
    "Variance",
    "Min",
    "Max",
    "Median",
    "Quantile",
    "Correlation",
    "RegressionCoefficients",
    "AnalyticsQuery",
    "parse_query",
    "batch_masks",
]
