"""Selection operators: the "data subspace of interest" part of a query.

Each selection can (a) produce a boolean row mask over a
:class:`~repro.data.tabular.Table` — the ground-truth semantics — and
(b) encode itself as a fixed-length feature vector, which is what the
query-space quantizer and answer-space models consume (RT1).

The vector convention is ``(centre..., extent...)``: a hyper-rectangle is
encoded by its centre and half-widths, a hyper-sphere by its centre and
radius.  Centre/extent encodings make nearby, overlapping queries —
exactly the workload property P2 leverages — land close in vector space.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.common.errors import QueryError
from repro.common.validation import require
from repro.data.tabular import Table


class Selection:
    """Interface for selection operators."""

    columns: Tuple[str, ...]

    #: True when :meth:`bounding_box` *is* the selection's semantics (every
    #: row inside the box is selected).  Zone-map pruning uses the box
    #: conservatively for any selection, but only box-exact selections can
    #: short-circuit fully covered partitions from synopsis statistics.
    box_is_exact: bool = False

    def mask(self, table: Table) -> np.ndarray:
        """Boolean mask of the rows this selection picks from ``table``."""
        raise NotImplementedError

    def vector(self) -> np.ndarray:
        """Fixed-length feature encoding for learned models."""
        raise NotImplementedError

    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        """(lows, highs) box enclosing the selected subspace."""
        raise NotImplementedError

    #: Per-instance cache behind :meth:`box` (class attr = unset).
    _box_cache: Tuple[np.ndarray, np.ndarray] = None

    def box(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached :meth:`bounding_box` — hoists the per-query invariant.

        Selections are immutable after construction, so the box is
        computed once per instance no matter how many partitions a plan
        consults it for.  Callers must not mutate the returned arrays.
        """
        if self._box_cache is None:
            self._box_cache = self.bounding_box()
        return self._box_cache

    @property
    def dim(self) -> int:
        return len(self.columns)


class RangeSelection(Selection):
    """Axis-aligned hyper-rectangle: ``lows[i] <= col_i <= highs[i]``."""

    box_is_exact = True

    def __init__(self, columns: Sequence[str], lows, highs) -> None:
        self.columns = tuple(columns)
        self.lows = np.asarray(lows, dtype=float).ravel()
        self.highs = np.asarray(highs, dtype=float).ravel()
        require(
            len(self.columns) == self.lows.shape[0] == self.highs.shape[0],
            "columns, lows and highs must have equal length",
        )
        if np.any(self.lows > self.highs):
            raise QueryError(
                f"empty range selection: lows {self.lows} exceed highs {self.highs}"
            )

    @classmethod
    def around(cls, columns: Sequence[str], center, half_widths) -> "RangeSelection":
        """Build from centre and half-widths (the vector encoding inverse)."""
        center = np.asarray(center, dtype=float).ravel()
        half = np.asarray(half_widths, dtype=float).ravel()
        return cls(columns, center - half, center + half)

    @property
    def center(self) -> np.ndarray:
        return (self.lows + self.highs) / 2.0

    @property
    def half_widths(self) -> np.ndarray:
        return (self.highs - self.lows) / 2.0

    def mask(self, table: Table) -> np.ndarray:
        out = np.ones(table.n_rows, dtype=bool)
        for name, lo, hi in zip(self.columns, self.lows, self.highs):
            col = table.column(name)
            out &= (col >= lo) & (col <= hi)
        return out

    def vector(self) -> np.ndarray:
        return np.concatenate([self.center, self.half_widths])

    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.lows.copy(), self.highs.copy()

    def volume(self) -> float:
        return float(np.prod(self.highs - self.lows))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{lo:.3g}<={c}<={hi:.3g}"
            for c, lo, hi in zip(self.columns, self.lows, self.highs)
        )
        return f"Range({parts})"


class RadiusSelection(Selection):
    """Hyper-sphere: euclidean distance to ``center`` at most ``radius``."""

    def __init__(self, columns: Sequence[str], center, radius: float) -> None:
        self.columns = tuple(columns)
        self.center = np.asarray(center, dtype=float).ravel()
        require(
            len(self.columns) == self.center.shape[0],
            "columns and center must have equal length",
        )
        require(radius >= 0, f"radius must be non-negative, got {radius}")
        self.radius = float(radius)

    def mask(self, table: Table) -> np.ndarray:
        points = table.matrix(self.columns)
        diff = points - self.center
        return np.einsum("ij,ij->i", diff, diff) <= self.radius**2

    def vector(self) -> np.ndarray:
        return np.concatenate([self.center, [self.radius]])

    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.center - self.radius, self.center + self.radius

    def __repr__(self) -> str:
        return f"Radius(center={np.round(self.center, 3)}, r={self.radius:.3g})"


def batch_masks(selections: Sequence[Selection], table: Table) -> List[np.ndarray]:
    """Boolean masks for many selections over one table, sharing the scan.

    A homogeneous batch of :class:`RangeSelection` over the same columns
    evaluates as one broadcast comparison per column, reading each column
    once for the whole batch; floating-point comparisons are exact, so
    every mask is bitwise equal to ``selection.mask(table)``.  Mixed
    batches fall back to the per-selection loop.
    """
    if not selections:
        return []
    if len(selections) >= 2 and all(
        type(s) is RangeSelection for s in selections
    ):
        columns = selections[0].columns
        if all(s.columns == columns for s in selections[1:]):
            lows = np.stack([s.lows for s in selections])
            highs = np.stack([s.highs for s in selections])
            shape = (len(selections), table.n_rows)
            out = np.empty(shape, dtype=bool)
            scratch = np.empty(shape, dtype=bool)
            for j, name in enumerate(columns):
                col = table.column(name)[None, :]
                if j == 0:
                    np.greater_equal(col, lows[:, j, None], out=out)
                else:
                    np.greater_equal(col, lows[:, j, None], out=scratch)
                    out &= scratch
                np.less_equal(col, highs[:, j, None], out=scratch)
                out &= scratch
            return list(out)
    return [s.mask(table) for s in selections]


class KNNSelection(Selection):
    """The ``k`` rows nearest to ``point`` (euclidean over ``columns``).

    kNN is not mask-expressible without a global sort, so :meth:`mask`
    computes the exact answer by ranking all rows — the semantics used to
    validate the distributed kNN operators of RT2.
    """

    def __init__(self, columns: Sequence[str], point, k: int) -> None:
        self.columns = tuple(columns)
        self.point = np.asarray(point, dtype=float).ravel()
        require(
            len(self.columns) == self.point.shape[0],
            "columns and point must have equal length",
        )
        require(k >= 1, f"k must be >= 1, got {k}")
        self.k = int(k)

    def mask(self, table: Table) -> np.ndarray:
        n = table.n_rows
        if n == 0:
            return np.zeros(0, dtype=bool)
        if self.k >= n:
            # Fewer rows than neighbours asked for: every row qualifies
            # (argpartition with kth == n-1 is legal but pointless, and
            # kth would go negative for an empty partition).
            return np.ones(n, dtype=bool)
        points = table.matrix(self.columns)
        diff = points - self.point
        dist = np.einsum("ij,ij->i", diff, diff)
        idx = np.argpartition(dist, self.k - 1)[: self.k]
        out = np.zeros(n, dtype=bool)
        out[idx] = True
        return out

    def vector(self) -> np.ndarray:
        return np.concatenate([self.point, [float(self.k)]])

    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        # Unbounded a priori; callers that need a box must estimate a radius.
        inf = np.full(self.point.shape[0], np.inf)
        return self.point - inf, self.point + inf

    def __repr__(self) -> str:
        return f"KNN(point={np.round(self.point, 3)}, k={self.k})"
