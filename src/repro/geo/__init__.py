"""Global-scale geo-distributed SEA (RT5, Fig. 3).

Core datacenters store base data and can answer exactly; edge sites hold
*only models* and answer approximately, reaching across the WAN only when
a local prediction is unreliable:

* :mod:`repro.geo.topology` — core + edge site layout over the cluster
  substrate (RT5.1).
* :mod:`repro.geo.edge` — :class:`EdgeAgent`, the query-facing agent at
  one edge site.
* :mod:`repro.geo.federation` — distributed model building at the cores
  from multi-edge training streams, model push-down, and the shared
  model-state registry (RT5.2, RT5.3).
* :mod:`repro.geo.routing` — per-query routing: local model -> peer edge
  -> core (RT5.4), driven by estimated model error (RT5.5).
"""

from repro.geo.topology import GeoSites
from repro.geo.edge import EdgeAgent, EdgeServed
from repro.geo.federation import CoreCoordinator, ModelRegistry
from repro.geo.routing import GeoRouter

__all__ = [
    "GeoSites",
    "EdgeAgent",
    "EdgeServed",
    "CoreCoordinator",
    "ModelRegistry",
    "GeoRouter",
]
