"""The edge agent (RT5, Fig. 3).

"The system (i.e., an agent at some edge node) accesses base data (stored
at remote data centres) only when expected errors of local models at the
edge node is high."

:class:`EdgeAgent` mirrors :class:`~repro.core.agent.SEAAgent` but lives
at a WAN edge: a fallback is not just a cluster job — it is a WAN round
trip to a core plus the exact execution there.  Every served query is
tagged with where it was answered (``local`` / ``peer`` / ``core``), and
the agent keeps learning from every exact answer that comes back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.accounting import CostMeter, CostReport
from repro.common.errors import NotTrainedError
from repro.core.agent import AgentConfig
from repro.core.answer_models import AnswerModelFactory
from repro.core.error import PrequentialErrorEstimator
from repro.core.predictor import DatalessPredictor, Prediction
from repro.core.quantization import QuerySpaceQuantizer
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.queries.query import AnalyticsQuery, Answer

_QUERY_BYTES = 512
_ANSWER_BYTES = 64


@dataclass
class EdgeServed:
    """How one query was served at the edge."""

    query: AnalyticsQuery
    answer: Answer
    origin: str  # "local" | "peer" | "core"
    cost: CostReport
    prediction: Optional[Prediction] = None


class EdgeAgent:
    """A model-holding, query-facing agent at one edge site."""

    def __init__(
        self,
        name: str,
        node_id: str,
        core_engine,
        core_gateway: str,
        config: Optional[AgentConfig] = None,
    ) -> None:
        self.name = name
        self.node_id = node_id
        self.core_engine = core_engine
        self.core_gateway = core_gateway
        self.config = config or AgentConfig()
        self.observer: Observer = NULL_OBSERVER
        self._predictors: Dict[str, DatalessPredictor] = {}
        self.n_queries = 0
        self.n_local = 0
        self.n_core = 0

    def attach_observer(self, observer: Observer) -> None:
        """Record this edge's serving costs on ``observer``."""
        self.observer = observer

    # Serving ---------------------------------------------------------------
    def submit(self, query: AnalyticsQuery) -> EdgeServed:
        """Answer locally when the model is good enough; else go to core."""
        self.n_queries += 1
        predictor = self.predictor_for(query)
        in_training = self.n_queries <= self.config.training_budget
        if not in_training:
            try:
                prediction = predictor.predict(query.vector())
            except NotTrainedError:
                prediction = None
            if (
                prediction is not None
                and prediction.reliable
                and prediction.error_estimate <= self.config.error_threshold
            ):
                self.n_local += 1
                return EdgeServed(
                    query=query,
                    answer=prediction.scalar
                    if query.answer_dim == 1
                    else prediction.value,
                    origin="local",
                    cost=self._local_cost(),
                    prediction=prediction,
                )
        record = self._ask_core(query, predictor)
        return record

    def _ask_core(
        self, query: AnalyticsQuery, predictor: DatalessPredictor
    ) -> EdgeServed:
        """WAN round trip to the core for an exact answer; keep learning."""
        self.n_core += 1
        obs = self.observer
        answer, core_report = self.core_engine.execute(query)
        meter = CostMeter(observer=obs if obs.enabled else None)
        with obs.span(
            "wan_round_trip", meter=meter, category="geo", edge=self.name
        ):
            seconds = meter.charge_transfer(
                self.node_id, self.core_gateway, _QUERY_BYTES, wan=True
            )
            seconds += meter.charge_transfer(
                self.core_gateway,
                self.node_id,
                _ANSWER_BYTES * query.answer_dim,
                wan=True,
            )
            meter.advance(seconds)
        predictor.observe(query.vector(), answer)
        total = core_report.merged_sequential(meter.freeze())
        return EdgeServed(query=query, answer=answer, origin="core", cost=total)

    # Model management (used by the federation layer) -------------------------
    def predictor_for(self, query: AnalyticsQuery) -> DatalessPredictor:
        signature = query.signature()
        if signature not in self._predictors:
            self._predictors[signature] = self._new_predictor(query.answer_dim)
        return self._predictors[signature]

    def install_model(self, signature: str, predictor: DatalessPredictor) -> None:
        """Adopt a model built elsewhere (core push-down, RT5.2).

        The model is deep-copied: after the push, the edge's copy evolves
        independently with local traffic — exactly what shipping
        serialized model state over the WAN gives you (the transfer bytes
        are charged by the caller).
        """
        import copy

        self._predictors[signature] = copy.deepcopy(predictor)

    def has_model(self, signature: str) -> bool:
        predictor = self._predictors.get(signature)
        if predictor is None:
            return False
        return any(
            (m is not None and m.is_trained)
            for m in (predictor.model_for(q) for q in predictor.quantum_ids())
        )

    def state_bytes(self) -> int:
        return sum(p.state_bytes() for p in self._predictors.values())

    def stats(self) -> Dict[str, float]:
        return {
            "queries": float(self.n_queries),
            "local": float(self.n_local),
            "core": float(self.n_core),
            "local_fraction": self.n_local / self.n_queries if self.n_queries else 0.0,
            "state_bytes": float(self.state_bytes()),
        }

    # Internals -------------------------------------------------------------
    def _new_predictor(self, answer_dim: int) -> DatalessPredictor:
        config = self.config
        return DatalessPredictor(
            answer_dim=answer_dim,
            quantizer=QuerySpaceQuantizer(
                n_quanta=config.n_quanta,
                grow_threshold=config.grow_threshold,
                max_quanta=config.max_quanta,
                warmup=config.warmup,
            ),
            factory=AnswerModelFactory(config.model_family),
            error_estimator=PrequentialErrorEstimator(
                quantile=config.error_quantile
            ),
            novelty_limit=config.novelty_limit,
        )

    def _local_cost(self) -> CostReport:
        """A locally answered query: edge-node inference only, no WAN."""
        obs = self.observer
        meter = CostMeter(observer=obs if obs.enabled else None)
        with obs.span(
            "edge_inference", meter=meter, category="geo", edge=self.name
        ):
            meter.charge_cpu(self.node_id, 4096)
            meter.advance(1e-3)
        return meter.freeze()
