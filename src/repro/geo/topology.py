"""Core/edge network layout (RT5.1).

"We envisage the network to contain core nodes and edge nodes.  The core
nodes store the actual data. ... edge nodes typically maintain only models
of the base data and can provide only approximate answers."

:class:`GeoSites` wraps a :class:`~repro.cluster.topology.ClusterTopology`
whose datacenters are split into *core* datacenters (multi-node, holding
table partitions) and *edge* sites (one node each, holding model state
only).  All core<->edge and edge<->edge traffic is WAN.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.errors import ConfigurationError
from repro.common.validation import require
from repro.cluster.storage import DistributedStore
from repro.cluster.topology import ClusterTopology


class GeoSites:
    """Named core datacenters plus single-node edge sites."""

    def __init__(
        self,
        n_cores: int = 2,
        nodes_per_core: int = 4,
        n_edges: int = 8,
        replication: int = 1,
    ) -> None:
        require(n_cores >= 1, "need at least one core datacenter")
        require(nodes_per_core >= 1, "nodes_per_core must be >= 1")
        require(n_edges >= 1, "need at least one edge site")
        datacenters: Dict[str, int] = {}
        self.core_names = [f"core{i}" for i in range(n_cores)]
        self.edge_names = [f"edge{i}" for i in range(n_edges)]
        for name in self.core_names:
            datacenters[name] = nodes_per_core
        for name in self.edge_names:
            datacenters[name] = 1
        self.topology = ClusterTopology.geo_distributed(datacenters)
        core_nodes = [
            node
            for name in self.core_names
            for node in self.topology.nodes_in(name)
        ]
        require(
            replication <= len(core_nodes),
            "replication exceeds total core nodes",
        )
        self.store = DistributedStore(self.topology, replication=replication)
        self._core_nodes = core_nodes

    @property
    def core_nodes(self) -> List[str]:
        """All data-holding nodes across core datacenters."""
        return list(self._core_nodes)

    def edge_node(self, edge_name: str) -> str:
        """The single node of an edge site."""
        if edge_name not in self.edge_names:
            raise ConfigurationError(f"unknown edge site {edge_name!r}")
        return self.topology.nodes_in(edge_name)[0]

    def core_gateway(self, core_name: str = None) -> str:
        """The node of a core datacenter that faces the WAN."""
        name = core_name if core_name is not None else self.core_names[0]
        if name not in self.core_names:
            raise ConfigurationError(f"unknown core datacenter {name!r}")
        return self.topology.nodes_in(name)[0]

    def put_table(self, table, partitions_per_node: int = 1, seed=0):
        """Place a table across the core nodes only (edges hold no data)."""
        return self.store.put_table(
            table,
            partitions_per_node=partitions_per_node,
            nodes=self.core_nodes,
            seed=seed,
        )
