"""Analytical query routing across the geo-distributed system (RT5.4).

"Given an analytical query at some edge node, query routing refers to
deciding where should the query be answered.  Should it answered at the
local edge node?  Should it be sent to another edge node? ... Should it
reach other nodes?"

:class:`GeoRouter` implements the three-tier policy the paper sketches:

1. **local** — the edge's own model, if its estimated error passes;
2. **peer** — an edge that the model registry lists as holding a usable
   model for this signature (one WAN hop to the peer, whose model answers
   if *its* error estimate passes);
3. **core** — the exact engine at a core datacenter (WAN hop + full job),
   whose answer also trains the local model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.accounting import CostMeter
from repro.common.errors import NotTrainedError, RoutingError
from repro.geo.edge import EdgeAgent, EdgeServed
from repro.geo.federation import CoreCoordinator
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.queries.query import AnalyticsQuery

_QUERY_BYTES = 512
_ANSWER_BYTES = 64


class GeoRouter:
    """Routes queries arising at edges through local/peer/core tiers."""

    def __init__(
        self,
        edges: List[EdgeAgent],
        core: CoreCoordinator,
        peer_routing: bool = True,
        observer: Optional[Observer] = None,
    ) -> None:
        if not edges:
            raise RoutingError("router needs at least one edge")
        self.edges = {edge.name: edge for edge in edges}
        self.core = core
        self.peer_routing = peer_routing
        self.observer = observer or NULL_OBSERVER

    def attach_observer(self, observer: Observer) -> None:
        """Record routing decisions (and core executions) on ``observer``."""
        self.observer = observer
        for edge in self.edges.values():
            edge.attach_observer(observer)
            hook = getattr(edge.core_engine, "attach_observer", None)
            if callable(hook):
                hook(observer)

    def submit(self, edge_name: str, query: AnalyticsQuery) -> EdgeServed:
        """Serve a query arriving at ``edge_name``."""
        obs = self.observer
        if not obs.enabled:
            return self._route(edge_name, query)
        with obs.span(
            "geo_query", category="query", edge=edge_name,
            signature=query.signature(),
        ) as args:
            served = self._route(edge_name, query)
            args["origin"] = served.origin
        obs.inc("sea_geo_routes_total", origin=served.origin)
        if served.origin == "core":
            obs.inc("sea_geo_wan_fallbacks_total")
        obs.observe(
            "sea_geo_latency_seconds", served.cost.elapsed_sec, origin=served.origin
        )
        obs.event(
            "geo_route",
            edge=edge_name,
            origin=served.origin,
            local_hit=served.origin == "local",
            wan_fallback=served.origin == "core",
            signature=query.signature(),
            elapsed_sec=served.cost.elapsed_sec,
            error_estimate=(
                served.prediction.error_estimate
                if served.prediction is not None
                else None
            ),
        )
        return served

    def _route(self, edge_name: str, query: AnalyticsQuery) -> EdgeServed:
        edge = self._edge(edge_name)
        edge.n_queries += 1
        predictor = edge.predictor_for(query)
        threshold = edge.config.error_threshold

        # Tier 1: local model.
        prediction = self._try_predict(predictor, query)
        if (
            prediction is not None
            and prediction.reliable
            and prediction.error_estimate <= threshold
        ):
            edge.n_local += 1
            return EdgeServed(
                query=query,
                answer=prediction.scalar if query.answer_dim == 1 else prediction.value,
                origin="local",
                cost=edge._local_cost(),
                prediction=prediction,
            )

        # Tier 2: a peer edge holding a registered model.
        if self.peer_routing:
            served = self._try_peer(edge, query)
            if served is not None:
                return served

        # Tier 3: the core (exact; the local model learns from the answer).
        return edge._ask_core(query, predictor)

    def _try_peer(
        self, edge: EdgeAgent, query: AnalyticsQuery
    ) -> Optional[EdgeServed]:
        signature = query.signature()
        for holder_name in self.core.registry.holders(signature):
            if holder_name == edge.name:
                continue
            peer = self.edges.get(holder_name)
            if peer is None:
                continue
            prediction = self._try_predict(peer.predictor_for(query), query)
            if (
                prediction is None
                or not prediction.reliable
                or prediction.error_estimate > peer.config.error_threshold
            ):
                continue
            obs = self.observer
            meter = CostMeter(observer=obs if obs.enabled else None)
            with obs.span(
                "peer_hop", meter=meter, category="geo",
                peer=peer.name, edge=edge.name,
            ):
                seconds = meter.charge_transfer(
                    edge.node_id, peer.node_id, _QUERY_BYTES, wan=True
                )
                seconds += meter.charge_cpu(peer.node_id, 4096)
                seconds += meter.charge_transfer(
                    peer.node_id, edge.node_id,
                    _ANSWER_BYTES * query.answer_dim, wan=True,
                )
                meter.advance(seconds)
            return EdgeServed(
                query=query,
                answer=prediction.scalar if query.answer_dim == 1 else prediction.value,
                origin="peer",
                cost=meter.freeze(),
                prediction=prediction,
            )
        return None

    @staticmethod
    def _try_predict(predictor, query):
        try:
            return predictor.predict(query.vector())
        except NotTrainedError:
            return None

    def _edge(self, name: str) -> EdgeAgent:
        try:
            return self.edges[name]
        except KeyError:
            raise RoutingError(
                f"unknown edge {name!r}; have {sorted(self.edges)}"
            ) from None
