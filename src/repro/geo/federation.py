"""Distributed model building, push-down, and the model registry (RT5.2/3).

"The initial training queries will reach the core nodes, but this time
from different edge nodes.  Said core nodes can then collaborate to train
a model faster, by considering training queries from several different
edge nodes.  Subsequently, the core nodes can then communicate the model
to the edge nodes from where relevant queries originated."

:class:`CoreCoordinator` sits at a core datacenter.  During the training
window it records every (edge, query, exact answer) triple that flows
through it into a *shared* predictor per query signature — so each edge
benefits from every other edge's training queries.  ``push_models`` then
ships the trained predictors over the WAN to the edges that contributed
relevant queries, and registers who holds what in the
:class:`ModelRegistry` (the "model state" that query routing consults).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.accounting import CostMeter, CostReport
from repro.core.agent import AgentConfig
from repro.core.answer_models import AnswerModelFactory
from repro.core.error import PrequentialErrorEstimator
from repro.core.predictor import DatalessPredictor
from repro.core.quantization import QuerySpaceQuantizer
from repro.geo.edge import EdgeAgent
from repro.queries.query import AnalyticsQuery


class ModelRegistry:
    """Which sites hold a usable model for which query signature."""

    def __init__(self) -> None:
        self._holders: Dict[str, Set[str]] = {}

    def register(self, signature: str, site: str) -> None:
        self._holders.setdefault(signature, set()).add(site)

    def unregister(self, signature: str, site: str) -> None:
        self._holders.get(signature, set()).discard(site)

    def holders(self, signature: str) -> List[str]:
        return sorted(self._holders.get(signature, ()))

    def state_bytes(self) -> int:
        return sum(
            len(sig) + 16 * len(sites) for sig, sites in self._holders.items()
        )


class CoreCoordinator:
    """Core-side collaborative model builder and distributor."""

    def __init__(
        self,
        exact_engine,
        gateway_node: str,
        config: Optional[AgentConfig] = None,
    ) -> None:
        self.engine = exact_engine
        self.gateway_node = gateway_node
        self.config = config or AgentConfig()
        self.registry = ModelRegistry()
        self._predictors: Dict[str, DatalessPredictor] = {}
        self._contributors: Dict[str, Set[str]] = {}
        self._clock = 0
        self._last_used: Dict[str, int] = {}

    # Training ------------------------------------------------------------
    def train_from_edge(
        self, edge_name: str, query: AnalyticsQuery
    ) -> Tuple[float, CostReport]:
        """Execute one training query for an edge; absorb the pair centrally.

        Returns (exact answer, execution cost).  The WAN legs edge->core
        are the caller's to charge (the edge knows its own node id).
        """
        answer, report = self.engine.execute(query)
        signature = query.signature()
        self.record_use(signature)
        predictor = self._predictors.get(signature)
        if predictor is None:
            predictor = self._new_predictor(query.answer_dim)
            self._predictors[signature] = predictor
        predictor.observe(query.vector(), answer)
        self._contributors.setdefault(signature, set()).add(edge_name)
        return answer, report

    # Distribution -----------------------------------------------------------
    def push_models(self, edges: List[EdgeAgent]) -> CostReport:
        """Ship each trained predictor to its contributing edges (WAN).

        Every receiving edge installs the *shared* predictor built from
        all edges' training queries — the collaborative speed-up of
        RT5.2.  Model bytes crossing the WAN are metered.
        """
        meter = CostMeter()
        slowest = 0.0
        by_name = {edge.name: edge for edge in edges}
        for signature, predictor in self._predictors.items():
            payload = predictor.state_bytes()
            for edge_name in sorted(self._contributors.get(signature, ())):
                edge = by_name.get(edge_name)
                if edge is None:
                    continue
                seconds = meter.charge_transfer(
                    self.gateway_node, edge.node_id, payload, wan=True
                )
                slowest = max(slowest, seconds)
                edge.install_model(signature, predictor)
                self.registry.register(signature, edge_name)
        meter.advance(slowest)
        return meter.freeze()

    # Interest tracking and cold-model purging (RT5.3) ----------------------
    def record_use(self, signature: str) -> None:
        """Note that queries for ``signature`` are still arriving.

        Edges/routers call this as traffic flows; the core's logical clock
        advances with every use, giving each signature an idle age.
        """
        self._clock += 1
        self._last_used[signature] = self._clock

    def idle_age(self, signature: str) -> int:
        """Uses of *other* signatures since this one was last touched."""
        last = self._last_used.get(signature)
        if last is None:
            return self._clock
        return self._clock - last

    def purge_cold(self, edges: List[EdgeAgent], max_idle: int) -> List[str]:
        """Purge every model idle for more than ``max_idle`` uses (RT5.3).

        "This detection should lead to purging 'older' models, referring
        to data subspaces which are no longer of interest."  Returns the
        purged signatures.
        """
        cold = [
            signature
            for signature in list(self._predictors)
            if self.idle_age(signature) > max_idle
        ]
        for signature in cold:
            self.purge_signature(signature, edges)
            self._last_used.pop(signature, None)
        return cold

    def purge_signature(self, signature: str, edges: List[EdgeAgent]) -> None:
        """Drop a no-longer-interesting model everywhere (RT5.3 purging)."""
        self._predictors.pop(signature, None)
        self._contributors.pop(signature, None)
        for edge in edges:
            edge._predictors.pop(signature, None)
            self.registry.unregister(signature, edge.name)

    def predictor(self, signature: str) -> Optional[DatalessPredictor]:
        return self._predictors.get(signature)

    @property
    def signatures(self) -> List[str]:
        return list(self._predictors)

    def state_bytes(self) -> int:
        return sum(p.state_bytes() for p in self._predictors.values())

    # Internals ---------------------------------------------------------------
    def _new_predictor(self, answer_dim: int) -> DatalessPredictor:
        config = self.config
        return DatalessPredictor(
            answer_dim=answer_dim,
            quantizer=QuerySpaceQuantizer(
                n_quanta=config.n_quanta,
                grow_threshold=config.grow_threshold,
                max_quanta=config.max_quanta,
                warmup=config.warmup,
            ),
            factory=AnswerModelFactory(config.model_family),
            error_estimator=PrequentialErrorEstimator(
                quantile=config.error_quantile
            ),
            novelty_limit=config.novelty_limit,
        )
