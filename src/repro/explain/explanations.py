"""Query-answer explanations (RT4.2, [24]).

"An explanation can be a (piecewise) linear regression model showing how
count of ... a data subspace depends on the size of the subspace. ...
the analyst will be able to simply plug in values for parameters to the
explanation models."

An :class:`Explanation` is a fitted :class:`PiecewiseLinearModel` of
``answer ~ parameter`` around a base query, where the parameter is the
selection's extent (radius / half-width scale).  It can be built two ways:

* ``from_predictor`` — probe the SEA agent's learned models over the
  parameter sweep: *zero* base-data access (explanations themselves are
  computed "in a SEA fashion");
* ``from_engine`` — probe the exact engine: exact but costly; this is the
  baseline an analyst would effectively pay by issuing the probe queries
  herself.

Piecewise-linear fitting uses exact dynamic programming over breakpoint
positions (optimal segmented least squares), tractable because sweeps are
a few dozen points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.errors import QueryError
from repro.common.validation import require
from repro.ml.metrics import r2_score
from repro.queries.query import AnalyticsQuery
from repro.queries.selections import RadiusSelection, RangeSelection


@dataclass
class _Segment:
    """One linear piece over [x_lo, x_hi]: y = intercept + slope * x."""

    x_lo: float
    x_hi: float
    intercept: float
    slope: float


class PiecewiseLinearModel:
    """Optimal segmented least-squares over a 1-d sweep."""

    def __init__(self, segments: List[_Segment]) -> None:
        require(len(segments) >= 1, "need at least one segment")
        self.segments = segments

    @classmethod
    def fit(
        cls, x: np.ndarray, y: np.ndarray, max_segments: int = 3
    ) -> "PiecewiseLinearModel":
        """Fit with at most ``max_segments`` pieces via dynamic programming."""
        x = np.asarray(x, dtype=float).ravel()
        y = np.asarray(y, dtype=float).ravel()
        require(x.shape[0] == y.shape[0], "x and y must have equal length")
        require(x.shape[0] >= 2, "need at least two sweep points")
        require(max_segments >= 1, "max_segments must be >= 1")
        order = np.argsort(x)
        x, y = x[order], y[order]
        n = x.shape[0]
        k_max = min(max_segments, n // 2) or 1
        # sse[i][j]: error of one line over points i..j inclusive.
        sse = np.full((n, n), np.inf)
        for i in range(n):
            for j in range(i + 1, n):
                sse[i, j] = _line_sse(x[i : j + 1], y[i : j + 1])
            sse[i, i] = 0.0
        # dp[k][j]: best error covering points 0..j with k segments.
        dp = np.full((k_max + 1, n), np.inf)
        parent = np.full((k_max + 1, n), -1, dtype=int)
        dp[1] = sse[0]
        for k in range(2, k_max + 1):
            for j in range(n):
                for split in range(k - 1, j):
                    candidate = dp[k - 1][split] + sse[split + 1, j]
                    if candidate < dp[k][j]:
                        dp[k][j] = candidate
                        parent[k][j] = split
        # Pick the smallest k whose error is within 2% of the best k_max
        # error (parsimonious explanations read better).
        best_err = dp[k_max][n - 1]
        chosen_k = k_max
        for k in range(1, k_max + 1):
            if dp[k][n - 1] <= best_err * 1.02 + 1e-12:
                chosen_k = k
                break
        segments: List[_Segment] = []
        j = n - 1
        k = chosen_k
        while k >= 1:
            i = parent[k][j] + 1 if k > 1 else 0
            seg_x, seg_y = x[i : j + 1], y[i : j + 1]
            intercept, slope = _line_fit(seg_x, seg_y)
            segments.append(
                _Segment(float(seg_x[0]), float(seg_x[-1]), intercept, slope)
            )
            j = i - 1
            k -= 1
        segments.reverse()
        return cls(segments)

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def breakpoints(self) -> List[float]:
        return [seg.x_lo for seg in self.segments[1:]]

    def evaluate(self, value: float) -> float:
        """The explanation's answer for one parameter value.

        Values outside the fitted sweep extrapolate from the nearest
        segment.
        """
        value = float(value)
        for segment in self.segments:
            if value <= segment.x_hi:
                return segment.intercept + segment.slope * value
        last = self.segments[-1]
        return last.intercept + last.slope * value

    def evaluate_many(self, values) -> np.ndarray:
        return np.asarray([self.evaluate(v) for v in np.asarray(values).ravel()])

    def describe(self) -> str:
        """Human-readable rendering of the explanation model."""
        parts = []
        for seg in self.segments:
            parts.append(
                f"[{seg.x_lo:.3g}, {seg.x_hi:.3g}]: "
                f"answer = {seg.intercept:.4g} + {seg.slope:.4g} * p"
            )
        return "; ".join(parts)


def _line_fit(x: np.ndarray, y: np.ndarray) -> Tuple[float, float]:
    if x.shape[0] == 1 or np.all(x == x[0]):
        return float(y.mean()), 0.0
    slope, intercept = np.polyfit(x, y, 1)
    return float(intercept), float(slope)


def _line_sse(x: np.ndarray, y: np.ndarray) -> float:
    intercept, slope = _line_fit(x, y)
    resid = y - (intercept + slope * x)
    return float(resid @ resid)


@dataclass
class Explanation:
    """The deliverable handed to the analyst along with her answer."""

    query: AnalyticsQuery
    parameter: str  # "radius" or "extent_scale"
    model: PiecewiseLinearModel
    sweep: np.ndarray
    answers: np.ndarray
    cost: CostReport

    @property
    def fidelity(self) -> float:
        """R^2 of the explanation against the probed answers."""
        return r2_score(self.answers, self.model.evaluate_many(self.sweep))

    def answer_at(self, value: float) -> float:
        """The answer the analyst gets by plugging in a parameter value —
        without issuing another query (the "queries saved" of G2)."""
        return self.model.evaluate(value)

    def describe(self) -> str:
        return (
            f"{self.query.aggregate.name} as a function of {self.parameter}: "
            f"{self.model.describe()}"
        )


class ExplanationBuilder:
    """Builds explanations by sweeping a query's extent parameter."""

    def __init__(
        self, n_probes: int = 17, max_segments: int = 3, span: Tuple[float, float] = (0.25, 2.0)
    ) -> None:
        require(n_probes >= 4, "n_probes must be >= 4")
        lo, hi = span
        require(0 < lo < hi, "span must satisfy 0 < lo < hi")
        self.n_probes = n_probes
        self.max_segments = max_segments
        self.span = span

    def probe_queries(
        self, query: AnalyticsQuery
    ) -> Tuple[str, np.ndarray, List[AnalyticsQuery]]:
        """(parameter name, sweep values, probe queries) for a base query."""
        selection = query.selection
        lo_scale, hi_scale = self.span
        if isinstance(selection, RadiusSelection):
            sweep = np.linspace(
                selection.radius * lo_scale, selection.radius * hi_scale, self.n_probes
            )
            probes = [
                AnalyticsQuery(
                    query.table_name,
                    RadiusSelection(selection.columns, selection.center, r),
                    query.aggregate,
                )
                for r in sweep
            ]
            return "radius", sweep, probes
        if isinstance(selection, RangeSelection):
            scales = np.linspace(lo_scale, hi_scale, self.n_probes)
            probes = [
                AnalyticsQuery(
                    query.table_name,
                    RangeSelection.around(
                        selection.columns,
                        selection.center,
                        selection.half_widths * s,
                    ),
                    query.aggregate,
                )
                for s in scales
            ]
            return "extent_scale", scales, probes
        raise QueryError(
            f"explanations support range/radius selections, not "
            f"{type(selection).__name__}"
        )

    def from_engine(self, query: AnalyticsQuery, engine) -> Explanation:
        """Probe the exact engine (the costly, pre-SEA way)."""
        parameter, sweep, probes = self.probe_queries(query)
        answers = []
        reports = []
        for probe in probes:
            answer, report = engine.execute(probe)
            answers.append(float(answer))
            reports.append(report)
        cost = CostMeter.total(reports, parallel=False)
        model = PiecewiseLinearModel.fit(sweep, np.asarray(answers), self.max_segments)
        return Explanation(query, parameter, model, sweep, np.asarray(answers), cost)

    def from_predictor(self, query: AnalyticsQuery, predictor) -> Explanation:
        """Probe the learned models: a data-less explanation (SEA-fashion)."""
        parameter, sweep, probes = self.probe_queries(query)
        answers = np.asarray(
            [predictor.predict(p.vector()).scalar for p in probes]
        )
        meter = CostMeter()
        meter.charge_cpu("sea-agent", 4096 * len(probes))
        meter.advance(meter.freeze().node_sec)
        model = PiecewiseLinearModel.fit(sweep, answers, self.max_segments)
        return Explanation(query, parameter, model, sweep, answers, meter.freeze())
