"""Higher-level queries (RT4.1, Sec. III.A).

The motivating example: "return the data subspaces where the correlation
coefficient between attributes is greater than a threshold value."

:class:`ThresholdRegionQuery` describes such an interrogation: a candidate
grid of subspaces over the domain, an aggregate, a comparison against a
threshold.  :class:`HigherLevelEngine` evaluates it two ways:

* ``exact``    — one exact query per candidate subspace (what an analyst
  without SEA would have to do: an "inordinate number of specific
  queries");
* ``dataless`` — one model prediction per candidate subspace via a
  trained :class:`~repro.core.predictor.DatalessPredictor`: no base-data
  access at all.

The experiments report precision/recall of the data-less region set
against the exact one, plus the cost gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.errors import NotTrainedError
from repro.common.validation import require
from repro.queries.aggregates import Aggregate
from repro.queries.query import AnalyticsQuery
from repro.queries.selections import RangeSelection


@dataclass
class ThresholdRegionQuery:
    """Find grid subspaces whose aggregate compares above/below a threshold."""

    table_name: str
    columns: Tuple[str, ...]
    aggregate: Aggregate
    threshold: float
    lows: np.ndarray
    highs: np.ndarray
    cells_per_dim: int = 8
    direction: str = "above"  # or "below"

    def __post_init__(self) -> None:
        self.lows = np.asarray(self.lows, dtype=float).ravel()
        self.highs = np.asarray(self.highs, dtype=float).ravel()
        require(
            self.lows.shape[0] == len(self.columns),
            "lows must match columns",
        )
        require(self.cells_per_dim >= 1, "cells_per_dim must be >= 1")
        require(self.direction in ("above", "below"), "direction: above|below")

    def candidate_queries(self) -> List[AnalyticsQuery]:
        """One range query per grid cell of the candidate lattice."""
        span = (self.highs - self.lows) / self.cells_per_dim
        cells: List[AnalyticsQuery] = []
        shape = [self.cells_per_dim] * len(self.columns)
        for flat in range(int(np.prod(shape))):
            key = np.unravel_index(flat, shape)
            cell_lo = self.lows + np.asarray(key) * span
            cell_hi = cell_lo + span
            cells.append(
                AnalyticsQuery(
                    self.table_name,
                    RangeSelection(self.columns, cell_lo, cell_hi),
                    self.aggregate,
                )
            )
        return cells

    def matches(self, value: float) -> bool:
        if self.direction == "above":
            return value > self.threshold
        return value < self.threshold


@dataclass
class RegionResult:
    """Outcome of a threshold-region interrogation."""

    regions: List[AnalyticsQuery]
    values: List[float]
    cost: CostReport
    n_candidates: int

    def region_keys(self) -> set:
        """Hashable identities of the matched subspaces (for set metrics)."""
        keys = set()
        for query in self.regions:
            sel = query.selection
            keys.add(tuple(np.round(sel.lows, 9)) + tuple(np.round(sel.highs, 9)))
        return keys


class HigherLevelEngine:
    """Evaluates threshold-region interrogations exactly or data-lessly."""

    def __init__(self, exact_engine=None, predictor=None) -> None:
        self.exact_engine = exact_engine
        self.predictor = predictor

    def run_exact(self, region_query: ThresholdRegionQuery) -> RegionResult:
        """One exact query per candidate cell (the costly way)."""
        require(self.exact_engine is not None, "no exact engine configured")
        regions, values, reports = [], [], []
        candidates = region_query.candidate_queries()
        for query in candidates:
            answer, report = self.exact_engine.execute(query)
            reports.append(report)
            value = float(answer if np.ndim(answer) == 0 else np.asarray(answer)[0])
            if region_query.matches(value):
                regions.append(query)
                values.append(value)
        cost = CostMeter.total(reports, parallel=False)
        return RegionResult(regions, values, cost, len(candidates))

    def run_dataless(self, region_query: ThresholdRegionQuery) -> RegionResult:
        """One model prediction per candidate cell (zero data access)."""
        require(self.predictor is not None, "no predictor configured")
        regions, values = [], []
        candidates = region_query.candidate_queries()
        meter = CostMeter()
        for query in candidates:
            try:
                prediction = self.predictor.predict(query.vector())
            except NotTrainedError:
                continue
            meter.charge_cpu("sea-agent", 4096)
            value = prediction.scalar
            if region_query.matches(value):
                regions.append(query)
                values.append(value)
        meter.advance(meter.freeze().node_sec)
        return RegionResult(regions, values, meter.freeze(), len(candidates))

    def run_hierarchical(
        self, region_query: ThresholdRegionQuery, max_depth: int = 3
    ) -> RegionResult:
        """Exact drill-down search (RT4.1's hierarchical query spaces).

        "Define appropriate hierarchical or graph structured spaces,
        showing how queries at lower levels can be combined to offer
        higher-level functionality."

        For monotone aggregates (count: a child subspace can never hold
        more than its parent), a coarse-level query whose answer is
        already below the threshold prunes its entire subtree, so finding
        the ``cells_per_dim``-resolution regions takes far fewer exact
        queries than the flat scan of :meth:`run_exact` — with identical
        results.  Only ``direction='above'`` + count-like aggregates
        qualify; other shapes fall back to the flat scan.
        """
        require(self.exact_engine is not None, "no exact engine configured")
        monotone = (
            region_query.direction == "above"
            and region_query.aggregate.name.startswith("count")
        )
        if not monotone:
            return self.run_exact(region_query)
        target_cells = region_query.cells_per_dim
        # Depth schedule: coarse grids that refine into the target lattice.
        factors = []
        remaining = target_cells
        while remaining > 1 and len(factors) < max_depth - 1:
            factors.append(2 if remaining % 2 == 0 else remaining)
            remaining = remaining // factors[-1]
        if remaining > 1:
            factors.append(remaining)
        regions, values, reports = [], [], []
        n_queries = 0

        def recurse(lows, highs, level):
            nonlocal n_queries
            split = factors[level] if level < len(factors) else 1
            span = (highs - lows) / split
            for flat in range(split ** len(region_query.columns)):
                key = np.unravel_index(
                    flat, [split] * len(region_query.columns)
                )
                cell_lo = lows + np.asarray(key) * span
                cell_hi = cell_lo + span
                query = AnalyticsQuery(
                    region_query.table_name,
                    RangeSelection(region_query.columns, cell_lo, cell_hi),
                    region_query.aggregate,
                )
                answer, report = self.exact_engine.execute(query)
                reports.append(report)
                n_queries += 1
                value = float(np.atleast_1d(np.asarray(answer))[0])
                if not region_query.matches(value):
                    # Monotone pruning: a child's count never exceeds its
                    # parent's, so a below-threshold parent has no
                    # above-threshold descendants.
                    continue
                if level + 1 < len(factors):
                    recurse(cell_lo, cell_hi, level + 1)
                else:
                    regions.append(query)
                    values.append(value)

        recurse(region_query.lows.copy(), region_query.highs.copy(), 0)
        cost = CostMeter.total(reports, parallel=False)
        result = RegionResult(regions, values, cost, n_queries)
        return result

    @staticmethod
    def precision_recall(
        dataless: RegionResult, exact: RegionResult
    ) -> Tuple[float, float]:
        """Set precision/recall of the data-less regions vs the exact ones."""
        found = dataless.region_keys()
        truth = exact.region_keys()
        if not found:
            return (1.0 if not truth else 0.0, 0.0 if truth else 1.0)
        if not truth:
            return (0.0, 1.0)
        hit = len(found & truth)
        return hit / len(found), hit / len(truth)
