"""New functionality: query-answer explanations and higher-level queries (RT4).

* :mod:`repro.explain.explanations` — piecewise-linear models of how a
  query's answer depends on a query parameter, computable either from the
  SEA agent's learned models (data-lessly) or by probing the exact engine.
* :mod:`repro.explain.higher` — higher-level interrogations such as
  "return the data subspaces where the aggregate exceeds a threshold",
  answered over candidate-subspace grids either exactly or data-lessly.
"""

from repro.explain.explanations import (
    Explanation,
    ExplanationBuilder,
    PiecewiseLinearModel,
)
from repro.explain.higher import ThresholdRegionQuery, HigherLevelEngine

__all__ = [
    "Explanation",
    "ExplanationBuilder",
    "PiecewiseLinearModel",
    "ThresholdRegionQuery",
    "HigherLevelEngine",
]
