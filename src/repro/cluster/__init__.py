"""Simulated distributed cluster substrate.

The paper's architecture claims (Sec. II.A) are about *how much of the
cluster* an analytics task touches: nodes accessed, bytes scanned, bytes
shipped, stack layers crossed.  This package provides a deterministic
cost-model simulator of such a cluster:

* :class:`repro.cluster.node.DataNode` — a storage/compute node.
* :class:`repro.cluster.topology.ClusterTopology` — nodes grouped into
  datacenters with LAN/WAN links.
* :class:`repro.cluster.storage.DistributedStore` — partitioned tables
  (HBase/HDFS-like) spread over the nodes, with replication.
* Cost accounting is charged against :class:`repro.common.CostMeter`.

Executions compute *real answers* on real (numpy-backed) data while
charging simulated costs, so accuracy results are genuine and performance
results reflect the metered architecture rather than host-Python speed.
"""

from repro.cluster.node import DataNode
from repro.cluster.topology import ClusterTopology
from repro.cluster.columnar import (
    BIT_PACKED,
    DICTIONARY,
    RAW,
    RUN_LENGTH,
    ColumnarPartition,
    columnar_consistent,
    encode_column,
)
from repro.cluster.storage import (
    LAYOUT_COLUMN,
    LAYOUT_ROW,
    DistributedStore,
    TablePartition,
    StoredTable,
)
from repro.cluster.synopsis import (
    ColumnStats,
    PartitionSynopsis,
    estimate_selectivity,
    synopses_consistent,
)

__all__ = [
    "DataNode",
    "ClusterTopology",
    "DistributedStore",
    "TablePartition",
    "StoredTable",
    "ColumnStats",
    "PartitionSynopsis",
    "estimate_selectivity",
    "synopses_consistent",
    "ColumnarPartition",
    "columnar_consistent",
    "encode_column",
    "RAW",
    "DICTIONARY",
    "RUN_LENGTH",
    "BIT_PACKED",
    "LAYOUT_ROW",
    "LAYOUT_COLUMN",
]
