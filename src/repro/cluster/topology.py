"""Cluster topology: nodes grouped into datacenters, LAN/WAN classification.

A topology is pure structure: it knows which nodes exist, where they live,
and whether a transfer between two nodes crosses a WAN boundary.  Engines
consult it when charging network costs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.common.errors import ConfigurationError
from repro.common.rng import SeedLike, make_rng
from repro.common.validation import require
from repro.cluster.node import DataNode


class ClusterTopology:
    """A set of named nodes partitioned into datacenters."""

    def __init__(self) -> None:
        self._nodes: Dict[str, DataNode] = {}
        self._datacenters: Dict[str, List[str]] = {}

    @classmethod
    def single_datacenter(cls, n_nodes: int, datacenter: str = "dc0") -> "ClusterTopology":
        """The common case: one datacenter with ``n_nodes`` data nodes."""
        require(n_nodes >= 1, f"n_nodes must be >= 1, got {n_nodes}")
        topo = cls()
        for i in range(n_nodes):
            topo.add_node(DataNode(node_id=f"{datacenter}-n{i}", datacenter=datacenter))
        return topo

    @classmethod
    def geo_distributed(
        cls, datacenters: Dict[str, int]
    ) -> "ClusterTopology":
        """Multiple datacenters, ``{name: node_count}``."""
        require(len(datacenters) >= 1, "need at least one datacenter")
        topo = cls()
        for name, count in datacenters.items():
            require(count >= 1, f"datacenter {name} needs >= 1 node")
            for i in range(count):
                topo.add_node(DataNode(node_id=f"{name}-n{i}", datacenter=name))
        return topo

    def add_node(self, node: DataNode) -> None:
        if node.node_id in self._nodes:
            raise ConfigurationError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node
        self._datacenters.setdefault(node.datacenter, []).append(node.node_id)

    def node(self, node_id: str) -> DataNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ConfigurationError(f"unknown node {node_id}") from None

    @property
    def node_ids(self) -> List[str]:
        return list(self._nodes)

    @property
    def nodes(self) -> List[DataNode]:
        return list(self._nodes.values())

    @property
    def datacenters(self) -> List[str]:
        return list(self._datacenters)

    def nodes_in(self, datacenter: str) -> List[str]:
        try:
            return list(self._datacenters[datacenter])
        except KeyError:
            raise ConfigurationError(f"unknown datacenter {datacenter}") from None

    def is_wan(self, src: str, dst: str) -> bool:
        """True when a transfer between the two nodes crosses datacenters."""
        return self.node(src).datacenter != self.node(dst).datacenter

    def pick_coordinator(self, datacenter: Optional[str] = None) -> str:
        """A deterministic coordinator node (first node of the datacenter)."""
        if datacenter is None:
            datacenter = next(iter(self._datacenters))
        return self.nodes_in(datacenter)[0]

    def random_node(self, rng: SeedLike = None, datacenter: Optional[str] = None) -> str:
        gen = make_rng(rng)
        pool = self.nodes_in(datacenter) if datacenter else self.node_ids
        return pool[int(gen.integers(len(pool)))]

    def storage_bytes(self) -> int:
        """Total table + index bytes stored across the cluster."""
        return sum(node.total_bytes for node in self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes
