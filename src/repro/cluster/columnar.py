"""Columnar compressed partition storage with exact per-column encodings.

Row-major partitions make every scan pay for every column of every row.
This module gives each partition an alternative *columnar* image: one
:class:`EncodedColumn` per column, with the encoding chosen automatically
at ingest/compaction time from cheap column statistics:

* :class:`DictionaryColumn` — low-cardinality columns become a small
  value dictionary plus narrow integer codes;
* :class:`RunLengthColumn` — sorted or constant columns become
  (run value, run length) pairs;
* :class:`BitPackedColumn` — small-domain integer columns become
  offset + ``width``-bit packed codes;
* :class:`RawColumn` — everything else stays a contiguous buffer.

The contract everything downstream relies on is **bitwise round-trip
identity**: ``decode(encode(col))`` reproduces the stored numpy column
bit for bit.  Floating-point columns are therefore keyed by their *bit
patterns* (``col.view(np.uint64)``), never by value comparison — NaNs
(``NaN != NaN``) would split every run and ``-0.0 == 0.0`` would merge
distinct bit patterns, silently breaking the round trip either way.

Encodings carry their serialized footprint (``encoded_bytes``, scaled by
the owning table's ``value_bytes`` for value storage, real widths for
codes and lengths) so the cost model can charge the bytes a columnar
scan actually reads, and support three access paths used by
:mod:`repro.engine.colscan`:

* ``range_mask(lo, hi)`` — evaluate a range predicate on the encoded
  domain (dictionary-domain comparison, run-level comparison, vectorized
  compares on raw buffers);
* ``masked(mask)`` — late materialization: decode only the surviving
  rows (``== decode()[mask]`` bitwise);
* ``take(idx)`` — point-read gather without a full decode.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import QueryError, StorageError
from repro.common.validation import require
from repro.data.tabular import Table

#: Encoding kind tags (recorded in partition synopses and profiles).
RAW = "raw"
DICTIONARY = "dictionary"
RUN_LENGTH = "rle"
BIT_PACKED = "bitpack"

#: Dictionary encoding is only attempted when a strided sample suggests
#: the cardinality is small; the full pass then confirms it.
_DICT_SAMPLE = 1024
_DICT_MAX_UNIQUE = 4096

#: Serialized width of one run length / bit-pack offset.
_LENGTH_BYTES = 8
_OFFSET_BYTES = 8


def _bit_keys(values: np.ndarray) -> Optional[np.ndarray]:
    """Integer keys whose equality is bit-pattern equality, or None.

    Floats are reinterpreted as unsigned ints of the same width so NaN
    payloads and signed zeros are distinguished exactly; integer and
    boolean columns are their own keys.  Unsupported dtypes return None
    (such columns stay raw).
    """
    if values.dtype.kind in "iub":
        return values
    if values.dtype.kind == "f" and values.dtype.itemsize in (4, 8):
        uint = np.uint32 if values.dtype.itemsize == 4 else np.uint64
        return np.ascontiguousarray(values).view(uint)
    return None


def _readonly(arr: np.ndarray) -> np.ndarray:
    view = arr.view()
    view.flags.writeable = False
    return view


class EncodedColumn:
    """One encoded column of one partition (immutable after build)."""

    kind: str = "encoded"

    #: Number of rows the column decodes to.
    n_rows: int
    #: Serialized footprint charged when this column is scanned.
    encoded_bytes: int
    #: The decoded dtype.
    dtype: np.dtype

    def decode(self) -> np.ndarray:
        """The full stored column, bitwise equal to the ingested array."""
        raise NotImplementedError

    def masked(self, mask: np.ndarray) -> np.ndarray:
        """Rows where ``mask`` is true — ``decode()[mask]`` bitwise."""
        return self.decode()[mask]

    def take(self, idx: np.ndarray) -> np.ndarray:
        """Rows at integer positions — ``decode()[idx]`` bitwise."""
        return self.decode()[idx]

    def range_mask(self, lo: float, hi: float) -> np.ndarray:
        """Boolean mask of ``lo <= value <= hi`` (NaN rows are False)."""
        v = self.decode()
        return (v >= lo) & (v <= hi)

    def batch_range_masks(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """(n_selections, n_rows) range masks sharing one encoded read."""
        v = self.decode()[None, :]
        return (v >= lows[:, None]) & (v <= highs[:, None])

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(rows={self.n_rows}, "
            f"bytes={self.encoded_bytes})"
        )


class RawColumn(EncodedColumn):
    """Contiguous uncompressed buffer — the fallback encoding."""

    kind = RAW

    def __init__(self, values: np.ndarray, value_bytes: int) -> None:
        self.values = _readonly(values)
        self.n_rows = int(values.shape[0])
        self.dtype = values.dtype
        self.encoded_bytes = self.n_rows * int(value_bytes)

    def decode(self) -> np.ndarray:
        return self.values

    def masked(self, mask: np.ndarray) -> np.ndarray:
        return self.values[mask]

    def take(self, idx: np.ndarray) -> np.ndarray:
        return self.values[idx]

    def range_mask(self, lo: float, hi: float) -> np.ndarray:
        return (self.values >= lo) & (self.values <= hi)

    def batch_range_masks(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        v = self.values[None, :]
        return (v >= lows[:, None]) & (v <= highs[:, None])


class DictionaryColumn(EncodedColumn):
    """Low-cardinality column: sorted value dictionary + narrow codes.

    The dictionary is numerically ascending with NaN bit patterns last
    (distinct patterns — NaN payloads, -0.0 vs 0.0 — are all kept, so
    decode is bitwise).  The sort order turns a range predicate into a
    *code interval*: two ``searchsorted`` probes on the ``k``-entry
    dictionary, then two comparisons per row on the narrow integer codes
    — never on decoded values, and with ~``itemsize/8`` of the row
    path's memory traffic.  Late materialization gathers
    ``values[codes[mask]]``.
    """

    kind = DICTIONARY

    def __init__(
        self, values: np.ndarray, codes: np.ndarray, value_bytes: int
    ) -> None:
        self.values = _readonly(values)  # distinct patterns, sorted
        self.codes = _readonly(codes)
        self.n_rows = int(codes.shape[0])
        self.dtype = values.dtype
        self._finite = None  # lazy (finite values as list, count) for bisect
        self.encoded_bytes = (
            int(values.shape[0]) * int(value_bytes)
            + self.n_rows * int(codes.dtype.itemsize)
        )

    def decode(self) -> np.ndarray:
        return self.values[self.codes]

    def masked(self, mask: np.ndarray) -> np.ndarray:
        return self.values[self.codes[mask]]

    def take(self, idx: np.ndarray) -> np.ndarray:
        return self.values[self.codes[idx]]

    def _code_bounds(self, lows, highs):
        """Per-selection closed code intervals, in the codes' dtype.

        ``[lo, hi]`` on values maps to codes in ``[lo_idx, hi_idx - 1]``
        because the dictionary is sorted, probing only the finite prefix
        (NaN entries sort last and can never satisfy a range, and
        ``bisect`` resolves the -0.0/0.0 tie the same way ``>=``/``<=``
        do — they compare equal).  NaN bounds select nothing, exactly
        like the value comparison.  Empty intervals come back as (1, 0).

        Probes run via ``bisect`` on a cached python list: selection
        batches are a handful of bounds against a small dictionary, where
        numpy's per-call overhead costs more than the log(k) compares.
        """
        cached = self._finite
        if cached is None:
            finite = self.values[self.values == self.values]
            cached = self._finite = (finite.tolist(), int(finite.shape[0]))
        values, n_finite = cached
        if isinstance(lows, np.ndarray):  # python floats: bisect compares
            lows = lows.tolist()          # ~10x faster than numpy scalars
        if isinstance(highs, np.ndarray):
            highs = highs.tolist()
        m = len(lows)
        lo_c = np.empty(m, dtype=self.codes.dtype)
        hi_c = np.empty(m, dtype=self.codes.dtype)
        for i in range(m):
            lo = lows[i]
            hi = highs[i]
            if lo != lo or hi != hi:  # NaN bound: empty interval
                lo_c[i] = 1
                hi_c[i] = 0
                continue
            lo_idx = bisect_left(values, lo, 0, n_finite)
            hi_idx = bisect_right(values, hi, 0, n_finite)
            if hi_idx <= lo_idx:
                lo_c[i] = 1
                hi_c[i] = 0
            else:
                lo_c[i] = lo_idx
                hi_c[i] = hi_idx - 1
        return lo_c, hi_c

    def range_mask(self, lo: float, hi: float) -> np.ndarray:
        lo_c, hi_c = self._code_bounds((lo,), (hi,))
        return (self.codes >= lo_c[0]) & (self.codes <= hi_c[0])

    def batch_range_masks(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        lo_c, hi_c = self._code_bounds(lows, highs)
        codes = self.codes[None, :]
        out = np.empty((lo_c.shape[0], self.n_rows), dtype=bool)
        scratch = np.empty_like(out)
        np.greater_equal(codes, lo_c[:, None], out=out)
        np.less_equal(codes, hi_c[:, None], out=scratch)
        out &= scratch
        return out


class RunLengthColumn(EncodedColumn):
    """Sorted/constant column: (run value, run length) pairs.

    Runs are detected on bit patterns, so a run's value reproduces its
    rows bitwise.  Range masks compare once per *run* and expand; masked
    materialization counts survivors per run (``np.add.reduceat``) and
    repeats each run value that many times — no full decode either way.
    """

    kind = RUN_LENGTH

    def __init__(
        self,
        run_values: np.ndarray,
        run_lengths: np.ndarray,
        value_bytes: int,
    ) -> None:
        self.run_values = _readonly(run_values)
        self.run_lengths = _readonly(run_lengths.astype(np.int64))
        self.n_rows = int(run_lengths.sum()) if run_lengths.size else 0
        self.dtype = run_values.dtype
        self.encoded_bytes = int(run_values.shape[0]) * (
            int(value_bytes) + _LENGTH_BYTES
        )
        # Derived run starts (not part of the serialized footprint).
        starts = np.zeros(run_lengths.shape[0], dtype=np.int64)
        if run_lengths.shape[0] > 1:
            np.cumsum(self.run_lengths[:-1], out=starts[1:])
        self._starts = _readonly(starts)

    def decode(self) -> np.ndarray:
        return np.repeat(self.run_values, self.run_lengths)

    def masked(self, mask: np.ndarray) -> np.ndarray:
        if self.run_values.shape[0] == 0:
            return self.run_values[:0]
        counts = np.add.reduceat(mask.astype(np.int64), self._starts)
        return np.repeat(self.run_values, counts)

    def take(self, idx: np.ndarray) -> np.ndarray:
        run_of = np.searchsorted(self._starts, idx, side="right") - 1
        return self.run_values[run_of]

    def range_mask(self, lo: float, hi: float) -> np.ndarray:
        in_range = (self.run_values >= lo) & (self.run_values <= hi)
        return np.repeat(in_range, self.run_lengths)

    def batch_range_masks(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        v = self.run_values[None, :]
        in_range = (v >= lows[:, None]) & (v <= highs[:, None])
        return np.repeat(in_range, self.run_lengths, axis=1)


class BitPackedColumn(EncodedColumn):
    """Small-domain integer column: offset + ``width``-bit packed codes."""

    kind = BIT_PACKED

    def __init__(
        self,
        packed: np.ndarray,
        n_rows: int,
        width: int,
        offset: int,
        dtype: np.dtype,
    ) -> None:
        self.packed = _readonly(packed)
        self.n_rows = int(n_rows)
        self.width = int(width)
        self.offset = int(offset)
        self.dtype = np.dtype(dtype)
        self.encoded_bytes = _OFFSET_BYTES + int(packed.nbytes)

    @classmethod
    def encode(cls, values: np.ndarray, offset: int, width: int) -> "BitPackedColumn":
        rel = (values.astype(np.int64) - np.int64(offset)).astype(np.uint64)
        if width == 0:
            packed = np.empty(0, dtype=np.uint8)
        else:
            shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
            bits = ((rel[:, None] >> shifts[None, :]) & 1).astype(np.uint8)
            packed = np.packbits(bits)
        return cls(packed, values.shape[0], width, offset, values.dtype)

    def decode(self) -> np.ndarray:
        if self.width == 0:
            rel = np.zeros(self.n_rows, dtype=np.int64)
        else:
            bits = np.unpackbits(
                self.packed, count=self.n_rows * self.width
            ).reshape(self.n_rows, self.width)
            weights = (
                np.uint64(1) << np.arange(self.width - 1, -1, -1, dtype=np.uint64)
            )
            rel = (bits * weights).sum(axis=1).astype(np.int64)
        return (rel + np.int64(self.offset)).astype(self.dtype)


def encode_column(values: np.ndarray, value_bytes: int) -> EncodedColumn:
    """Choose and build the smallest exact encoding for one column.

    The chooser works from cheap statistics — one run-boundary pass, a
    strided-sample cardinality estimate (confirmed by a full pass only
    when the sample is promising), and min/max for integer bit packing —
    and keeps the candidate with the smallest serialized footprint.  Raw
    is always a candidate, so ``encoded_bytes <= n_rows * value_bytes``
    and a pathological column never grows.
    """
    n = int(values.shape[0])
    raw = RawColumn(values, value_bytes)
    if n < 2:
        return raw
    keys = _bit_keys(values)
    if keys is None:
        return raw

    best: EncodedColumn = raw

    # Run-length: one vectorized boundary pass on the bit patterns.
    change = keys[1:] != keys[:-1]
    n_runs = 1 + int(np.count_nonzero(change))
    rle_bytes = n_runs * (value_bytes + _LENGTH_BYTES)
    if rle_bytes < best.encoded_bytes:
        starts = np.flatnonzero(np.concatenate(([True], change)))
        lengths = np.diff(np.append(starts, n))
        best = RunLengthColumn(values[starts], lengths, value_bytes)

    # Dictionary: sampled cardinality estimate, then a confirming pass.
    stride = max(1, n // _DICT_SAMPLE)
    if np.unique(keys[::stride]).shape[0] <= _DICT_MAX_UNIQUE:
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        k = int(unique_keys.shape[0])
        if k <= _DICT_MAX_UNIQUE:
            code_dtype = (
                np.uint8 if k <= 256 else (np.uint16 if k <= 65536 else np.uint32)
            )
            dict_bytes = k * value_bytes + n * np.dtype(code_dtype).itemsize
            if dict_bytes < best.encoded_bytes:
                dict_values = (
                    unique_keys.view(values.dtype)
                    if values.dtype.kind == "f"
                    else unique_keys.astype(values.dtype)
                )
                # unique() ordered by bit pattern; re-sort numerically
                # (stable, NaN patterns last) so range predicates become
                # code-interval comparisons.
                order = np.argsort(dict_values, kind="stable")
                rank = np.empty(k, dtype=code_dtype)
                rank[order] = np.arange(k, dtype=code_dtype)
                best = DictionaryColumn(
                    dict_values[order], rank[inverse], value_bytes
                )

    # Bit packing: integer columns whose span fits a narrow code.
    if values.dtype.kind in "iu":
        lo, hi = int(values.min()), int(values.max())
        span = hi - lo
        if 0 <= span < 2**32:
            width = span.bit_length()
            packed_bytes = _OFFSET_BYTES + (n * width + 7) // 8
            if packed_bytes < best.encoded_bytes:
                best = BitPackedColumn.encode(values, lo, width)

    return best


class ColumnarPartition:
    """The columnar image of one stored partition.

    Column order matches the source table; ``project`` returns a
    lightweight view sharing the encoded columns, which is what a
    column-pruned scan reads (and is charged for).
    """

    __slots__ = (
        "name",
        "value_bytes",
        "n_rows",
        "columns",
        "encoded_bytes",
        "_projections",
        "_decoded",
        "_scratch",
    )

    def __init__(
        self,
        name: str,
        value_bytes: int,
        n_rows: int,
        columns: Dict[str, EncodedColumn],
    ) -> None:
        self.name = name
        self.value_bytes = int(value_bytes)
        self.n_rows = int(n_rows)
        self.columns = columns
        #: Total serialized footprint of the encoded columns.  A plain
        #: eager attribute: encoders are immutable and the charging
        #: replay reads this once per (job, partition) pair.
        self.encoded_bytes: int = sum(
            enc.encoded_bytes for enc in columns.values()
        )
        # Encoders are immutable, so projections and decodes are
        # cacheable; batched waves request the same few column sets
        # thousands of times and the charging replay sits on this path.
        self._projections: Dict[tuple, "ColumnarPartition"] = {}
        self._decoded: Dict[str, np.ndarray] = {}
        self._scratch: Dict[tuple, Table] = {}

    @classmethod
    def from_table(cls, table: Table) -> "ColumnarPartition":
        return cls(
            name=table.name,
            value_bytes=table.value_bytes,
            n_rows=table.n_rows,
            columns={
                name: encode_column(table.column(name), table.value_bytes)
                for name in table.column_names
            },
        )

    # Catalog-ish views ------------------------------------------------------
    @property
    def column_names(self) -> List[str]:
        return list(self.columns)

    @property
    def encodings(self) -> Dict[str, str]:
        """{column: encoding kind} — recorded in the partition synopsis."""
        return {name: enc.kind for name, enc in self.columns.items()}

    def column(self, name: str) -> EncodedColumn:
        try:
            return self.columns[name]
        except KeyError:
            raise QueryError(
                f"columnar partition {self.name!r} has no column {name!r}; "
                f"available: {self.column_names}"
            ) from None

    def column_bytes(self, names: Optional[Sequence[str]] = None) -> int:
        """Encoded bytes a scan of the named columns reads."""
        if names is None:
            return self.encoded_bytes
        return sum(self.column(name).encoded_bytes for name in names)

    def project(self, names: Optional[Sequence[str]] = None) -> "ColumnarPartition":
        """A view holding only the named columns (shared encoders)."""
        if names is None:
            return self
        key = tuple(names)
        cached = self._projections.get(key)
        if cached is None:
            cached = ColumnarPartition(
                name=self.name,
                value_bytes=self.value_bytes,
                n_rows=self.n_rows,
                columns={name: self.column(name) for name in key},
            )
            self._projections[key] = cached
        return cached

    # Materialization --------------------------------------------------------
    def decoded(self, name: str) -> np.ndarray:
        """The named column's decoded array, cached.

        Partitions are immutable, so a column decodes at most once over
        the partition's lifetime (and at zero cost for raw columns —
        their decode is the stored buffer).  Aggregation kernels gather
        survivors straight from this scratch, so a batched wave pays the
        dictionary/run expansion once, not once per query.
        """
        arr = self._decoded.get(name)
        if arr is None:
            arr = _readonly(self.column(name).decode())
            self._decoded[name] = arr
        return arr

    def scratch_table(self, names: Sequence[str]) -> Table:
        """Cached decoded view of the named columns, as a Table.

        The late-materialization partner: encoded predicates produce the
        mask, and the aggregate's ``partial_from_mask`` gathers only the
        surviving rows of only these columns from the cached decode.
        """
        key = tuple(names)
        cached = self._scratch.get(key)
        if cached is None:
            cached = Table.from_arrays(
                {name: self.decoded(name) for name in key},
                name=self.name,
                value_bytes=self.value_bytes,
            )
            self._scratch[key] = cached
        return cached

    def to_table(self) -> Table:
        """Full decode (the row-major image, bitwise)."""
        return Table.from_arrays(
            {name: enc.decode() for name, enc in self.columns.items()},
            name=self.name,
            value_bytes=self.value_bytes,
        )

    def masked_table(
        self, mask: np.ndarray, names: Optional[Sequence[str]] = None
    ) -> Table:
        """Late materialization: only surviving rows of the named columns."""
        use = self.column_names if names is None else list(names)
        require(len(use) >= 1, "masked_table needs at least one column")
        return Table.from_arrays(
            {name: self.column(name).masked(mask) for name in use},
            name=self.name,
            value_bytes=self.value_bytes,
        )

    def take(self, indices) -> Table:
        """Point-read gather of full rows at the given positions."""
        idx = np.asarray(indices, dtype=int)
        return Table.from_arrays(
            {name: enc.take(idx) for name, enc in self.columns.items()},
            name=self.name,
            value_bytes=self.value_bytes,
        )

    def __repr__(self) -> str:
        return (
            f"ColumnarPartition({self.name!r}, rows={self.n_rows}, "
            f"bytes={self.encoded_bytes}, encodings={self.encodings})"
        )


def columnar_consistent(
    columnars: Sequence[Optional[ColumnarPartition]], tables: Sequence[Table]
) -> bool:
    """True iff each columnar image bitwise matches its row-major table.

    The columnar analogue of
    :func:`repro.cluster.synopsis.synopses_consistent`: every column must
    decode to the stored array bit for bit (dtype, shape and bit
    patterns — NaNs compare by pattern, not by value), and the encoding
    choice must match a fresh build so footprints never drift after
    ``append_rows``/``delete_rows`` maintenance.
    """
    if len(columnars) != len(tables):
        return False
    for columnar, table in zip(columnars, tables):
        if columnar is None:
            return False
        if columnar.n_rows != table.n_rows:
            return False
        if columnar.column_names != table.column_names:
            return False
        if columnar.value_bytes != table.value_bytes:
            return False
        for name in table.column_names:
            stored = table.column(name)
            enc = columnar.column(name)
            decoded = enc.decode()
            if decoded.dtype != stored.dtype or decoded.shape != stored.shape:
                return False
            if decoded.tobytes() != stored.tobytes():
                return False
            fresh = encode_column(stored, table.value_bytes)
            if fresh.kind != enc.kind or fresh.encoded_bytes != enc.encoded_bytes:
                return False
    return True
