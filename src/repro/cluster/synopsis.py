"""Zone-map partition synopses: per-partition statistical indexes (P3).

The paper's P3 argues that lightweight *statistical indexes* let a
coordinator touch only the data that can matter.  A
:class:`PartitionSynopsis` is the classic small-footprint realization:
for every partition, per column, the exact ``min``/``max`` (the zone
map) plus the row count and the sufficient sums needed to answer
decomposable aggregates without reading the rows.

Two properties make the synopses usable for *exact* (not approximate)
pruning:

* **Zone maps are exact.** ``minimum``/``maximum`` are the bitwise
  ``col.min()``/``col.max()`` of the stored column, so the disjointness
  test ``maximum < lo or minimum > hi`` against a query's bounding box
  uses exact float comparisons — a pruned partition provably contains no
  matching row, and skipping it leaves the answer bit-identical.
* **Sums are scan-identical.** ``total``/``ftotal``/``fsumsq`` are
  computed with the *same numpy expressions* the aggregates' partial
  paths use over the same array, so a partition *fully covered* by a
  range selection can short-circuit COUNT/SUM/AVG/MIN/MAX/STD/VAR from
  the synopsis and still merge to the bitwise-identical answer.  (This
  is also why appends recompute the sums over the grown column instead
  of adding the two partial sums: numpy's pairwise summation is not
  split-associative, and the contract here is bitwise equality with a
  fresh scan, not approximate equality.)

Synopses are built by :meth:`DistributedStore.put_table` and maintained
by ``append_rows``/``delete_rows``; in a real BDAS they correspond to
block-level statistics written at ingest (ORC/Parquet footers, HBase
region metadata), which is why the build itself is not metered as a
query-time scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.tabular import Table

# Serialized footprint of one column's entry: min, max, total, ftotal,
# fsumsq (5 doubles).  The row count is shared across columns.
_STATS_BYTES_PER_COLUMN = 5 * 8
_ROWCOUNT_BYTES = 8


@dataclass(frozen=True)
class ColumnStats:
    """Exact zone-map statistics of one column of one partition.

    ``total`` is the raw-dtype sum (the expression ``Sum``/``Mean``
    partials evaluate); ``ftotal``/``fsumsq`` are the float-cast sums
    (the expression ``Std``/``Variance`` partials evaluate).  For float64
    columns the two totals coincide bitwise; for integer columns they can
    round differently, so both are kept.
    """

    minimum: float
    maximum: float
    total: float
    ftotal: float
    fsumsq: float

    @classmethod
    def from_column(cls, col: np.ndarray) -> "ColumnStats":
        if col.shape[0] == 0:
            return cls(float("inf"), float("-inf"), 0.0, 0.0, 0.0)
        colf = col.astype(float)
        return cls(
            minimum=float(col.min()),
            maximum=float(col.max()),
            total=float(col.sum()),
            ftotal=float(colf.sum()),
            fsumsq=float((colf**2).sum()),
        )


class PartitionSynopsis:
    """Per-column exact statistics of one stored partition.

    ``encodings`` records the partition's columnar encoding decisions
    (``{column: kind}``, see :mod:`repro.cluster.columnar`) when the
    table is stored with ``layout="column"``; row-major partitions leave
    it None.  The store keeps it in sync on ingest and on
    ``append_rows``/``delete_rows`` re-encodes.
    """

    __slots__ = ("n_rows", "columns", "encodings")

    def __init__(self, n_rows: int, columns: Dict[str, ColumnStats]) -> None:
        self.n_rows = int(n_rows)
        self.columns = columns
        self.encodings = None

    @classmethod
    def from_table(cls, table: Table) -> "PartitionSynopsis":
        return cls(
            n_rows=table.n_rows,
            columns={
                name: ColumnStats.from_column(table.column(name))
                for name in table.column_names
            },
        )

    @property
    def n_bytes(self) -> int:
        """Serialized footprint (what a synopsis consultation reads)."""
        return _ROWCOUNT_BYTES + len(self.columns) * _STATS_BYTES_PER_COLUMN

    def stats(self, column: str) -> ColumnStats:
        return self.columns[column]

    # Zone-map tests --------------------------------------------------------
    def disjoint(self, columns: Sequence[str], lows, highs) -> bool:
        """True iff no stored row can fall inside the given box.

        Exact float comparisons against the stored minima/maxima: a True
        result is a proof, so skipping the partition is loss-free.  An
        empty partition is disjoint from every box.  Unknown columns make
        the test conservatively False.
        """
        if self.n_rows == 0:
            return True
        for name, lo, hi in zip(columns, lows, highs):
            stats = self.columns.get(name)
            if stats is None:
                continue
            if stats.maximum < lo or stats.minimum > hi:
                return True
        return False

    def covered_by(self, columns: Sequence[str], lows, highs) -> bool:
        """True iff every stored row falls inside the given box.

        Only meaningful for selections whose bounding box *is* their
        semantics (``Selection.box_is_exact``); then a covered partition
        selects all of its rows and decomposable aggregates can be
        answered from the synopsis.
        """
        if self.n_rows == 0:
            return True
        for name, lo, hi in zip(columns, lows, highs):
            stats = self.columns.get(name)
            if stats is None:
                return False
            if stats.minimum < lo or stats.maximum > hi:
                return False
        return True

    # Maintenance -----------------------------------------------------------
    def appended(self, piece: Table, grown: Table) -> "PartitionSynopsis":
        """The synopsis after ``piece`` was appended, yielding ``grown``.

        Minima/maxima and the row count merge incrementally (exactly —
        ``min`` over a concatenation is the ``min`` of the mins); the
        sums are recomputed over the grown columns because pairwise float
        summation is not split-associative and the short-circuit contract
        is bitwise equality with a fresh scan.
        """
        columns: Dict[str, ColumnStats] = {}
        for name, old in self.columns.items():
            col = grown.column(name)
            piece_col = piece.column(name)
            if piece_col.shape[0] == 0:
                columns[name] = old
                continue
            colf = col.astype(float)
            columns[name] = ColumnStats(
                minimum=min(old.minimum, float(piece_col.min())),
                maximum=max(old.maximum, float(piece_col.max())),
                total=float(col.sum()),
                ftotal=float(colf.sum()),
                fsumsq=float((colf**2).sum()),
            )
        return PartitionSynopsis(n_rows=grown.n_rows, columns=columns)

    def __repr__(self) -> str:
        return (
            f"PartitionSynopsis(rows={self.n_rows}, "
            f"columns={list(self.columns)})"
        )


def estimate_selectivity(
    synopses: Sequence[PartitionSynopsis], columns: Sequence[str], lows, highs
) -> float:
    """Estimated fraction of stored rows inside the box, from synopses only.

    Covered partitions contribute all their rows, disjoint ones zero,
    and partially overlapping ones the product of per-column overlap
    fractions under a uniformity assumption — the data-less selectivity
    feature the learned optimizer consumes (no scan required).
    """
    lows = np.asarray(lows, dtype=float).ravel()
    highs = np.asarray(highs, dtype=float).ravel()
    total_rows = sum(s.n_rows for s in synopses)
    if total_rows == 0:
        return 0.0
    matching = 0.0
    for synopsis in synopses:
        if synopsis.disjoint(columns, lows, highs):
            continue
        if synopsis.covered_by(columns, lows, highs):
            matching += synopsis.n_rows
            continue
        fraction = 1.0
        for name, lo, hi in zip(columns, lows, highs):
            stats = synopsis.columns.get(name)
            if stats is None:
                continue
            span = stats.maximum - stats.minimum
            if span <= 0.0:
                continue
            overlap = min(hi, stats.maximum) - max(lo, stats.minimum)
            fraction *= min(1.0, max(0.0, overlap / span))
        matching += fraction * synopsis.n_rows
    return float(min(1.0, matching / total_rows))


def synopses_consistent(
    synopses: Sequence[PartitionSynopsis], tables: Sequence[Table]
) -> bool:
    """True iff each synopsis bitwise matches a fresh build of its table."""
    if len(synopses) != len(tables):
        return False
    for synopsis, table in zip(synopses, tables):
        fresh = PartitionSynopsis.from_table(table)
        if synopsis.n_rows != fresh.n_rows:
            return False
        if set(synopsis.columns) != set(fresh.columns):
            return False
        for name, stats in fresh.columns.items():
            if synopsis.columns[name] != stats:
                return False
    return True
