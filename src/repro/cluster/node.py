"""Data/compute nodes of the simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class DataNode:
    """One server node.

    Nodes are intentionally thin: they have an identity, live in a
    datacenter, and track how many bytes of table partitions and index
    state they hold (for storage-footprint reporting).  All cost metering
    happens at the engine layer against a :class:`~repro.common.CostMeter`.
    """

    node_id: str
    datacenter: str = "dc0"
    stored_bytes: int = 0
    index_bytes: int = 0
    partition_ids: set = field(default_factory=set)

    def add_partition(self, partition_id: str, num_bytes: int) -> None:
        if partition_id in self.partition_ids:
            raise ValueError(f"partition {partition_id} already on {self.node_id}")
        self.partition_ids.add(partition_id)
        self.stored_bytes += num_bytes

    def drop_partition(self, partition_id: str, num_bytes: int) -> None:
        if partition_id not in self.partition_ids:
            raise KeyError(f"partition {partition_id} not on {self.node_id}")
        if num_bytes > self.stored_bytes:
            # A stale byte count would silently drive stored_bytes negative
            # and corrupt every footprint report downstream.
            raise ValueError(
                f"dropping {partition_id} with {num_bytes} bytes would leave "
                f"{self.node_id} at {self.stored_bytes - num_bytes} stored bytes"
            )
        self.partition_ids.discard(partition_id)
        self.stored_bytes -= num_bytes

    def add_index_bytes(self, num_bytes: int) -> None:
        self.index_bytes += num_bytes

    @property
    def total_bytes(self) -> int:
        return self.stored_bytes + self.index_bytes

    def __hash__(self) -> int:
        return hash(self.node_id)
