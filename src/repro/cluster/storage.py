"""Distributed storage back-end: partitioned tables over cluster nodes.

Models the storage layer of a BDAS (HDFS blocks / HBase regions): a table
is split into partitions, each placed on a node (optionally replicated).
Engines read partitions through :meth:`DistributedStore.read_partition`,
which charges the scan to a :class:`~repro.common.CostMeter` — that is the
*only* sanctioned way to touch base data, so every byte an execution reads
is metered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.accounting import CostMeter
from repro.common.errors import (
    PartitionLostError,
    RecoveryError,
    StorageError,
    WriteError,
)
from repro.common.rng import SeedLike, make_rng
from repro.common.validation import require
from repro.cluster.columnar import ColumnarPartition
from repro.cluster.synopsis import PartitionSynopsis
from repro.cluster.topology import ClusterTopology
from repro.data.tabular import Table

#: Storage layouts: row-major partitions (the seed behaviour) or
#: per-column encodings chosen at ingest (see repro.cluster.columnar).
LAYOUT_ROW = "row"
LAYOUT_COLUMN = "column"


@dataclass
class TablePartition:
    """One horizontal shard of a stored table.

    ``columnar`` is the partition's encoded image when the table was
    stored with ``layout="column"`` (None for row-major tables).  The
    decoded ``data`` stays the logical source of truth — ``n_bytes`` is
    the row-major serialized size the cost model's *logical* accounting
    uses, while ``stored_bytes`` is what actually sits on disk (and what
    a full scan of a columnar partition reads).
    """

    partition_id: str
    table_name: str
    index: int
    data: Table
    primary_node: str
    replica_nodes: List[str]
    columnar: Optional[ColumnarPartition] = None
    #: Bumped on every *base-image* swap (synchronous append/delete, or
    #: compaction when durable ingest is on); the shared-memory partition
    #: store keys its published segments on it so only mutated partitions
    #: are republished to process-pool workers.  Staged delta writes do
    #: NOT bump it — that is what keeps republish traffic bounded by the
    #: compaction cadence instead of the write rate.
    generation: int = 0
    #: Pending writes while durable ingest is enabled (a
    #: :class:`~repro.ingest.delta.DeltaPartition`); None otherwise.
    delta: Optional[object] = field(default=None, repr=False, compare=False)
    #: Cache of the materialized base+delta view, keyed by delta version.
    _view: Optional[Tuple[int, Table]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def dirty(self) -> bool:
        """True iff staged delta writes make the view differ from base."""
        return self.delta is not None and self.delta.dirty

    def read_view(self) -> Table:
        """The partition's effective content: ``base[~deleted] ++ delta``.

        Element-identical to having applied the staged writes
        synchronously, so every aggregate over the view is bitwise equal
        to the post-compaction answer.  Clean partitions return ``data``
        itself (zero cost); dirty views are cached per delta version.
        """
        delta = self.delta
        if delta is None or not delta.dirty:
            return self.data
        if self._view is not None and self._view[0] == delta.version:
            return self._view[1]
        base = self.data
        if delta.n_deleted:
            base = base.select(~delta.deleted_base)
        if delta.rows is not None:
            view = Table.concat([base, delta.rows], name=self.data.name)
        else:
            view = base
        self._view = (delta.version, view)
        return view

    @property
    def n_rows(self) -> int:
        return self.read_view().n_rows

    @property
    def n_bytes(self) -> int:
        return self.read_view().n_bytes

    @property
    def base_stored_bytes(self) -> int:
        """On-disk footprint of the base image alone (encoded if columnar)."""
        if self.columnar is not None:
            return self.columnar.encoded_bytes
        return self.data.n_bytes

    @property
    def stored_bytes(self) -> int:
        """Total footprint: base image plus any staged delta memtable."""
        total = self.base_stored_bytes
        if self.delta is not None:
            total += self.delta.n_bytes
        return total

    @property
    def row_bytes(self) -> int:
        """Average serialized bytes one full row costs to point-read."""
        if self.columnar is not None and self.n_rows > 0 and not self.dirty:
            return max(1, self.columnar.encoded_bytes // self.n_rows)
        return self.read_view().row_bytes

    def take(self, indices) -> Table:
        """Materialise full rows at the given positions.

        Columnar partitions gather through the encoded columns (late
        materialization: only the requested rows are decoded), bitwise
        equal to ``data.take``.  Dirty partitions gather from the
        base+delta view — the encoded image does not cover staged rows.
        """
        if self.dirty:
            return self.read_view().take(indices)
        if self.columnar is not None:
            return self.columnar.take(indices)
        return self.data.take(indices)

    @property
    def all_nodes(self) -> List[str]:
        return [self.primary_node] + list(self.replica_nodes)


@dataclass
class StoredTable:
    """Catalog entry for a distributed table."""

    name: str
    partitions: List[TablePartition]

    @property
    def n_rows(self) -> int:
        return sum(p.n_rows for p in self.partitions)

    @property
    def n_bytes(self) -> int:
        return sum(p.n_bytes for p in self.partitions)

    @property
    def stored_bytes(self) -> int:
        """On-disk footprint over all partitions (encoded when columnar)."""
        return sum(p.stored_bytes for p in self.partitions)

    @property
    def columnar(self) -> bool:
        """True iff every partition carries a columnar image."""
        return bool(self.partitions) and all(
            p.columnar is not None for p in self.partitions
        )

    def _require_partitions(self) -> None:
        if not self.partitions:
            raise StorageError(f"table {self.name!r} has no partitions")

    @property
    def column_names(self) -> List[str]:
        self._require_partitions()
        return self.partitions[0].data.column_names

    @property
    def nodes(self) -> List[str]:
        """Distinct primary nodes holding some partition of this table."""
        self._require_partitions()
        seen: Dict[str, None] = {}
        for p in self.partitions:
            seen.setdefault(p.primary_node, None)
        return list(seen)

    def full_table(self) -> Table:
        """Materialise the whole table (test/verification use only).

        Uses each partition's effective base+delta view, so staged
        (not-yet-compacted) writes are included.
        """
        self._require_partitions()
        return Table.concat(
            [p.read_view() for p in self.partitions], name=self.name
        )


class DistributedStore:
    """The cluster's storage engine: placement, catalog, metered reads."""

    def __init__(
        self,
        topology: ClusterTopology,
        replication: int = 1,
        layout: str = LAYOUT_ROW,
    ) -> None:
        require(replication >= 1, "replication must be >= 1")
        require(
            replication <= len(topology),
            f"replication {replication} exceeds cluster size {len(topology)}",
        )
        require(
            layout in (LAYOUT_ROW, LAYOUT_COLUMN),
            f"unknown layout {layout!r} (expected 'row' or 'column')",
        )
        self.topology = topology
        self.replication = replication
        # Default partition layout for put_table (per-table override there).
        # "row" preserves the seed path byte-for-byte; "column" stores the
        # encoded image alongside and lets engines scan it instead.
        self.layout = layout
        self._catalog: Dict[str, StoredTable] = {}
        # Per-table zone-map synopses, index-aligned with the partitions.
        self._synopses: Dict[str, List[PartitionSynopsis]] = {}
        # Cumulative bytes served per node, for replica load balancing.
        self._served_bytes: Dict[str, int] = {}
        # Optional fault injector (see repro.faults); None = healthy cluster.
        self._faults = None
        # Optional durable ingest pipeline (see repro.ingest); when set,
        # append_rows/delete_rows route through the WAL + delta path.
        self._ingest = None

    # Fault injection -------------------------------------------------------
    @property
    def faults(self):
        """The attached :class:`~repro.faults.FaultInjector`, or ``None``."""
        return self._faults

    def attach_faults(self, injector) -> None:
        """Route every metered read through ``injector`` from now on."""
        self._faults = injector

    def clear_faults(self) -> None:
        """Detach the injector: the cluster is healthy again."""
        self._faults = None

    # Durable ingest --------------------------------------------------------
    @property
    def ingest(self):
        """The attached :class:`~repro.ingest.IngestPipeline`, or ``None``."""
        return self._ingest

    def enable_ingest(self, config=None, observer=None):
        """Switch writes to the durable WAL + delta-partition path.

        Idempotent: returns the existing pipeline if already enabled
        (``config`` is only honoured on the first call).  Already-stored
        tables are adopted (deltas attached, initial checkpoints
        written); tables stored later register automatically.
        """
        if self._ingest is None:
            from repro.ingest.pipeline import IngestPipeline

            self._ingest = IngestPipeline(self, config, observer=observer)
        return self._ingest

    def recover(self):
        """Crash-consistent recovery: replay the WAL onto checkpoints.

        Returns a :class:`~repro.ingest.RecoveryReport`; raises
        :class:`RecoveryError` if durable ingest was never enabled or
        the rebuilt image fails its consistency verification.
        """
        if self._ingest is None:
            raise RecoveryError(
                "durable ingest is not enabled on this store; "
                "call enable_ingest() first"
            )
        return self._ingest.recover()

    def account_delta_bytes(self, partition: TablePartition, n_bytes: int) -> None:
        """Adjust replica byte accounting for a delta memtable change."""
        if n_bytes == 0:
            return
        for node_id in partition.all_nodes:
            self.topology.node(node_id).stored_bytes += n_bytes

    def reset_served_bytes(self) -> None:
        """Forget per-node served-byte load counters (process restart)."""
        self._served_bytes.clear()

    def compact_partition(self, name: str, index: int) -> Optional[Dict]:
        """Merge one partition's delta into a new base image.

        This is the compaction moment: the effective base+delta view
        becomes the new base (bumping ``generation`` exactly once per
        merge, which is what keeps shared-memory republish bounded), the
        columnar image is re-encoded from fresh statistics, and the
        synopsis is rebuilt.  Returns merge stats, or ``None`` if the
        partition was clean.
        """
        stored = self.table(name)
        partition = stored.partitions[index]
        delta = partition.delta
        if delta is None or not delta.dirty:
            return None
        merged = partition.read_view()
        info = {
            "partition": partition.partition_id,
            "appended_rows": delta.n_rows,
            "deleted_rows": delta.n_deleted,
            "applied_lsn": delta.last_lsn,
            "merged_rows": merged.n_rows,
        }
        old_stored = partition.stored_bytes  # base image + delta memtable
        delta.rebase(merged.n_rows)
        partition._view = None
        partition.data = merged
        partition.generation += 1
        if partition.columnar is not None:
            partition.columnar = ColumnarPartition.from_table(merged)
        synopsis = PartitionSynopsis.from_table(merged)
        self._record_encodings(synopsis, partition)
        self._synopses[name][index] = synopsis
        diff = partition.stored_bytes - old_stored
        if diff:
            for node_id in partition.all_nodes:
                self.topology.node(node_id).stored_bytes += diff
        info["stored_bytes"] = partition.stored_bytes
        return info

    def restore_partition(
        self, partition: TablePartition, data: Table, columnar: bool
    ) -> PartitionSynopsis:
        """Reset a partition's base image from a checkpoint (recovery).

        The caller must have detached the delta (and retracted its byte
        accounting) first.  The generation is bumped rather than
        restored so a recovered image can never alias a shared-memory
        segment published before the crash.
        """
        old_stored = partition.stored_bytes
        partition.data = data
        partition.generation += 1
        partition.columnar = (
            ColumnarPartition.from_table(data) if columnar else None
        )
        partition._view = None
        synopsis = PartitionSynopsis.from_table(data)
        self._record_encodings(synopsis, partition)
        diff = partition.stored_bytes - old_stored
        if diff:
            for node_id in partition.all_nodes:
                self.topology.node(node_id).stored_bytes += diff
        return synopsis

    def read_slowdown(self, node_id: str) -> float:
        """Straggler multiplier for disk time on ``node_id`` (1.0 healthy)."""
        if self._faults is None:
            return 1.0
        return self._faults.slowdown(node_id)

    def pick_replica(self, partition: TablePartition) -> str:
        """The least-loaded *live* replica of a partition (read balancing).

        With replication > 1, spreading reads across replicas keeps hot
        partitions from turning their primary node into a bottleneck.
        With a fault injector attached, crashed replicas are never
        returned; raises :class:`PartitionLostError` when every replica
        is down.
        """
        candidates = partition.all_nodes
        if self._faults is not None and self._faults.active:
            candidates = [n for n in candidates if not self._faults.is_down(n)]
            if not candidates:
                raise PartitionLostError(
                    partition.partition_id, tried=partition.all_nodes
                )
        return min(
            candidates,
            key=lambda node: self._served_bytes.get(node, 0),
        )

    def served_bytes(self, node_id: str) -> int:
        return self._served_bytes.get(node_id, 0)

    # Placement -----------------------------------------------------------
    def put_table(
        self,
        table: Table,
        partitions_per_node: int = 1,
        nodes: Optional[List[str]] = None,
        seed: SeedLike = 0,
        layout: Optional[str] = None,
    ) -> StoredTable:
        """Shard ``table`` row-wise across nodes and register it.

        Partitions are placed round-robin over ``nodes`` (default: every
        node of the topology); replicas go to the next nodes in the ring.

        ``layout`` overrides the store default per table: ``"column"``
        additionally builds each partition's encoded columnar image at
        ingest (encodings chosen per column from cheap statistics and
        recorded in the partition synopsis), which engines scan instead
        of the row image while answers stay byte-identical.
        """
        if table.name in self._catalog:
            raise StorageError(f"table {table.name!r} already stored")
        layout = layout if layout is not None else self.layout
        require(
            layout in (LAYOUT_ROW, LAYOUT_COLUMN),
            f"unknown layout {layout!r} (expected 'row' or 'column')",
        )
        target_nodes = list(nodes) if nodes is not None else self.topology.node_ids
        require(len(target_nodes) >= 1, "need at least one target node")
        for node_id in target_nodes:
            if node_id not in self.topology:
                raise StorageError(f"unknown node {node_id}")
        n_parts = max(1, len(target_nodes) * partitions_per_node)
        n_parts = min(n_parts, max(1, table.n_rows))
        shards = table.split(n_parts)
        # Shuffle placement deterministically so partition index does not
        # correlate with node index across tables.
        order = make_rng(seed).permutation(len(target_nodes))
        ring = [target_nodes[i] for i in order]
        partitions = []
        for i, shard in enumerate(shards):
            primary = ring[i % len(ring)]
            replicas = [
                ring[(i + j) % len(ring)]
                for j in range(1, self.replication)
                if ring[(i + j) % len(ring)] != primary
            ]
            partition = TablePartition(
                partition_id=f"{table.name}/p{i}",
                table_name=table.name,
                index=i,
                data=shard,
                primary_node=primary,
                replica_nodes=replicas,
                columnar=(
                    ColumnarPartition.from_table(shard)
                    if layout == LAYOUT_COLUMN
                    else None
                ),
            )
            for node_id in partition.all_nodes:
                self.topology.node(node_id).add_partition(
                    partition.partition_id, partition.stored_bytes
                )
            partitions.append(partition)
        stored = StoredTable(name=table.name, partitions=partitions)
        self._catalog[table.name] = stored
        # Zone maps are written at ingest (like ORC/Parquet block footers),
        # so building them here is storage-side work, not query-time cost.
        # Columnar tables also record their encoding decisions there.
        synopses = []
        for p in partitions:
            synopsis = PartitionSynopsis.from_table(p.data)
            if p.columnar is not None:
                synopsis.encodings = dict(p.columnar.encodings)
            synopses.append(synopsis)
        self._synopses[table.name] = synopses
        if self._ingest is not None:
            self._ingest.register_table(stored)
        return stored

    def drop_table(self, name: str) -> None:
        stored = self.table(name)
        for partition in stored.partitions:
            for node_id in partition.all_nodes:
                self.topology.node(node_id).drop_partition(
                    partition.partition_id, partition.stored_bytes
                )
        del self._catalog[name]
        self._synopses.pop(name, None)
        if self._ingest is not None:
            self._ingest.deregister_table(name)

    # Catalog -------------------------------------------------------------
    def table(self, name: str) -> StoredTable:
        try:
            return self._catalog[name]
        except KeyError:
            raise StorageError(
                f"unknown table {name!r}; stored: {list(self._catalog)}"
            ) from None

    @property
    def table_names(self) -> List[str]:
        return list(self._catalog)

    def synopses(self, name: str) -> List[PartitionSynopsis]:
        """The table's zone-map synopses, index-aligned with its partitions."""
        self.table(name)  # raises StorageError for unknown tables
        return self._synopses[name]

    def synopsis_bytes(self, name: str) -> int:
        """Total serialized footprint of one table's synopses."""
        return sum(s.n_bytes for s in self.synopses(name))

    def __contains__(self, name: str) -> bool:
        return name in self._catalog

    # Metered access --------------------------------------------------------
    def read_partition(
        self, partition: TablePartition, meter: CostMeter, node_id: Optional[str] = None
    ) -> Table:
        """Full scan of one partition, charged to ``meter``.

        ``node_id`` selects which replica serves the read (default the
        primary).  Returns the partition's data.
        """
        serving = node_id if node_id is not None else partition.primary_node
        if serving not in partition.all_nodes:
            raise StorageError(
                f"node {serving} holds no replica of {partition.partition_id}"
            )
        faults = self._faults
        if faults is not None:
            # A dead node refuses the connection: nothing is charged, so
            # failover to a live replica stays byte-identical to no-fault.
            faults.check_available(serving, partition.partition_id)
        num_bytes = partition.stored_bytes
        meter.charge_scan(serving, num_bytes, rows=partition.n_rows)
        self._served_bytes[serving] = (
            self._served_bytes.get(serving, 0) + num_bytes
        )
        if faults is not None:
            # Transient failures strike after the bytes were served: the
            # wasted attempt's charge is the retry overhead made visible.
            faults.maybe_fail_read(serving, partition.partition_id)
        return partition.read_view()

    def read_columns(
        self,
        partition: TablePartition,
        columns: Optional[Sequence[str]],
        meter: CostMeter,
        node_id: Optional[str] = None,
    ) -> ColumnarPartition:
        """Column-pruned scan of a columnar partition, charged to ``meter``.

        Reads (and charges) only the named columns' *encoded* bytes —
        the storage-side half of late materialization.  Fault-injection
        semantics mirror :meth:`read_partition` exactly (availability
        checked before any charge, transient failures strike after the
        bytes were served), so failover replays are byte-identical
        between the row and columnar paths.
        """
        if partition.columnar is None:
            raise StorageError(
                f"partition {partition.partition_id} has no columnar image "
                "(stored with layout='row')"
            )
        if partition.dirty:
            # The encoded image covers only the base rows; engines must
            # fall back to read_partition for dirty partitions.
            raise StorageError(
                f"partition {partition.partition_id} has staged delta "
                "writes; its columnar image does not cover them"
            )
        serving = node_id if node_id is not None else partition.primary_node
        if serving not in partition.all_nodes:
            raise StorageError(
                f"node {serving} holds no replica of {partition.partition_id}"
            )
        faults = self._faults
        if faults is not None:
            faults.check_available(serving, partition.partition_id)
        projected = partition.columnar.project(columns)
        num_bytes = projected.encoded_bytes
        meter.charge_scan(serving, num_bytes, rows=partition.n_rows)
        self._served_bytes[serving] = (
            self._served_bytes.get(serving, 0) + num_bytes
        )
        if faults is not None:
            faults.maybe_fail_read(serving, partition.partition_id)
        return projected

    def read_rows(
        self,
        partition: TablePartition,
        row_indices,
        meter: CostMeter,
        node_id: Optional[str] = None,
        materialize: bool = True,
    ) -> Optional[Table]:
        """Surgical point-reads of specific rows, charged per row.

        This is the primitive the big-data-less suite (RT2) relies on: the
        cost is proportional to the rows actually fetched, not to the
        partition size.

        ``materialize=False`` applies the charges and load accounting but
        returns ``None`` — used by batched fetches that already hold the
        rows from a shared read and only need the cost replayed.
        """
        serving = node_id if node_id is not None else partition.primary_node
        if serving not in partition.all_nodes:
            raise StorageError(
                f"node {serving} holds no replica of {partition.partition_id}"
            )
        faults = self._faults
        if faults is not None:
            faults.check_available(serving, partition.partition_id)
        idx = np.asarray(row_indices, dtype=int)
        # Columnar partitions price a row at its average *encoded* width
        # (partition.row_bytes); row-major partitions keep the exact
        # row-major width, so the seed accounting is unchanged.
        num_bytes = idx.shape[0] * partition.row_bytes
        meter.charge_point_read(serving, num_bytes, rows=idx.shape[0])
        self._served_bytes[serving] = (
            self._served_bytes.get(serving, 0) + num_bytes
        )
        if faults is not None:
            faults.maybe_fail_read(serving, partition.partition_id)
        if not materialize:
            return None
        return partition.take(idx)

    # Mutation (model-maintenance experiments) ------------------------------
    def append_rows(self, name: str, rows: Table, seed: SeedLike = 0) -> None:
        """Append ``rows`` to a stored table, spread over its partitions.

        Zero-row pieces (more partitions than appended rows) leave their
        partition — data, node byte accounting, and synopsis — untouched;
        grown partitions update all three together so the bookkeeping
        cannot diverge on degenerate shapes.

        With durable ingest enabled (:meth:`enable_ingest`) the write is
        WAL-logged and staged into delta partitions instead of mutating
        base images; reads see it immediately through the base+delta
        view and the background compactor merges it at the next epoch.
        """
        if self._ingest is not None:
            self._ingest.append(name, rows)
            return
        try:
            stored = self.table(name)
        except StorageError as exc:
            raise WriteError("append", str(exc)) from None
        require(
            rows.column_names == stored.column_names,
            f"schema mismatch: {rows.column_names} vs {stored.column_names}",
        )
        if rows.n_rows == 0:
            return
        synopses = self._synopses[name]
        pieces = rows.split(len(stored.partitions))
        for index, (partition, piece) in enumerate(zip(stored.partitions, pieces)):
            if piece.n_rows == 0:
                continue
            grown = Table.concat([partition.data, piece], name=name)
            synopses[index] = synopses[index].appended(piece, grown)
            self._replace_partition_data(partition, grown)
            self._record_encodings(synopses[index], partition)

    def delete_rows(self, name: str, predicate) -> int:
        """Delete rows matching ``predicate(table) -> bool mask``; returns count.

        Partitions the predicate does not touch keep their data object
        (and synopsis) untouched; partitions left empty keep consistent
        accounting (zero stored bytes, an always-prunable synopsis).
        Minima/maxima are not decrementable, so a shrunk partition's
        synopsis is rebuilt from the surviving rows.

        With durable ingest enabled the delete is WAL-logged as
        evaluated per-partition masks and staged as tombstones; base
        rows disappear from the view immediately and physically at the
        next compaction.
        """
        if self._ingest is not None:
            return self._ingest.delete(name, predicate)
        try:
            stored = self.table(name)
        except StorageError as exc:
            raise WriteError("delete", str(exc)) from None
        synopses = self._synopses[name]
        deleted = 0
        for index, partition in enumerate(stored.partitions):
            mask = np.asarray(predicate(partition.data), dtype=bool)
            require(
                mask.shape == (partition.n_rows,),
                f"predicate mask shape {mask.shape} does not match "
                f"{partition.n_rows} rows of {partition.partition_id}",
            )
            hit = int(np.count_nonzero(mask))
            if hit == 0:
                continue
            keep = partition.data.select(~mask)
            deleted += hit
            synopses[index] = PartitionSynopsis.from_table(keep)
            self._replace_partition_data(partition, keep)
            self._record_encodings(synopses[index], partition)
        return deleted

    def _replace_partition_data(
        self, partition: TablePartition, new_data: Table
    ) -> None:
        """Swap a partition's data, keeping every replica's bytes exact.

        Columnar partitions re-encode from the new rows (this *is* the
        compaction moment: encoding decisions are re-taken from fresh
        column statistics), and the per-node byte deltas use the encoded
        footprints so node accounting tracks what is actually stored.
        """
        old_stored = partition.stored_bytes
        partition.data = new_data
        partition.generation += 1
        if partition.columnar is not None:
            partition.columnar = ColumnarPartition.from_table(new_data)
        delta = partition.stored_bytes - old_stored
        if delta == 0:
            return
        for node_id in partition.all_nodes:
            self.topology.node(node_id).stored_bytes += delta

    @staticmethod
    def _record_encodings(
        synopsis: PartitionSynopsis, partition: TablePartition
    ) -> None:
        """Mirror a partition's (re-)encoding decisions into its synopsis."""
        if partition.columnar is not None:
            synopsis.encodings = dict(partition.columnar.encodings)
