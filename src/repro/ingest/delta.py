"""In-memory delta partitions: the volatile half of base+delta storage.

A :class:`DeltaPartition` hangs off one
:class:`~repro.cluster.storage.TablePartition` while durable ingest is
enabled and accumulates the writes staged since that partition's last
compaction:

* ``rows`` — appended rows, concatenated in arrival order (the
  memtable).  Kept as a plain row-major :class:`Table`: deltas are
  small and short-lived, so encoding them would cost more than it
  saves.
* ``deleted_base`` — a boolean tombstone mask over the *base* image's
  rows.  Deletes against rows still in the delta are applied eagerly
  (the memtable is mutable-by-replacement); deletes against the base
  are deferred to compaction.

The effective content of a partition is
``base[~deleted_base] ++ rows`` — element-identical to applying the
same writes synchronously, which is what makes compaction invisible to
query answers (numpy aggregates over element-equal arrays are bitwise
equal).

``version`` bumps on every mutation and keys the caches above this
layer (the partition's materialized view, the delta synopsis).
``last_lsn`` records the newest WAL record folded in, which becomes the
partition's ``applied_lsn`` checkpoint at compaction — the cursor that
makes WAL replay idempotent.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.validation import require
from repro.data.tabular import Table


class DeltaPartition:
    """Pending writes for one table partition (see module docstring)."""

    __slots__ = (
        "base_rows",
        "rows",
        "deleted_base",
        "version",
        "first_lsn",
        "last_lsn",
        "_synopsis",
        "_synopsis_version",
    )

    def __init__(self, base_rows: int) -> None:
        require(base_rows >= 0, f"base_rows must be >= 0, got {base_rows}")
        self.base_rows = base_rows
        self.rows: Optional[Table] = None
        self.deleted_base: Optional[np.ndarray] = None
        self.version = 0
        self.first_lsn = 0
        self.last_lsn = 0
        self._synopsis = None
        self._synopsis_version = -1

    # State -----------------------------------------------------------------
    @property
    def dirty(self) -> bool:
        """True iff the partition's effective content differs from base."""
        return self.n_rows > 0 or self.n_deleted > 0

    @property
    def n_rows(self) -> int:
        """Appended rows pending merge."""
        return self.rows.n_rows if self.rows is not None else 0

    @property
    def n_deleted(self) -> int:
        """Base rows tombstoned for deletion at the next compaction."""
        if self.deleted_base is None:
            return 0
        return int(np.count_nonzero(self.deleted_base))

    @property
    def n_bytes(self) -> int:
        """Memtable footprint (tombstones are free: one bit of intent)."""
        return self.rows.n_bytes if self.rows is not None else 0

    @property
    def live_base_rows(self) -> int:
        return self.base_rows - self.n_deleted

    # Mutation --------------------------------------------------------------
    def append(self, piece: Table, lsn: int) -> None:
        """Fold ``piece`` onto the memtable tail."""
        if piece.n_rows == 0:
            return
        if self.rows is None:
            self.rows = piece
        else:
            self.rows = Table.concat([self.rows, piece], name=piece.name)
        self._stamp(lsn)

    def delete(self, effective_mask: np.ndarray, lsn: int) -> int:
        """Apply one delete mask expressed over the *effective* rows.

        The first ``live_base_rows`` entries address surviving base rows
        (tombstoned lazily); the remainder address the memtable
        (dropped eagerly).  Returns the number of rows deleted.
        """
        mask = np.asarray(effective_mask, dtype=bool)
        expected = self.live_base_rows + self.n_rows
        require(
            mask.shape == (expected,),
            f"delete mask covers {mask.shape} rows, partition has {expected}",
        )
        deleted = int(np.count_nonzero(mask))
        if deleted == 0:
            return 0
        base_part = mask[: self.live_base_rows]
        delta_part = mask[self.live_base_rows :]
        if base_part.any():
            if self.deleted_base is None:
                self.deleted_base = np.zeros(self.base_rows, dtype=bool)
            live_positions = np.flatnonzero(~self.deleted_base)
            self.deleted_base[live_positions[base_part]] = True
        if self.rows is not None and delta_part.any():
            self.rows = self.rows.select(~delta_part)
            if self.rows.n_rows == 0:
                self.rows = None
        self._stamp(lsn)
        return deleted

    def clear(self) -> None:
        """Reset after compaction folded this delta into a new base."""
        self.rows = None
        self.deleted_base = None
        self.first_lsn = 0
        self.last_lsn = 0
        self.version += 1
        self._synopsis = None
        self._synopsis_version = -1

    def rebase(self, base_rows: int) -> None:
        """Point at a freshly merged base of ``base_rows`` rows."""
        self.base_rows = base_rows
        self.clear()

    # Pruning support -------------------------------------------------------
    def synopsis(self):
        """Zone-map stats over the *appended* rows only (cached).

        A base-synopsis SKIP verdict stays sound for a dirty partition
        iff the memtable is also disjoint from the query box — this is
        the delta side of that check.  Deletes never un-skip.
        """
        if self.rows is None:
            return None
        if self._synopsis_version != self.version:
            from repro.cluster.synopsis import PartitionSynopsis

            self._synopsis = PartitionSynopsis.from_table(self.rows)
            self._synopsis_version = self.version
        return self._synopsis

    def _stamp(self, lsn: int) -> None:
        if self.first_lsn == 0:
            self.first_lsn = lsn
        self.last_lsn = max(self.last_lsn, lsn)
        self.version += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaPartition(+{self.n_rows} rows, -{self.n_deleted} base, "
            f"lsn {self.first_lsn}..{self.last_lsn})"
        )
