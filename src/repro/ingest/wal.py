"""A checksummed, generation-stamped write-ahead log over a simulated disk.

The log models fsync-free durability the same way the fault layer models
node crashes: no real I/O, but the *semantics* of real I/O.  Two byte
regions exist:

* ``_disk`` — bytes a successful :meth:`sync` has flushed.  These are
  durable: they survive :meth:`crash` verbatim.
* ``_pending`` — framed records appended since the last sync.  These
  are volatile: a crash loses them, except that a seeded *torn prefix*
  of the oldest unsynced record may land on disk (the partial page
  write every real WAL has to detect and discard).

Each record is framed as::

    MAGIC(2) | type(1) | lsn(8) | epoch(8) | payload_len(4) | crc32(4) | payload

with the CRC taken over ``type..payload``.  :meth:`scan` walks the
durable image, stops at the first incomplete or checksum-failing frame,
and reports how many torn tail bytes it discarded — recovery truncates
there, so replay sees exactly the synced prefix.

LSNs are the log's generation stamps: monotonically increasing across
every record, independent of epochs, and the unit per-partition
compaction checkpoints are expressed in (``applied_lsn``).
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.common.errors import WriteCrashError
from repro.common.validation import require

WAL_APPEND = 1
WAL_DELETE = 2
WAL_EPOCH = 3

_MAGIC = b"WL"
_HEADER = struct.Struct("<2sBQQLL")


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL record."""

    rtype: int
    lsn: int
    epoch: int
    payload: Any


def frame_record(rtype: int, lsn: int, epoch: int, payload: Any) -> bytes:
    """Serialize one record into its on-disk frame."""
    body = pickle.dumps((rtype, lsn, epoch, payload), protocol=4)
    crc = zlib.crc32(body)
    return _HEADER.pack(_MAGIC, rtype, lsn, epoch, len(body), crc) + body


class WriteAheadLog:
    """The simulated durable log (see module docstring for the model)."""

    def __init__(self) -> None:
        self._disk = bytearray()
        self._pending: List[bytes] = []
        self._inflight: Optional[bytes] = None
        self.next_lsn = 1
        self.synced_lsn = 0  # highest LSN a successful sync() has flushed
        self.n_syncs = 0
        self.high_water_bytes = 0  # peak durable size ever reached

    # Introspection ---------------------------------------------------------
    @property
    def disk_bytes(self) -> int:
        return len(self._disk)

    @property
    def pending_records(self) -> int:
        return len(self._pending)

    @property
    def pending_bytes(self) -> int:
        return sum(len(f) for f in self._pending)

    # Write path ------------------------------------------------------------
    def append(
        self,
        rtype: int,
        payload: Any,
        epoch: int,
        fault_hook: Optional[Callable[[str, str], None]] = None,
    ) -> int:
        """Frame ``payload`` as the next record and stage it (unsynced).

        ``fault_hook`` is consulted *mid-record* — after framing, before
        the frame joins the unsynced tail.  If it raises
        :class:`WriteCrashError` the half-written frame is remembered as
        in-flight so :meth:`crash` can tear exactly this record.
        """
        lsn = self.next_lsn
        self.next_lsn += 1
        frame = frame_record(rtype, lsn, epoch, payload)
        if fault_hook is not None:
            try:
                fault_hook("wal_record", f"lsn={lsn}")
            except WriteCrashError:
                self._inflight = frame
                raise
        self._pending.append(frame)
        return lsn

    def sync(self) -> int:
        """Flush every pending frame to the durable image.

        Returns the number of bytes made durable.  The caller owns the
        injectable ``"wal_sync"`` fault point (the compactor wraps this
        in its retry loop); a sync either happens entirely or not at all
        — partial flushes only ever come from :meth:`crash`.
        """
        flushed = 0
        if self._pending:
            for frame in self._pending:
                self._disk.extend(frame)
                flushed += len(frame)
            self._pending.clear()
            self.synced_lsn = self.next_lsn - 1
            self.high_water_bytes = max(self.high_water_bytes, len(self._disk))
        self.n_syncs += 1
        return flushed

    def crash(self, cut: Optional[Callable[[int], int]] = None) -> int:
        """Lose all volatile state, optionally tearing one record.

        The in-flight frame (crash mid-record), or failing that the
        oldest pending frame, may leave a torn prefix on disk: ``cut``
        maps the frame length to a strictly-partial fragment length
        (:meth:`FaultInjector.torn_cut` provides the seeded draw).
        Returns the number of torn bytes that landed.
        """
        victim = self._inflight
        if victim is None and self._pending:
            victim = self._pending[0]
        torn = 0
        if victim is not None and cut is not None and len(victim) >= 2:
            torn = cut(len(victim))
            require(
                0 < torn < len(victim),
                f"torn cut must be strictly partial, got {torn}/{len(victim)}",
            )
            self._disk.extend(victim[:torn])
        self._pending.clear()
        self._inflight = None
        return torn

    # Recovery --------------------------------------------------------------
    def scan(self) -> Tuple[List[WalRecord], int]:
        """Decode the durable image; truncate at the first bad frame.

        Returns ``(records, torn_bytes)`` where ``torn_bytes`` counts the
        discarded tail (incomplete frame, bad magic, or CRC mismatch).
        Truncation is physical: after a scan the durable image ends at
        the last verified record, so repeated recoveries are idempotent.
        """
        records: List[WalRecord] = []
        image = bytes(self._disk)
        offset = 0
        header_size = _HEADER.size
        while offset < len(image):
            start = offset
            if offset + header_size > len(image):
                break
            magic, rtype, lsn, epoch, length, crc = _HEADER.unpack(
                image[offset : offset + header_size]
            )
            if magic != _MAGIC:
                break
            offset += header_size
            if offset + length > len(image):
                offset = start
                break
            body = image[offset : offset + length]
            if zlib.crc32(body) != crc:
                offset = start
                break
            decoded_rtype, decoded_lsn, decoded_epoch, payload = pickle.loads(body)
            if (decoded_rtype, decoded_lsn, decoded_epoch) != (rtype, lsn, epoch):
                offset = start
                break
            records.append(WalRecord(rtype, lsn, epoch, payload))
            offset += length
        torn = len(image) - offset
        if torn:
            del self._disk[offset:]
        if records:
            last = records[-1].lsn
            self.synced_lsn = last
            self.next_lsn = max(self.next_lsn, last + 1)
        return records, torn

    def prune_through(self, lsn: int) -> int:
        """Drop durable records with ``lsn <= lsn`` (all partitions have
        compacted past them).  Returns the number of bytes reclaimed."""
        records, _ = self.scan()
        kept = [r for r in records if r.lsn > lsn]
        before = len(self._disk)
        self._disk = bytearray()
        for record in kept:
            self._disk.extend(
                frame_record(record.rtype, record.lsn, record.epoch, record.payload)
            )
        return before - len(self._disk)
