"""Durable streaming ingestion: WAL, delta partitions, compaction.

The write path is an LSM-flavoured split of every table partition into
an immutable *base* image plus a small in-memory *delta*
(:class:`~repro.ingest.delta.DeltaPartition`).  Writes are framed and
checksummed into a :class:`~repro.ingest.wal.WriteAheadLog` first, then
staged into deltas; a background compactor
(:class:`~repro.ingest.pipeline.IngestPipeline`) driven off the
simulated clock merges deltas into bases once per epoch and writes
per-partition checkpoints, giving crash-consistent recovery with
bounded staleness (one epoch).
"""

from repro.ingest.delta import DeltaPartition
from repro.ingest.wal import (
    WAL_APPEND,
    WAL_DELETE,
    WAL_EPOCH,
    WalRecord,
    WriteAheadLog,
)
from repro.ingest.pipeline import IngestConfig, IngestPipeline, RecoveryReport

__all__ = [
    "DeltaPartition",
    "IngestConfig",
    "IngestPipeline",
    "RecoveryReport",
    "WAL_APPEND",
    "WAL_DELETE",
    "WAL_EPOCH",
    "WalRecord",
    "WriteAheadLog",
]
