"""The ingest pipeline: WAL-fronted writes, epochs, compaction, recovery.

One :class:`IngestPipeline` attaches to a
:class:`~repro.cluster.storage.DistributedStore` via ``enable_ingest``
and takes over the write path:

1. every ``append_rows``/``delete_rows`` is framed into the
   :class:`~repro.ingest.wal.WriteAheadLog` first, then staged into the
   target partitions' :class:`~repro.ingest.delta.DeltaPartition`s —
   base images are never touched by a write;
2. the simulated clock (:meth:`advance`, normally driven through
   ``SEASession.advance``) closes an *epoch* every
   ``epoch_seconds``: the WAL tail is synced (group commit), every
   dirty delta is merged into its base by the background compactor,
   and a per-partition checkpoint ``(base image, generation,
   applied_lsn)`` records how far the merge got;
3. epoch close is also the maintenance moment: one
   ``agent.notify_data_update`` bounding box and one answer-cache
   invalidation per table per epoch, instead of per write — writes are
   visible to queries immediately (reads union base+delta), but
   model/cache maintenance runs at the epoch cadence, so the staleness
   of *learned* answers is bounded by ``epoch_seconds``.

Durability contract: a write survives a crash iff a successful WAL
sync covered its record.  :meth:`crash` loses every delta and the
unsynced WAL tail (leaving at most a torn, checksummed-detectable
fragment); :meth:`recover` restores bases from checkpoints, replays
durable records past each partition's ``applied_lsn`` (idempotent —
a half-merged compaction replays only the unmerged partitions), and
verifies ``synopses_consistent``/``columnar_consistent`` before
accepting writes again.

Injected faults (via the store's :class:`~repro.faults.FaultInjector`):
``wal_sync`` and ``checkpoint`` are transient points the compactor
retries with capped exponential backoff on the simulated clock;
``wal_record``, ``delta_append`` and ``compaction`` are crash windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import (
    RecoveryError,
    StorageError,
    WriteCrashError,
    WriteError,
)
from repro.common.validation import require
from repro.data.tabular import Table
from repro.ingest.delta import DeltaPartition
from repro.ingest.wal import (
    WAL_APPEND,
    WAL_DELETE,
    WAL_EPOCH,
    WriteAheadLog,
)
from repro.obs.observer import NULL_OBSERVER, Observer


@dataclass
class IngestConfig:
    """Knobs for the durable write path.

    ``epoch_seconds`` is the staleness bound: the longest a staged
    write can wait before compaction folds it into base images and the
    per-epoch maintenance (synopsis rebuild, cache invalidation, model
    drift notification) runs.  ``retry_limit``/``backoff_*`` shape the
    compactor's capped exponential backoff against transient
    ``wal_sync``/``checkpoint`` faults.
    """

    epoch_seconds: float = 1.0
    retry_limit: int = 4
    backoff_base: float = 0.05
    backoff_cap: float = 0.5
    prune_wal: bool = True

    def __post_init__(self) -> None:
        require(self.epoch_seconds > 0, "epoch_seconds must be positive")
        require(self.retry_limit >= 0, "retry_limit must be >= 0")
        require(self.backoff_base > 0, "backoff_base must be positive")
        require(self.backoff_cap >= self.backoff_base,
                "backoff_cap must be >= backoff_base")


@dataclass
class PartitionCheckpoint:
    """Durable per-partition compaction state: the recovery floor."""

    data: Table
    generation: int
    applied_lsn: int


@dataclass
class RecoveryReport:
    """What :meth:`IngestPipeline.recover` rebuilt and verified."""

    records_scanned: int = 0
    records_replayed: int = 0
    torn_bytes: int = 0
    partitions_restored: int = 0
    tables: List[str] = field(default_factory=list)
    durable_lsn: int = 0
    epoch: int = 0
    synopses_ok: bool = False
    columnar_ok: bool = False


class IngestPipeline:
    """Durable write path + background compactor for one store."""

    def __init__(
        self,
        store,
        config: Optional[IngestConfig] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        self.store = store
        self.config = config or IngestConfig()
        self.observer = observer or NULL_OBSERVER
        self.wal = WriteAheadLog()
        self.clock = 0.0
        self.epoch = 0
        self.epoch_opened = 0.0
        self.crashed = False
        self.n_retries = 0
        self.n_compactions = 0
        self.n_epochs_closed = 0
        self._listeners: List[Callable[[Dict[str, Any]], None]] = []
        self._checkpoints: Dict[Tuple[str, int], PartitionCheckpoint] = {}
        # name -> {"columnar": bool} — which tables recovery must rebuild.
        self._tables: Dict[str, Dict[str, Any]] = {}
        # Per-epoch maintenance state: table -> (lows, highs) bounding box
        # over this epoch's written rows, plus appended/deleted counters.
        self._epoch_boxes: Dict[str, Dict[str, Any]] = {}
        for name in store.table_names:
            self.register_table(store.table(name))

    def attach_observer(self, observer: Observer) -> None:
        self.observer = observer

    # Registration ----------------------------------------------------------
    def register_table(self, stored) -> None:
        """Adopt a stored table: attach deltas, write its first checkpoints."""
        columnar = all(p.columnar is not None for p in stored.partitions)
        self._tables[stored.name] = {"columnar": columnar}
        for partition in stored.partitions:
            partition.delta = DeltaPartition(partition.data.n_rows)
            self._checkpoints[(stored.name, partition.index)] = (
                PartitionCheckpoint(
                    data=partition.data,
                    generation=partition.generation,
                    applied_lsn=0,
                )
            )

    def deregister_table(self, name: str) -> None:
        self._tables.pop(name, None)
        self._checkpoints = {
            key: cp for key, cp in self._checkpoints.items() if key[0] != name
        }
        self._epoch_boxes.pop(name, None)

    def on_epoch(self, listener: Callable[[Dict[str, Any]], None]) -> None:
        """Call ``listener(summary)`` after every epoch close (the hook
        the session uses for per-epoch cache/model maintenance)."""
        self._listeners.append(listener)

    # Introspection ---------------------------------------------------------
    @property
    def staleness_bound(self) -> float:
        """Upper bound on write-to-compaction latency (simulated seconds)."""
        return self.config.epoch_seconds

    @property
    def pending_delta_rows(self) -> int:
        total = 0
        for name in self._tables:
            for partition in self.store.table(name).partitions:
                if partition.delta is not None:
                    total += partition.delta.n_rows
        return total

    def stats(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "clock": self.clock,
            "crashed": self.crashed,
            "wal_disk_bytes": self.wal.disk_bytes,
            "wal_pending_records": self.wal.pending_records,
            "wal_synced_lsn": self.wal.synced_lsn,
            "pending_delta_rows": self.pending_delta_rows,
            "epochs_closed": self.n_epochs_closed,
            "compactions": self.n_compactions,
            "retries": self.n_retries,
        }

    # Write path ------------------------------------------------------------
    def append(self, name: str, rows: Table) -> int:
        """Log and stage an append; returns its LSN (0 for empty input)."""
        self._guard()
        stored = self._stored_for_write(name, "append")
        require(
            rows.column_names == stored.column_names,
            f"schema mismatch: {rows.column_names} vs {stored.column_names}",
        )
        if rows.n_rows == 0:
            return 0
        payload = {
            "table": name,
            "columns": {c: rows.column(c) for c in rows.column_names},
            "value_bytes": rows.value_bytes,
        }
        lsn = self._log(WAL_APPEND, payload)
        self._check_write("delta_append", f"append lsn={lsn} table={name}")
        self._apply_append(stored, rows, lsn)
        if self.observer.enabled:
            self.observer.inc("ingest_appended_rows_total", rows.n_rows)
        return lsn

    def delete(self, name: str, predicate) -> int:
        """Log and stage a delete; returns the number of rows tombstoned."""
        self._guard()
        stored = self._stored_for_write(name, "delete")
        staged = []
        masks: Dict[int, np.ndarray] = {}
        for partition in stored.partitions:
            view = partition.read_view()
            mask = np.asarray(predicate(view), dtype=bool)
            require(
                mask.shape == (view.n_rows,),
                f"predicate mask shape {mask.shape} does not match "
                f"{view.n_rows} rows of {partition.partition_id}",
            )
            staged.append((partition, view, mask))
            masks[partition.index] = mask
        payload = {"table": name, "masks": masks}
        lsn = self._log(WAL_DELETE, payload)
        self._check_write("delta_append", f"delete lsn={lsn} table={name}")
        deleted = 0
        for partition, view, mask in staged:
            if not mask.any():
                continue
            self._box_union(name, view.select(mask))
            deleted += self._stage_delete(partition, mask, lsn)
        if self.observer.enabled and deleted:
            self.observer.inc("ingest_deleted_rows_total", deleted)
        return deleted

    # Clock / epochs --------------------------------------------------------
    def advance(self, seconds: float) -> float:
        """Move the simulated clock; close every epoch boundary crossed."""
        require(seconds >= 0.0, f"cannot advance time by {seconds}")
        self._guard()
        self.clock += seconds
        while self.clock - self.epoch_opened >= self.config.epoch_seconds:
            self._close_epoch(self.epoch_opened + self.config.epoch_seconds)
        return self.clock

    def flush(self) -> Dict[str, Any]:
        """Close the current epoch immediately (sync + compact + maintain)."""
        self._guard()
        return self._close_epoch(self.clock)

    # Crash / recovery ------------------------------------------------------
    def crash(self) -> int:
        """Kill the simulated process: volatile write state is lost.

        Deltas, the unsynced WAL tail, and served-bytes load counters
        die with the process; a seeded torn fragment of the oldest
        in-flight record may land on disk.  Returns the torn byte
        count.  Writes raise :class:`WriteError` until :meth:`recover`.
        """
        torn = self.wal.crash(self._cut_fn())
        for name in self._tables:
            for partition in self.store.table(name).partitions:
                delta = partition.delta
                if delta is not None and delta.n_bytes:
                    self.store.account_delta_bytes(partition, -delta.n_bytes)
                partition.delta = None
        self.store.reset_served_bytes()
        self._epoch_boxes = {}
        self.crashed = True
        if self.observer.enabled:
            self.observer.inc("ingest_crashes_total")
            self.observer.event("ingest_crash", torn_bytes=torn, at=self.clock)
        return torn

    def recover(self) -> RecoveryReport:
        """Rebuild a verified store image from checkpoints + WAL replay.

        Idempotent: recovery reads only durable state (checkpoints and
        the synced WAL prefix), so running it twice — or after a clean
        shutdown — converges to the same image.
        """
        report = RecoveryReport()
        records, torn = self.wal.scan()
        report.records_scanned = len(records)
        report.torn_bytes = torn
        store = self.store
        # 1. Restore every partition to its checkpoint (the merge floor).
        for name, meta in self._tables.items():
            report.tables.append(name)
            stored = store.table(name)
            synopses = store.synopses(name)
            for partition in stored.partitions:
                checkpoint = self._checkpoints[(name, partition.index)]
                delta = partition.delta
                if delta is not None and delta.n_bytes:
                    store.account_delta_bytes(partition, -delta.n_bytes)
                partition.delta = None
                restored = store.restore_partition(
                    partition,
                    checkpoint.data,
                    columnar=meta["columnar"],
                )
                synopses[partition.index] = restored
                partition.delta = DeltaPartition(partition.data.n_rows)
                report.partitions_restored += 1
        self.crashed = False
        # 2. Replay durable records past each partition's applied_lsn.
        last_epoch = -1
        for record in records:
            last_epoch = max(last_epoch, record.epoch)
            if record.rtype == WAL_EPOCH:
                continue
            name = record.payload.get("table")
            if name not in self._tables or name not in store:
                continue
            if self._replay(record):
                report.records_replayed += 1
        if last_epoch >= 0:
            self.epoch = max(self.epoch, last_epoch + 1)
        self.epoch_opened = self.clock
        report.epoch = self.epoch
        report.durable_lsn = max(
            [self.wal.synced_lsn]
            + [cp.applied_lsn for cp in self._checkpoints.values()]
        )
        # 3. Verify the rebuilt image before accepting writes again.
        report.synopses_ok = self._verify_synopses()
        report.columnar_ok = self._verify_columnar()
        if self.observer.enabled:
            self.observer.inc("ingest_recoveries_total")
            self.observer.event(
                "ingest_recovery",
                records_replayed=report.records_replayed,
                torn_bytes=report.torn_bytes,
                durable_lsn=report.durable_lsn,
            )
        if not (report.synopses_ok and report.columnar_ok):
            raise RecoveryError(
                "recovered image failed verification "
                f"(synopses_ok={report.synopses_ok}, "
                f"columnar_ok={report.columnar_ok})"
            )
        return report

    # Internals: write path -------------------------------------------------
    def _guard(self) -> None:
        if self.crashed:
            raise WriteError(
                "crashed",
                "store crashed mid-write; call recover() before writing",
            )

    def _stored_for_write(self, name: str, op: str):
        try:
            return self.store.table(name)
        except StorageError as exc:
            raise WriteError(op, str(exc)) from None

    def _fault_hook(self):
        faults = self.store.faults
        if faults is None:
            return None
        return faults.check_write

    def _check_write(self, point: str, detail: str = "") -> None:
        faults = self.store.faults
        if faults is None:
            return
        try:
            faults.check_write(point, detail)
        except WriteCrashError:
            self.crash()
            raise

    def _cut_fn(self):
        faults = self.store.faults
        if faults is not None:
            return faults.torn_cut
        # No injector: deterministic midpoint tear (still strictly partial).
        return lambda n: max(1, n // 2)

    def _log(self, rtype: int, payload: Dict[str, Any]) -> int:
        try:
            lsn = self.wal.append(
                rtype, payload, self.epoch, fault_hook=self._fault_hook()
            )
        except WriteCrashError:
            self.crash()
            raise
        if self.observer.enabled:
            self.observer.inc("ingest_wal_records_total")
            self.observer.set_gauge(
                "ingest_wal_pending_records", self.wal.pending_records
            )
        return lsn

    def _apply_append(self, stored, rows: Table, lsn: int) -> None:
        pieces = rows.split(len(stored.partitions))
        for partition, piece in zip(stored.partitions, pieces):
            if piece.n_rows == 0:
                continue
            self._stage_append(partition, piece, lsn)
        self._box_union(stored.name, rows)

    def _stage_append(self, partition, piece: Table, lsn: int) -> None:
        delta = partition.delta
        before = delta.n_bytes
        delta.append(piece, lsn)
        self.store.account_delta_bytes(partition, delta.n_bytes - before)

    def _stage_delete(self, partition, mask: np.ndarray, lsn: int) -> int:
        delta = partition.delta
        before = delta.n_bytes
        deleted = delta.delete(mask, lsn)
        self.store.account_delta_bytes(partition, delta.n_bytes - before)
        return deleted

    def _box_union(self, name: str, rows: Table) -> None:
        if rows.n_rows == 0:
            return
        box = self._epoch_boxes.setdefault(
            name, {"lows": {}, "highs": {}, "rows": 0, "order": []}
        )
        box["rows"] += rows.n_rows
        if not box["order"]:
            box["order"] = list(rows.column_names)
        for column in rows.column_names:
            values = rows.column(column)
            low = float(np.min(values))
            high = float(np.max(values))
            if column in box["lows"]:
                box["lows"][column] = min(box["lows"][column], low)
                box["highs"][column] = max(box["highs"][column], high)
            else:
                box["lows"][column] = low
                box["highs"][column] = high

    # Internals: epochs and compaction --------------------------------------
    def _close_epoch(self, opened_next: float) -> Dict[str, Any]:
        epoch = self.epoch
        boxes = self._epoch_boxes
        self._epoch_boxes = {}
        summary: Dict[str, Any] = {
            "epoch": epoch,
            "clock": self.clock,
            "tables": {},
            "partitions_compacted": 0,
            "synced_bytes": 0,
        }
        dirty = self.wal.pending_records > 0 or self.pending_delta_rows > 0
        if not dirty and not any(
            p.delta is not None and p.delta.dirty
            for name in self._tables
            for p in self.store.table(name).partitions
        ):
            # Empty epoch: roll the counter, skip the WAL/compactor work.
            self.epoch += 1
            self.epoch_opened = opened_next
            self._notify(summary, boxes)
            return summary
        try:
            self._run_compaction(epoch, summary)
        except WriteCrashError:
            raise
        except WriteError:
            # Transient failure with retries exhausted: nothing was lost
            # (deltas still hold the staged writes), so put the epoch's
            # maintenance box back for the next close attempt.
            self._epoch_boxes = boxes
            raise
        self.epoch += 1
        self.n_epochs_closed += 1
        self.epoch_opened = opened_next
        if self.observer.enabled:
            self.observer.inc("ingest_epochs_closed_total")
            self.observer.inc(
                "ingest_wal_synced_bytes_total", summary["synced_bytes"]
            )
            self.observer.set_gauge(
                "ingest_wal_disk_bytes", self.wal.disk_bytes
            )
            self.observer.event(
                "epoch_close",
                epoch=epoch,
                partitions_compacted=summary["partitions_compacted"],
                synced_bytes=summary["synced_bytes"],
                at=self.clock,
            )
        self._notify(summary, boxes)
        return summary

    def _run_compaction(self, epoch: int, summary: Dict[str, Any]) -> None:
        with self.observer.span(
            f"epoch {epoch} close", category="compaction", track="ingest"
        ):
            self._log(WAL_EPOCH, {"epoch": epoch, "clock": self.clock})
            summary["synced_bytes"] = self._retry(
                "wal_sync", self.wal.sync, f"epoch={epoch}"
            )
            min_applied = None
            for name in self._tables:
                stored = self.store.table(name)
                for partition in stored.partitions:
                    delta = partition.delta
                    if delta is None or not delta.dirty:
                        applied = self._checkpoints[
                            (name, partition.index)
                        ].applied_lsn
                        min_applied = (
                            applied
                            if min_applied is None
                            else min(min_applied, applied)
                        )
                        continue
                    # The recovery floor: the merge folds in *everything*
                    # staged, and every durable record <= synced_lsn that
                    # named this partition was staged when it was logged —
                    # so after this compaction, replay can skip the whole
                    # synced prefix, not just up to the last record that
                    # happened to touch this partition.  (The tighter
                    # floor is what lets pruning drop frames whose writes
                    # landed only on *other* partitions.)
                    applied_lsn = self.wal.synced_lsn
                    self._check_write(
                        "compaction",
                        f"epoch={epoch} partition={partition.partition_id}",
                    )
                    info = self.store.compact_partition(name, partition.index)
                    self._retry(
                        "checkpoint",
                        lambda p=partition, lsn=applied_lsn, n=name: (
                            self._write_checkpoint(n, p, lsn)
                        ),
                        f"partition={partition.partition_id}",
                    )
                    self.n_compactions += 1
                    summary["partitions_compacted"] += 1
                    min_applied = (
                        applied_lsn
                        if min_applied is None
                        else min(min_applied, applied_lsn)
                    )
                    if self.observer.enabled and info is not None:
                        self.observer.inc("compaction_partitions_total")
                        self.observer.inc(
                            "compaction_merged_rows_total",
                            info["appended_rows"] + info["deleted_rows"],
                        )
            if self.config.prune_wal and min_applied:
                # Keep the newest epoch marker (lsn == synced_lsn) even
                # when every partition's floor covers it: a later recover
                # then still sees which epoch the log was stopped in.
                self.wal.prune_through(min(min_applied, self.wal.synced_lsn - 1))

    def _notify(
        self, summary: Dict[str, Any], boxes: Dict[str, Dict[str, Any]]
    ) -> None:
        for name, box in boxes.items():
            # Schema order (not sorted): the box must line up with how
            # maintenance callers pass bounding boxes to the agent.
            columns = box.get("order") or sorted(box["lows"])
            summary["tables"][name] = {
                "columns": columns,
                "lows": [box["lows"][c] for c in columns],
                "highs": [box["highs"][c] for c in columns],
                "rows": box["rows"],
            }
        for listener in self._listeners:
            listener(summary)

    def _write_checkpoint(self, name: str, partition, applied_lsn: int) -> None:
        self._checkpoints[(name, partition.index)] = PartitionCheckpoint(
            data=partition.data,
            generation=partition.generation,
            applied_lsn=applied_lsn,
        )

    def _retry(self, point: str, fn, detail: str = ""):
        """Run ``fn`` behind a transient-fault point with capped backoff."""
        attempt = 0
        while True:
            try:
                self._check_write(point, detail)
                return fn()
            except WriteCrashError:
                raise
            except WriteError as exc:
                attempt += 1
                self.n_retries += 1
                if self.observer.enabled:
                    self.observer.inc("compaction_retries_total", point=point)
                if attempt > self.config.retry_limit:
                    raise
                backoff = min(
                    self.config.backoff_cap,
                    self.config.backoff_base * (2 ** (attempt - 1)),
                )
                self.clock += backoff
                if self.observer.enabled:
                    self.observer.event(
                        "write_retry",
                        point=point,
                        attempt=attempt,
                        backoff=backoff,
                        error=str(exc),
                    )

    # Internals: recovery ---------------------------------------------------
    def _replay(self, record) -> bool:
        """Apply one durable record to the rebuilt deltas (idempotently)."""
        payload = record.payload
        name = payload["table"]
        stored = self.store.table(name)
        applied = False
        if record.rtype == WAL_APPEND:
            rows = Table(
                dict(payload["columns"]),
                name=name,
                value_bytes=payload["value_bytes"],
            )
            pieces = rows.split(len(stored.partitions))
            touched = False
            for partition, piece in zip(stored.partitions, pieces):
                if piece.n_rows == 0:
                    continue
                checkpoint = self._checkpoints[(name, partition.index)]
                if record.lsn <= checkpoint.applied_lsn:
                    continue
                self._stage_append(partition, piece, record.lsn)
                touched = True
            if touched:
                self._box_union(name, rows)
                applied = True
        elif record.rtype == WAL_DELETE:
            for partition in stored.partitions:
                mask = payload["masks"].get(partition.index)
                if mask is None or not mask.any():
                    continue
                checkpoint = self._checkpoints[(name, partition.index)]
                if record.lsn <= checkpoint.applied_lsn:
                    continue
                view = partition.read_view()
                self._box_union(name, view.select(mask))
                self._stage_delete(partition, mask, record.lsn)
                applied = True
        return applied

    def _verify_synopses(self) -> bool:
        from repro.cluster.synopsis import synopses_consistent

        for name in self._tables:
            stored = self.store.table(name)
            if not synopses_consistent(
                self.store.synopses(name), [p.data for p in stored.partitions]
            ):
                return False
        return True

    def _verify_columnar(self) -> bool:
        from repro.cluster.columnar import columnar_consistent

        for name, meta in self._tables.items():
            if not meta["columnar"]:
                continue
            stored = self.store.table(name)
            if not columnar_consistent(
                [p.columnar for p in stored.partitions],
                [p.data for p in stored.partitions],
            ):
                return False
        return True
