"""SEA — Scalable, Efficient, Accurate analytics via data-less processing.

A full reproduction of the system envisioned in

    Peter Triantafillou, "Towards Intelligent Distributed Data Systems for
    Scalable Efficient and Accurate Analytics", ICDCS 2018.

Quickstart::

    from repro import (
        ClusterTopology, DistributedStore, ExactEngine, SEAAgent,
        AgentConfig, gaussian_mixture_table, WorkloadGenerator,
        InterestProfile, Count,
    )

    topo = ClusterTopology.single_datacenter(8)
    store = DistributedStore(topo)
    table = gaussian_mixture_table(50_000, dims=("x0", "x1"), seed=1, name="data")
    store.put_table(table, partitions_per_node=2)

    agent = SEAAgent(ExactEngine(store), AgentConfig(training_budget=300))
    profile = InterestProfile.from_table(table, ("x0", "x1"), 4, seed=2)
    workload = WorkloadGenerator("data", ("x0", "x1"), profile, aggregate=Count())
    for query in workload.batch(1000):
        record = agent.submit(query)   # record.mode: train|predicted|fallback

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
experiment catalogue.
"""

from repro.common import CostMeter, CostRates, CostReport
from repro.cluster import ClusterTopology, DistributedStore
from repro.data import (
    Table,
    gaussian_mixture_table,
    uniform_table,
    scored_relation,
    table_with_missing,
    InterestProfile,
    WorkloadGenerator,
)
from repro.queries import (
    AnalyticsQuery,
    parse_query,
    RangeSelection,
    RadiusSelection,
    KNNSelection,
    Count,
    Sum,
    Mean,
    Std,
    Median,
    Quantile,
    Correlation,
    RegressionCoefficients,
)
from repro.engine import (
    BDASStack,
    ResourceManager,
    MapReduceEngine,
    CoordinatorEngine,
)
from repro.core import (
    SEAAgent,
    AgentConfig,
    AnswerCache,
    DatalessPredictor,
    QuerySpaceQuantizer,
    Polystore,
    PolystoreSystem,
)
from repro.baselines import (
    ExactEngine,
    SamplingAQPEngine,
    SegmentStatsCache,
    DBLEngine,
)
from repro.bigdataless import (
    DistributedGridIndex,
    RankJoinBaseline,
    IndexedRankJoin,
    KNNBaseline,
    CoordinatorKNN,
    GraphStore,
    SubgraphMatcher,
    SemanticGraphCache,
    MapReduceImputer,
    SurgicalKNNImputer,
    AdHocMLEngine,
)
from repro.optimizer import (
    TaskFeatures,
    ExecutionAlternative,
    AlternativeSet,
    ExecutionLog,
    CostModelSelector,
    LearnedSelector,
)
from repro.explain import (
    Explanation,
    ExplanationBuilder,
    ThresholdRegionQuery,
    HigherLevelEngine,
)
from repro.faults import (
    CrashWindow,
    DegradedAnswer,
    FailoverPolicy,
    FaultInjector,
    FaultSchedule,
    InjectionPlan,
    NodeUnavailableError,
    PartitionLostError,
    TransientReadError,
)
from repro.common.errors import RecoveryError, WriteCrashError, WriteError
from repro.geo import GeoSites, EdgeAgent, CoreCoordinator, GeoRouter
from repro.ingest import IngestConfig, IngestPipeline, RecoveryReport
from repro.parallel import Morsel, ScanExecutor
from repro.obs import (
    AccuracyDriftMonitor,
    EventLog,
    FlightRecorder,
    MetricsRegistry,
    NULL_OBSERVER,
    Observer,
    QueryProfile,
    SLOMonitor,
    SLOPolicy,
    SLOTarget,
    StackObserver,
    TraceRecorder,
)
from repro.serve import (
    AdmissionRejectedError,
    GatewayAnswer,
    GatewayClosedError,
    GatewayConfig,
    ServingGateway,
    TenantHandle,
)
from repro.session import SEASession, SessionAnswer

__version__ = "1.0.0"

__all__ = [
    "CostMeter",
    "CostRates",
    "CostReport",
    "ClusterTopology",
    "DistributedStore",
    "Table",
    "gaussian_mixture_table",
    "uniform_table",
    "scored_relation",
    "table_with_missing",
    "InterestProfile",
    "WorkloadGenerator",
    "AnalyticsQuery",
    "parse_query",
    "RangeSelection",
    "RadiusSelection",
    "KNNSelection",
    "Count",
    "Sum",
    "Mean",
    "Std",
    "Median",
    "Quantile",
    "Correlation",
    "RegressionCoefficients",
    "BDASStack",
    "ResourceManager",
    "MapReduceEngine",
    "CoordinatorEngine",
    "SEAAgent",
    "AgentConfig",
    "AnswerCache",
    "DatalessPredictor",
    "QuerySpaceQuantizer",
    "Polystore",
    "PolystoreSystem",
    "ExactEngine",
    "SamplingAQPEngine",
    "SegmentStatsCache",
    "DBLEngine",
    "DistributedGridIndex",
    "RankJoinBaseline",
    "IndexedRankJoin",
    "KNNBaseline",
    "CoordinatorKNN",
    "GraphStore",
    "SubgraphMatcher",
    "SemanticGraphCache",
    "MapReduceImputer",
    "SurgicalKNNImputer",
    "AdHocMLEngine",
    "TaskFeatures",
    "ExecutionAlternative",
    "AlternativeSet",
    "ExecutionLog",
    "CostModelSelector",
    "LearnedSelector",
    "Explanation",
    "ExplanationBuilder",
    "ThresholdRegionQuery",
    "HigherLevelEngine",
    "CrashWindow",
    "DegradedAnswer",
    "FailoverPolicy",
    "FaultInjector",
    "FaultSchedule",
    "InjectionPlan",
    "NodeUnavailableError",
    "PartitionLostError",
    "TransientReadError",
    "IngestConfig",
    "IngestPipeline",
    "RecoveryError",
    "RecoveryReport",
    "WriteCrashError",
    "WriteError",
    "GeoSites",
    "EdgeAgent",
    "CoreCoordinator",
    "GeoRouter",
    "Morsel",
    "ScanExecutor",
    "AccuracyDriftMonitor",
    "EventLog",
    "FlightRecorder",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "Observer",
    "QueryProfile",
    "SLOMonitor",
    "SLOPolicy",
    "SLOTarget",
    "StackObserver",
    "TraceRecorder",
    "AdmissionRejectedError",
    "GatewayAnswer",
    "GatewayClosedError",
    "GatewayConfig",
    "ServingGateway",
    "TenantHandle",
    "SEASession",
    "SessionAnswer",
    "__version__",
]
