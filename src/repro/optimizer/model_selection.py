"""Query-driven regression model selection (RT3.3, [48]).

"Even if said models derive from the same family (e.g., regression-based),
different models have been found to be best for different data subspaces:
e.g., when considering using different regression base models or
boosting-based ensemble models [41], [42]."

:func:`select_family_cv` cross-validates candidate answer-model families
on one quantum's (query vector, answer) buffer and returns the family with
the lowest validation error.  :func:`apply_per_quantum_selection` re-fits
an already-trained :class:`~repro.core.predictor.DatalessPredictor` so
each quantum uses its individually best family — the ablation of E10/E14.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.validation import require
from repro.core.answer_models import FAMILIES, AnswerModelFactory
from repro.core.predictor import DatalessPredictor
from repro.ml.metrics import mean_absolute_error


def select_family_cv(
    x: np.ndarray,
    y: np.ndarray,
    families: Sequence[str] = FAMILIES,
    n_folds: int = 3,
    seed: int = 0,
) -> Tuple[str, Dict[str, float]]:
    """K-fold-validated family choice for one quantum's training buffer.

    Returns (best family, per-family mean absolute validation error).
    Families whose minimum sample requirement exceeds the fold size are
    skipped; with very small buffers this degenerates gracefully to the
    constant model.
    """
    x = np.atleast_2d(np.asarray(x, dtype=float))
    y = np.asarray(y, dtype=float).ravel()
    require(x.shape[0] == y.shape[0], "x and y row counts differ")
    require(n_folds >= 2, "n_folds must be >= 2")
    n = x.shape[0]
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    folds = np.array_split(order, min(n_folds, n))
    scores: Dict[str, float] = {}
    for family in families:
        factory = AnswerModelFactory(family)
        fold_errors: List[float] = []
        for i, hold in enumerate(folds):
            train = np.concatenate([f for j, f in enumerate(folds) if j != i])
            if train.shape[0] < factory.min_samples() or hold.shape[0] == 0:
                continue
            model = factory.build()
            model.fit(x[train], y[train])
            fold_errors.append(
                mean_absolute_error(y[hold], model.predict(x[hold]))
            )
        if fold_errors:
            scores[family] = float(np.mean(fold_errors))
    if not scores:
        return "mean", {"mean": float(np.abs(y - y.mean()).mean())}
    best = min(scores, key=scores.get)
    return best, scores


class ModelSelector:
    """Stateful wrapper tracking which family each quantum adopted."""

    def __init__(
        self, families: Sequence[str] = FAMILIES, n_folds: int = 3
    ) -> None:
        self.families = tuple(families)
        self.n_folds = n_folds
        self.choices: Dict[int, str] = {}
        self.scores: Dict[int, Dict[str, float]] = {}

    def select_for_quantum(
        self, quantum_id: int, x: np.ndarray, y: np.ndarray
    ) -> str:
        best, scores = select_family_cv(
            x, y, families=self.families, n_folds=self.n_folds
        )
        self.choices[quantum_id] = best
        self.scores[quantum_id] = scores
        return best


def apply_per_quantum_selection(
    predictor: DatalessPredictor,
    families: Sequence[str] = FAMILIES,
    n_folds: int = 3,
) -> Dict[int, str]:
    """Re-fit each quantum of a trained predictor with its best family.

    Returns {quantum_id: chosen family}.  Quanta with insufficient data
    keep their current factory.  Only scalar-answer predictors are
    supported (vector answers would need per-dimension selection).
    """
    require(predictor.answer_dim == 1, "per-quantum selection is scalar-only")
    selector = ModelSelector(families=families, n_folds=n_folds)
    chosen: Dict[int, str] = {}
    for quantum_id in predictor.quantum_ids():
        model = predictor.model_for(quantum_id)
        if model is None or model.n_samples < 6:
            continue
        x = np.asarray(model._x)
        y = np.asarray(model._y)[:, 0]
        family = selector.select_for_quantum(quantum_id, x, y)
        model.factory = AnswerModelFactory(family)
        model._dirty = True
        chosen[quantum_id] = family
    return chosen
