"""Feature extraction for execution-method selection (RT3).

The learned optimizer needs a numeric description of the task at hand.
:class:`TaskFeatures` is an ordered, named feature vector; builders for
the tasks studied in the experiments (distributed joins, kNN, subspace
aggregates) keep feature names consistent between training logs and
prediction time.

Log-scaled size features keep the decision-tree splits meaningful across
the orders-of-magnitude sweeps the experiments run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.synopsis import PartitionSynopsis, estimate_selectivity
from repro.common.validation import require
from repro.queries.selections import Selection


def synopsis_estimates(
    synopses: Sequence[PartitionSynopsis], selection: Selection
) -> Tuple[float, float]:
    """(estimated selectivity, scan fraction) from zone maps alone.

    Both come from partition synopses — no data is read — so the
    optimizer can be fed workload-aware features at planning time for
    the cost of a metadata pass.  ``scan fraction`` is the fraction of
    partitions whose zone map intersects the selection's bounding box,
    i.e. what a pruned execution would actually touch.
    """
    if not synopses:
        return 1.0, 1.0
    lows, highs = selection.box()
    columns = selection.columns
    est = estimate_selectivity(synopses, columns, lows, highs)
    overlapping = sum(
        0 if s.disjoint(columns, lows, highs) else 1 for s in synopses
    )
    return est, overlapping / len(synopses)


@dataclass(frozen=True)
class TaskFeatures:
    """An ordered named feature vector describing one task instance."""

    names: Tuple[str, ...]
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        require(
            len(self.names) == len(self.values),
            "names and values must have equal length",
        )

    def as_array(self) -> np.ndarray:
        return np.asarray(self.values, dtype=float)

    def as_dict(self) -> Dict[str, float]:
        return dict(zip(self.names, self.values))

    def __getitem__(self, name: str) -> float:
        try:
            return self.values[self.names.index(name)]
        except ValueError:
            raise KeyError(name) from None

    # Builders ---------------------------------------------------------------
    @staticmethod
    def for_join(
        rows_r: int,
        rows_s: int,
        key_space: int,
        k: int,
        n_nodes: int,
    ) -> "TaskFeatures":
        """Features of a distributed (rank-)join task.

        ``expected_matches_per_key`` ~ rows/key_space drives the join
        fan-out, the quantity the MapReduce-vs-coordinator crossover
        depends on (Sec. IV P4).
        """
        return TaskFeatures(
            names=(
                "log_rows_r",
                "log_rows_s",
                "log_key_space",
                "log_k",
                "n_nodes",
                "match_rate",
            ),
            values=(
                float(np.log10(max(1, rows_r))),
                float(np.log10(max(1, rows_s))),
                float(np.log10(max(1, key_space))),
                float(np.log10(max(1, k))),
                float(n_nodes),
                float(rows_r / max(1, key_space)),
            ),
        )

    @staticmethod
    def for_knn(
        rows: int, dim: int, k: int, n_nodes: int, density_cv: float = 0.0
    ) -> "TaskFeatures":
        """Features of a kNN task; ``density_cv`` is the index histogram's
        coefficient of variation (skewed data favours index pruning)."""
        return TaskFeatures(
            names=("log_rows", "dim", "log_k", "n_nodes", "density_cv"),
            values=(
                float(np.log10(max(1, rows))),
                float(dim),
                float(np.log10(max(1, k))),
                float(n_nodes),
                float(density_cv),
            ),
        )

    @staticmethod
    def for_subspace_aggregate(
        rows: int,
        selectivity: float,
        dim: int,
        n_nodes: int,
        est_selectivity: Optional[float] = None,
        scan_fraction: Optional[float] = None,
    ) -> "TaskFeatures":
        """Features of a selection+aggregate task (fullscan vs index).

        ``est_selectivity`` and ``scan_fraction`` are the zone-map-derived
        estimates from :func:`synopsis_estimates`; they default to the
        measured selectivity and a full scan, so feature vectors keep one
        fixed shape whether or not synopses were consulted.
        """
        if est_selectivity is None:
            est_selectivity = selectivity
        if scan_fraction is None:
            scan_fraction = 1.0
        return TaskFeatures(
            names=(
                "log_rows",
                "log_selectivity",
                "dim",
                "n_nodes",
                "log_est_selectivity",
                "scan_fraction",
            ),
            values=(
                float(np.log10(max(1, rows))),
                float(np.log10(max(selectivity, 1e-12))),
                float(dim),
                float(n_nodes),
                float(np.log10(max(est_selectivity, 1e-12))),
                float(scan_fraction),
            ),
        )
