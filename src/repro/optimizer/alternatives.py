"""Execution alternatives as first-class, cost-measurable objects (O5).

"Identify and evaluate key alternative algorithms, methods, and models
for key analytics tasks."  An :class:`ExecutionAlternative` wraps one way
of running a task; an :class:`AlternativeSet` runs them all on the same
instance and reports each one's cost, producing the training data the
learned selector consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.accounting import CostReport
from repro.common.errors import OptimizationError
from repro.common.validation import require

# An alternative's runner returns (result, CostReport).
Runner = Callable[..., Tuple[Any, CostReport]]

METRICS = ("elapsed_sec", "node_sec", "bytes_scanned", "dollars")


def metric_of(report: CostReport, metric: str) -> float:
    """Read one optimization metric off a cost report."""
    require(metric in METRICS, f"unknown metric {metric!r}; choose {METRICS}")
    if metric == "dollars":
        return report.dollars()
    return float(getattr(report, metric))


@dataclass
class ExecutionAlternative:
    """One named way to execute a task."""

    name: str
    runner: Runner

    def run(self, *args, **kwargs) -> Tuple[Any, CostReport]:
        return self.runner(*args, **kwargs)


@dataclass
class AlternativeOutcome:
    """Result of trying one alternative on one task instance."""

    name: str
    result: Any
    report: CostReport

    def cost(self, metric: str) -> float:
        return metric_of(self.report, metric)


class AlternativeSet:
    """The candidate methods for a task family."""

    def __init__(self, alternatives: List[ExecutionAlternative]) -> None:
        require(len(alternatives) >= 2, "need at least two alternatives")
        names = [a.name for a in alternatives]
        require(len(set(names)) == len(names), f"duplicate names: {names}")
        self.alternatives = {a.name: a for a in alternatives}

    @property
    def names(self) -> List[str]:
        return list(self.alternatives)

    def run_all(self, *args, **kwargs) -> List[AlternativeOutcome]:
        """Execute every alternative on the same task instance."""
        outcomes = []
        for alternative in self.alternatives.values():
            result, report = alternative.run(*args, **kwargs)
            outcomes.append(
                AlternativeOutcome(alternative.name, result, report)
            )
        return outcomes

    def run_one(self, name: str, *args, **kwargs) -> AlternativeOutcome:
        if name not in self.alternatives:
            raise OptimizationError(
                f"unknown alternative {name!r}; have {self.names}"
            )
        result, report = self.alternatives[name].run(*args, **kwargs)
        return AlternativeOutcome(name, result, report)

    @staticmethod
    def best(outcomes: List[AlternativeOutcome], metric: str) -> AlternativeOutcome:
        require(len(outcomes) >= 1, "no outcomes to compare")
        return min(outcomes, key=lambda o: o.cost(metric))
