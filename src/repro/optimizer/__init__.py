"""On-the-fly optimized processing strategy selection (P4, RT3).

* :mod:`repro.optimizer.features` — numeric feature extraction for an
  analytics task (data sizes, selectivities, k, cluster shape).
* :mod:`repro.optimizer.alternatives` — execution alternatives as
  first-class objects that can be run and cost-measured (O5).
* :mod:`repro.optimizer.selector` — the learned optimizer (O6): logs
  (features, method, cost) triples from past executions and trains a
  decision tree that predicts the cheapest method for a new task.
* :mod:`repro.optimizer.model_selection` — query-driven regression model
  selection [48]: per data subspace, cross-validate candidate inference
  model families and adopt the best (RT3.3).
"""

from repro.optimizer.features import TaskFeatures, synopsis_estimates
from repro.optimizer.alternatives import ExecutionAlternative, AlternativeSet
from repro.optimizer.selector import ExecutionLog, LearnedSelector, CostModelSelector
from repro.optimizer.model_selection import (
    ModelSelector,
    select_family_cv,
    apply_per_quantum_selection,
)

__all__ = [
    "TaskFeatures",
    "synopsis_estimates",
    "ExecutionAlternative",
    "AlternativeSet",
    "ExecutionLog",
    "LearnedSelector",
    "CostModelSelector",
    "ModelSelector",
    "select_family_cv",
    "apply_per_quantum_selection",
]
