"""The learned method selector (G6/O6).

"Train models which learn from past task executions and build optimising
modules, which, on-the-fly, adopt the best execution method for the task
at hand."

:class:`ExecutionLog` accumulates (features, method, cost) observations —
typically produced by running an :class:`~repro.optimizer.alternatives.
AlternativeSet` exhaustively on a training workload.  :class:`
LearnedSelector` trains a CART classifier labelling each feature vector
with its cheapest method, then predicts methods for unseen tasks.
``regret`` quantifies how much the selector's choices cost over the
oracle, the metric reported in experiment E10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import NotTrainedError, OptimizationError
from repro.common.validation import require
from repro.ml.tree import DecisionTreeClassifier
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.optimizer.features import TaskFeatures


@dataclass
class LogEntry:
    """Costs of every tried method on one task instance."""

    features: TaskFeatures
    costs: Dict[str, float]

    @property
    def best_method(self) -> str:
        return min(self.costs, key=self.costs.get)

    def regret_of(self, method: str) -> float:
        """Relative extra cost of ``method`` over the instance's best."""
        best = self.costs[self.best_method]
        if best <= 0:
            return 0.0
        return self.costs[method] / best - 1.0


class ExecutionLog:
    """Training data for the learned selector."""

    def __init__(self) -> None:
        self.entries: List[LogEntry] = []

    def record(self, features: TaskFeatures, costs: Dict[str, float]) -> None:
        require(len(costs) >= 2, "need costs for at least two methods")
        self.entries.append(LogEntry(features, dict(costs)))

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def methods(self) -> List[str]:
        if not self.entries:
            return []
        return sorted(self.entries[0].costs)

    def design_matrix(self) -> Tuple[np.ndarray, np.ndarray]:
        """(features, best-method labels) over all entries."""
        require(len(self.entries) >= 1, "empty execution log")
        x = np.vstack([e.features.as_array() for e in self.entries])
        y = np.asarray([e.best_method for e in self.entries])
        return x, y


class CostModelSelector:
    """Per-method cost regressors; choose the predicted-cheapest method.

    The alternative learned-optimizer design RT3 suggests: instead of
    classifying "which method wins", *predict each method's cost* from
    the task features (a CART regressor per method over log-cost, since
    costs span orders of magnitude) and take the argmin.  Unlike the
    classifier, this also yields calibrated cost estimates a scheduler
    can budget with.
    """

    def __init__(
        self,
        max_depth: int = 5,
        min_samples_leaf: int = 2,
        observer: Optional[Observer] = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.observer = observer or NULL_OBSERVER
        self._models: Dict[str, object] = {}

    def attach_observer(self, observer: Observer) -> None:
        """Emit ``optimizer_choice`` events on ``observer``."""
        self.observer = observer

    def fit(self, log: ExecutionLog) -> "CostModelSelector":
        require(len(log) >= 4, f"need >= 4 logged executions, got {len(log)}")
        from repro.ml.tree import DecisionTreeRegressor

        x = np.vstack([e.features.as_array() for e in log.entries])
        self._models = {}
        for method in log.methods:
            y = np.log10(
                np.maximum(
                    1e-9, [e.costs[method] for e in log.entries]
                )
            )
            model = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
            model.fit(x, np.asarray(y))
            self._models[method] = model
        return self

    def predict_costs(self, features: TaskFeatures) -> Dict[str, float]:
        """Estimated cost (seconds) of every method on this task."""
        if not self._models:
            raise NotTrainedError("CostModelSelector.predict_costs before fit")
        x = features.as_array().reshape(1, -1)
        return {
            method: float(10 ** model.predict(x)[0])
            for method, model in self._models.items()
        }

    def choose(self, features: TaskFeatures) -> str:
        costs = self.predict_costs(features)
        chosen = min(costs, key=costs.get)
        if self.observer.enabled:
            self.observer.inc("sea_optimizer_choices_total", method=chosen)
            self.observer.event(
                "optimizer_choice",
                selector="cost_model",
                chosen=chosen,
                predicted_costs={k: float(v) for k, v in costs.items()},
            )
        return chosen

    def evaluate(self, log: ExecutionLog) -> Dict[str, float]:
        """Accuracy/regret on a held-out log (same contract as
        :meth:`LearnedSelector.evaluate`), plus cost-prediction error."""
        require(len(log) >= 1, "empty evaluation log")
        correct = 0
        regrets: List[float] = []
        prediction_errors: List[float] = []
        for entry in log.entries:
            chosen = self.choose(entry.features)
            if chosen == entry.best_method:
                correct += 1
            regrets.append(entry.regret_of(chosen))
            predicted = self.predict_costs(entry.features)
            if self.observer.enabled:
                self.observer.event(
                    "optimizer_outcome",
                    selector="cost_model",
                    chosen=chosen,
                    best=entry.best_method,
                    predicted_cost=float(predicted[chosen]),
                    actual_cost=float(entry.costs[chosen]),
                    regret=float(entry.regret_of(chosen)),
                )
            for method, actual in entry.costs.items():
                prediction_errors.append(
                    abs(np.log10(max(1e-9, predicted[method]))
                        - np.log10(max(1e-9, actual)))
                )
        return {
            "accuracy": correct / len(log.entries),
            "mean_regret": float(np.mean(regrets)),
            "mean_log10_cost_error": float(np.mean(prediction_errors)),
        }


class LearnedSelector:
    """CART classifier from task features to the cheapest method."""

    def __init__(
        self,
        max_depth: int = 5,
        min_samples_leaf: int = 2,
        observer: Optional[Observer] = None,
    ) -> None:
        self._tree = DecisionTreeClassifier(
            max_depth=max_depth, min_samples_leaf=min_samples_leaf
        )
        self._trained = False
        self._default: Optional[str] = None
        self.observer = observer or NULL_OBSERVER

    def attach_observer(self, observer: Observer) -> None:
        """Emit ``optimizer_choice`` events on ``observer``."""
        self.observer = observer

    def fit(self, log: ExecutionLog) -> "LearnedSelector":
        require(len(log) >= 4, f"need >= 4 logged executions, got {len(log)}")
        x, y = log.design_matrix()
        self._tree.fit(x, y)
        # Majority method as a fallback default.
        labels, counts = np.unique(y, return_counts=True)
        self._default = str(labels[counts.argmax()])
        self._trained = True
        return self

    def choose(self, features: TaskFeatures) -> str:
        """Pick the method for a new task instance."""
        if not self._trained:
            raise NotTrainedError("LearnedSelector.choose called before fit")
        chosen = str(self._tree.predict(features.as_array().reshape(1, -1))[0])
        if self.observer.enabled:
            self.observer.inc("sea_optimizer_choices_total", method=chosen)
            self.observer.event(
                "optimizer_choice", selector="classifier", chosen=chosen
            )
        return chosen

    def evaluate(
        self, log: ExecutionLog
    ) -> Dict[str, float]:
        """Accuracy and regret of the selector on a (held-out) log.

        Also reports the regret of each fixed single-method policy, so
        experiments can show the learned selector beating "always X".
        """
        if not self._trained:
            raise NotTrainedError("LearnedSelector.evaluate called before fit")
        require(len(log) >= 1, "empty evaluation log")
        correct = 0
        regrets: List[float] = []
        fixed: Dict[str, List[float]] = {m: [] for m in log.methods}
        for entry in log.entries:
            chosen = self.choose(entry.features)
            if chosen not in entry.costs:
                raise OptimizationError(
                    f"selector chose unknown method {chosen!r}"
                )
            if chosen == entry.best_method:
                correct += 1
            regrets.append(entry.regret_of(chosen))
            for method in fixed:
                fixed[method].append(entry.regret_of(method))
        out = {
            "accuracy": correct / len(log.entries),
            "mean_regret": float(np.mean(regrets)),
        }
        for method, values in fixed.items():
            out[f"regret_always_{method}"] = float(np.mean(values))
        return out
