"""Picklable task specs for the process-parallel scan executor.

The thread executor (PR 5) ships closures to worker threads — cheap,
because threads share the interpreter.  A process pool cannot: closures
over engine state (meters, stores, fault injectors) do not pickle, and
shipping them would also violate the "workers compute, the caller
charges" contract by smuggling stateful objects across the fork.

A :class:`TaskSpec` is the portable alternative: a small picklable
object capturing *only* the pure-compute recipe of a morsel — query
signature, aggregate, pruning classification, column union — with the
partition payload itself resolved worker-side from shared memory.  The
same spec instance doubles as the inline callable on the serial and
thread paths, so there is exactly one code object per kernel and no
drift between executors.

Concrete specs live next to the engines that own their kernels (see
``repro.engine.specs``); this module only defines the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple


class TaskSpec:
    """Marker base class for picklable morsel task specs.

    Subclasses implement ``__call__(data)`` as a *pure function* of the
    partition payload: no charging, no RNG, no engine state.  Two class
    attributes shape how the process executor feeds them:

    ``payload_kind``
        ``"data"`` (default): the worker passes the rebuilt ``Table``
        — or, when the morsel names a column union and the partition
        was published columnar, the projected ``ColumnarPartition``.
        ``"partition"``: the worker passes a partition-like wrapper
        exposing ``take`` (used by row materialisation).
    """

    payload_kind = "data"


@dataclass(frozen=True)
class BoundSpec(TaskSpec):
    """A spec with extra positional arguments bound for the worker.

    ``BoundSpec(spec, (active,))`` calls ``spec(data, active)`` — used
    by the shared batch pass to ship the per-partition active-job list
    alongside the batch spec without a closure.
    """

    spec: TaskSpec
    args: Tuple[Any, ...] = ()

    @property
    def payload_kind(self) -> str:  # type: ignore[override]
        return getattr(self.spec, "payload_kind", "data")

    def __call__(self, data: Any) -> Any:
        return self.spec(data, *self.args)
