"""Multicore parallel scan execution (morsel queue + deterministic merge).

See :mod:`repro.parallel.executor` for the thread-safety contract and
the byte-identity invariants (DESIGN §9), and
:mod:`repro.parallel.procpool` for the process pool over shared-memory
partition views that breaks the GIL ceiling (DESIGN §12).
"""

from repro.parallel.executor import Morsel, ScanExecutor, partition_morsels
from repro.parallel.procpool import (
    ProcessScanExecutor,
    SharedPartitionStore,
    WorkerPartition,
)
from repro.parallel.spec import BoundSpec, TaskSpec

__all__ = [
    "Morsel",
    "ScanExecutor",
    "partition_morsels",
    "ProcessScanExecutor",
    "SharedPartitionStore",
    "WorkerPartition",
    "BoundSpec",
    "TaskSpec",
]
