"""Multicore parallel scan execution (morsel queue + deterministic merge).

See :mod:`repro.parallel.executor` for the thread-safety contract and
the byte-identity invariants (DESIGN §9).
"""

from repro.parallel.executor import Morsel, ScanExecutor, partition_morsels

__all__ = ["Morsel", "ScanExecutor", "partition_morsels"]
