"""Process-parallel scan execution over shared-memory partition views.

The thread executor (:mod:`repro.parallel.executor`) is GIL-bound for
the pure-python slices of partition kernels; on a multi-core host a
scan-heavy workload tops out near 1× regardless of worker count.  This
module breaks that ceiling with an *opt-in* process pool behind the
exact same :class:`ScanExecutor` interface:

* :class:`SharedPartitionStore` publishes each partition's payload —
  the row arrays and, on columnar layouts, the encoded
  ``EncodedColumn`` buffers — **once** into a
  :mod:`multiprocessing.shared_memory` segment.  Workers attach
  zero-copy read-only numpy views keyed by ``(table, partition,
  generation)``; ``append_rows``/``delete_rows`` bump the partition
  generation, so only mutated partitions are lazily republished.
* Morsel tasks ship as picklable :class:`~repro.parallel.spec.TaskSpec`
  recipes (query signature, aggregate, pruning classification, column
  union) instead of closures.  Workers run only pure compute and return
  partials; every CostMeter charge, fault-RNG draw, trace span, and
  flight-recorder fold stays on the caller ("workers compute, the
  caller charges"), so answers and all pre-existing observability are
  byte-identical to the serial and thread paths at any worker count.
* Pool lifecycle lives here: warm fork-context spawn (spawn fallback
  where fork is unavailable), idle reaping after
  ``idle_ttl`` seconds, and crash recovery — a dead worker surfaces as
  a recorded :class:`~repro.common.errors.WorkerCrashError`, the batch
  is recomputed inline from the in-memory payloads, and the pool is
  rebuilt for the next batch.

Morsels without a spec (ad-hoc lambdas, fault-mode fallbacks) are
computed inline on the caller: correct, just not process-parallel.
"""

from __future__ import annotations

import threading
import time
import weakref
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_all_start_methods, get_context
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.columnar import (
    BIT_PACKED,
    DICTIONARY,
    RAW,
    RUN_LENGTH,
    BitPackedColumn,
    ColumnarPartition,
    DictionaryColumn,
    RawColumn,
    RunLengthColumn,
)
from repro.common.errors import WorkerCrashError
from repro.data.tabular import Table
from repro.obs.observer import Observer
from repro.parallel.executor import Morsel, ScanExecutor

__all__ = [
    "ProcessScanExecutor",
    "SharedPartitionStore",
    "WorkerPartition",
]

#: Buffer alignment inside a segment; generous so any dtype's views are
#: aligned and vector loads never straddle a cache line for no reason.
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


# ---------------------------------------------------------------------------
# Parent side: publishing partitions into shared memory
# ---------------------------------------------------------------------------
@dataclass
class _Published:
    """Parent-side record of one partition's live shared segment."""

    shm: SharedMemory
    header: Dict[str, Any]
    generation: int
    nbytes: int


class SharedPartitionStore:
    """Publishes partition payloads into shared memory, once per generation.

    One segment per ``(table, partition index)``; the picklable *header*
    catalogs every buffer inside it (offset, dtype, shape) plus the
    columnar encoding parameters, so a worker can rebuild zero-copy
    ``Table``/:class:`ColumnarPartition` views without touching the
    parent.  ``ensure`` is idempotent per generation: a mutated
    partition (its ``generation`` bumped by ``append_rows``/
    ``delete_rows``) is republished lazily on its next scan, and only
    that partition — ``republish_bytes`` is bounded by the mutated
    partition's footprint, which E22's microbenchmark asserts.
    """

    def __init__(self) -> None:
        self._segments: Dict[Tuple[str, int], _Published] = {}
        self._lock = threading.Lock()
        #: Cumulative bytes of first-time publishes / generation republishes.
        self.publish_bytes = 0
        self.republish_bytes = 0

    def __len__(self) -> int:
        return len(self._segments)

    def segment_names(self) -> List[str]:
        return [entry.shm.name for entry in self._segments.values()]

    def ensure(self, partition) -> Dict[str, Any]:
        """Header of ``partition``'s live segment, publishing if needed."""
        key = (partition.table_name, partition.index)
        generation = int(getattr(partition, "generation", 0))
        with self._lock:
            entry = self._segments.get(key)
            if entry is not None and entry.generation == generation:
                return entry.header
            republish = entry is not None
            if entry is not None:
                self._release(entry)
            entry = self._publish(partition, generation)
            self._segments[key] = entry
            if republish:
                self.republish_bytes += entry.nbytes
            else:
                self.publish_bytes += entry.nbytes
            return entry.header

    def close(self) -> None:
        """Unlink every live segment (idempotent)."""
        with self._lock:
            segments, self._segments = self._segments, {}
        for entry in segments.values():
            self._release(entry)

    # Internals -------------------------------------------------------------
    @staticmethod
    def _release(entry: _Published) -> None:
        try:
            entry.shm.close()
        except BufferError:
            pass
        try:
            entry.shm.unlink()
        except FileNotFoundError:
            pass

    def _publish(self, partition, generation: int) -> _Published:
        data = partition.data
        columnar = getattr(partition, "columnar", None)
        placements: List[Tuple[np.ndarray, int]] = []
        cursor = 0

        def reserve(arr: np.ndarray) -> Tuple[int, str, Tuple[int, ...]]:
            nonlocal cursor
            arr = np.ascontiguousarray(arr)
            offset = _aligned(cursor)
            cursor = offset + arr.nbytes
            placements.append((arr, offset))
            return offset, arr.dtype.str, tuple(arr.shape)

        row_columns = []
        for name in data.column_names:
            offset, dtype, shape = reserve(data.column(name))
            row_columns.append((name, offset, dtype, shape))

        columnar_meta: Optional[Dict[str, Any]] = None
        if columnar is not None:
            encoded_columns = []
            for name, enc in columnar.columns.items():
                extra: Dict[str, Any] = {}
                if enc.kind == RAW:
                    arrays = [reserve(enc.values)]
                elif enc.kind == DICTIONARY:
                    arrays = [reserve(enc.values), reserve(enc.codes)]
                elif enc.kind == RUN_LENGTH:
                    arrays = [reserve(enc.run_values), reserve(enc.run_lengths)]
                elif enc.kind == BIT_PACKED:
                    arrays = [reserve(enc.packed)]
                    extra = {
                        "n_rows": enc.n_rows,
                        "width": enc.width,
                        "offset": enc.offset,
                        "dtype": enc.dtype.str,
                    }
                else:  # pragma: no cover - new encodings must be added here
                    raise TypeError(f"unshippable encoding {enc.kind!r}")
                encoded_columns.append((name, enc.kind, arrays, extra))
            columnar_meta = {
                "name": columnar.name,
                "value_bytes": columnar.value_bytes,
                "n_rows": columnar.n_rows,
                "columns": encoded_columns,
            }

        total = max(cursor, 1)
        shm = SharedMemory(create=True, size=total)
        for arr, offset in placements:
            if arr.nbytes:
                dest = np.ndarray(
                    arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offset
                )
                np.copyto(dest, arr, casting="no")

        header = {
            "segment": shm.name,
            "table": partition.table_name,
            "index": int(partition.index),
            "generation": generation,
            "data_name": data.name,
            "value_bytes": int(data.value_bytes),
            "row_columns": row_columns,
            "columnar": columnar_meta,
        }
        return _Published(
            shm=shm, header=header, generation=generation, nbytes=total
        )


# ---------------------------------------------------------------------------
# Worker side: attaching and rebuilding zero-copy views
# ---------------------------------------------------------------------------
class WorkerPartition:
    """Worker-side stand-in for ``TablePartition`` (take semantics only)."""

    __slots__ = ("data", "columnar")

    def __init__(self, data: Table, columnar: Optional[ColumnarPartition]) -> None:
        self.data = data
        self.columnar = columnar

    def take(self, indices) -> Table:
        if self.columnar is not None:
            return self.columnar.take(indices)
        return self.data.take(indices)


#: Process-global caches: attached segments by name, rebuilt views keyed
#: (table, partition index) with their generation + segment for staleness.
_ATTACHED: Dict[str, SharedMemory] = {}
_REBUILT: Dict[Tuple[str, int], Tuple[int, str, Table, Optional[ColumnarPartition]]] = {}


def _shm_view(shm: SharedMemory, offset: int, dtype: str, shape) -> np.ndarray:
    view = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
    view.flags.writeable = False
    return view


def _attach_segment(name: str) -> SharedMemory:
    shm = _ATTACHED.get(name)
    if shm is None:
        shm = SharedMemory(name=name)
        # SharedMemory.__init__ registers even pure *attachments* with the
        # resource tracker on 3.11 (track=False is 3.13+).  Pool workers
        # share the parent's tracker process, where the segment is already
        # registered, so the extra register is a set no-op — do NOT
        # unregister here or the parent's entry vanishes and its eventual
        # unlink() trips a KeyError inside the tracker.
        _ATTACHED[name] = shm
    return shm


def _drop_stale(key: Tuple[str, int], segment: str) -> None:
    _REBUILT.pop(key, None)
    shm = _ATTACHED.pop(segment, None)
    if shm is not None:
        try:
            shm.close()
        except BufferError:
            # Some view still references the buffer; the mapping is
            # reclaimed at worker exit instead.
            pass


def _rebuild_columnar(shm: SharedMemory, meta: Dict[str, Any]) -> ColumnarPartition:
    columns: Dict[str, Any] = {}
    value_bytes = meta["value_bytes"]
    for name, kind, arrays, extra in meta["columns"]:
        views = [_shm_view(shm, off, dtype, shape) for off, dtype, shape in arrays]
        if kind == RAW:
            enc = RawColumn(views[0], value_bytes)
        elif kind == DICTIONARY:
            enc = DictionaryColumn(views[0], views[1], value_bytes)
        elif kind == RUN_LENGTH:
            enc = RunLengthColumn(views[0], views[1], value_bytes)
        elif kind == BIT_PACKED:
            enc = BitPackedColumn(
                views[0],
                extra["n_rows"],
                extra["width"],
                extra["offset"],
                np.dtype(extra["dtype"]),
            )
        else:  # pragma: no cover - kinds are closed over at publish time
            raise TypeError(f"unknown encoding kind {kind!r}")
        columns[name] = enc
    return ColumnarPartition(
        name=meta["name"],
        value_bytes=value_bytes,
        n_rows=meta["n_rows"],
        columns=columns,
    )


def _attach_partition(
    header: Dict[str, Any]
) -> Tuple[Table, Optional[ColumnarPartition]]:
    key = (header["table"], header["index"])
    cached = _REBUILT.get(key)
    if cached is not None:
        generation, segment, table, columnar = cached
        if generation == header["generation"] and segment == header["segment"]:
            return table, columnar
        _drop_stale(key, segment)
    shm = _attach_segment(header["segment"])
    # from_arrays marks arrays read-only in place, so views must be fresh
    # per rebuild — _shm_view already hands over new objects each call.
    columns = {
        name: _shm_view(shm, offset, dtype, shape)
        for name, offset, dtype, shape in header["row_columns"]
    }
    table = Table.from_arrays(
        columns, name=header["data_name"], value_bytes=header["value_bytes"]
    )
    columnar = (
        _rebuild_columnar(shm, header["columnar"])
        if header["columnar"] is not None
        else None
    )
    _REBUILT[key] = (header["generation"], header["segment"], table, columnar)
    return table, columnar


def _run_task(header: Dict[str, Any], columns, spec) -> Any:
    """Worker entrypoint: rebuild the payload, run the pure-compute spec."""
    table, columnar = _attach_partition(header)
    if getattr(spec, "payload_kind", "data") == "partition":
        data: Any = WorkerPartition(table, columnar)
    elif columns is not None and columnar is not None:
        data = columnar.project(columns)
    else:
        data = table
    return spec(data)


def _warm_noop() -> None:
    return None


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------
class _Resources:
    """Mutable holder the finalizer can tear down without resurrecting
    the executor: the live process pool, reaper timer, and shared store."""

    __slots__ = ("pool", "timer", "store")

    def __init__(self, store: SharedPartitionStore) -> None:
        self.pool: Optional[ProcessPoolExecutor] = None
        self.timer: Optional[threading.Timer] = None
        self.store = store


def _reap_weak(ref: "weakref.ref") -> None:
    """Timer target holding only a weakref, so a pending reaper never
    keeps a dropped executor (and its shared segments) alive."""
    executor = ref()
    if executor is not None:
        executor._reap()


def _release_resources(resources: _Resources, wait: bool = False) -> None:
    """Tear down pool + timer + shared segments (idempotent, finalizer-safe)."""
    timer, resources.timer = resources.timer, None
    if timer is not None:
        timer.cancel()
    pool, resources.pool = resources.pool, None
    if pool is not None:
        try:
            pool.shutdown(wait=wait, cancel_futures=True)
        except Exception:
            pass
    resources.store.close()


class ProcessScanExecutor(ScanExecutor):
    """Morsel executor over a process pool + shared-memory partitions.

    Drop-in for :class:`ScanExecutor` (same ``run``/``close``/observer
    surface, selected via ``SEASession(executor="process")``):

    * spec-carrying morsels ship as ``(header, columns, spec)`` tasks —
      the worker attaches the partition's shared segment and runs pure
      compute; results merge in input order exactly like the thread pool;
    * morsels without a spec are computed inline on the caller from
      their in-memory payload (correct, just not parallel across cores);
    * a crashed worker is recorded as :class:`WorkerCrashError` on
      :attr:`crashes`, the whole batch is recomputed inline, and the
      pool is rebuilt — callers never see a difference in results;
    * the pool is reaped after :attr:`idle_ttl` idle seconds and lazily
      re-spawned; dropping the executor (or its session) without
      ``close()`` triggers a finalizer that shuts the pool down and
      unlinks every shared segment.
    """

    name = "process"

    def __init__(
        self,
        workers: int = 1,
        observer: Optional[Observer] = None,
        start_method: Optional[str] = None,
        idle_ttl: float = 30.0,
    ) -> None:
        super().__init__(workers, observer)
        if start_method is None:
            # Fork keeps spawn-per-worker cost near zero and inherits the
            # imported modules; fall back to the platform default where
            # fork does not exist (Windows / some macOS configs).
            start_method = (
                "fork" if "fork" in get_all_start_methods() else None
            )
        self._start_method = start_method
        self.idle_ttl = float(idle_ttl)
        self.store = SharedPartitionStore()
        #: Typed records of worker crashes (newest last).
        self.crashes: List[WorkerCrashError] = []
        self._resources = _Resources(self.store)
        self._finalizer = weakref.finalize(
            self, _release_resources, self._resources
        )
        self._last_used = time.monotonic()

    # Pool lifecycle --------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:  # type: ignore[override]
        with self._lock:
            if self._resources.pool is None:
                context = (
                    get_context(self._start_method)
                    if self._start_method is not None
                    else None
                )
                self._resources.pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context
                )
            return self._resources.pool

    def warm(self) -> None:
        """Spin up every worker process ahead of the first real batch."""
        pool = self._ensure_pool()
        futures = [pool.submit(_warm_noop) for _ in range(self.workers)]
        for future in futures:
            future.result()
        self._touch()

    def _touch(self) -> None:
        """Record pool use and (re)arm the idle reaper."""
        self._last_used = time.monotonic()
        with self._lock:
            if self._resources.timer is None and self._resources.pool is not None:
                self._arm_reaper()

    def _arm_reaper(self) -> None:
        # Caller holds self._lock.
        timer = threading.Timer(self.idle_ttl, _reap_weak, (weakref.ref(self),))
        timer.daemon = True
        self._resources.timer = timer
        timer.start()

    def _reap(self) -> None:
        with self._lock:
            self._resources.timer = None
            idle = time.monotonic() - self._last_used
            if self._resources.pool is None:
                return
            if idle + 1e-9 < self.idle_ttl:
                self._arm_reaper()
                return
            pool, self._resources.pool = self._resources.pool, None
        pool.shutdown(wait=False, cancel_futures=True)

    def _dispose_pool(self) -> None:
        with self._lock:
            pool, self._resources.pool = self._resources.pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass

    def close(self) -> None:
        """Shut the pool down and unlink all shared segments (idempotent)."""
        _release_resources(self._resources, wait=True)

    def __repr__(self) -> str:
        return f"ProcessScanExecutor(workers={self.workers})"

    # Batch execution -------------------------------------------------------
    def run(
        self,
        morsels: Sequence[Morsel],
        fn,
        label: str = "scan",
        observer: Optional[Observer] = None,
    ) -> List[Any]:
        if not morsels:
            return []
        if not self.parallel:
            return [fn(m.payload) for m in morsels]
        obs = observer if observer is not None else self.observer
        started = time.perf_counter()
        publish_before = self.store.publish_bytes
        republish_before = self.store.republish_bytes
        shippable = all(
            m.spec is not None and m.partition is not None for m in morsels
        )
        if shippable:
            results = self._run_shipped(morsels, fn, label)
        else:
            # No portable spec for this batch (ad-hoc callable or
            # fault-mode fallback): compute inline on the caller —
            # bitwise the serial path.
            results = [fn(m.payload) for m in morsels]
        if obs.enabled:
            self._note_batch(obs, morsels, label, time.perf_counter() - started)
            publish_delta = self.store.publish_bytes - publish_before
            republish_delta = self.store.republish_bytes - republish_before
            if publish_delta:
                obs.inc(
                    "parallel_shm_publish_bytes_total",
                    publish_delta,
                    label=label,
                    executor=self.name,
                )
            if republish_delta:
                obs.inc(
                    "parallel_shm_republish_bytes_total",
                    republish_delta,
                    label=label,
                    executor=self.name,
                )
        return results

    def _run_shipped(
        self, morsels: Sequence[Morsel], fn, label: str
    ) -> List[Any]:
        try:
            headers = [self.store.ensure(m.partition) for m in morsels]
            pool = self._ensure_pool()
            order = sorted(
                range(len(morsels)),
                key=lambda i: (-morsels[i].size_bytes, morsels[i].index),
            )
            futures: List[Optional[Future]] = [None] * len(morsels)
            for i in order:
                futures[i] = pool.submit(
                    _run_task, headers[i], morsels[i].columns, morsels[i].spec
                )
            results: List[Any] = [None] * len(morsels)
            error: Optional[BaseException] = None
            for i, future in enumerate(futures):
                try:
                    results[i] = future.result()
                except BrokenProcessPool:
                    raise
                except BaseException as exc:
                    if error is None:
                        error = exc
            if error is not None:
                raise error
        except BrokenProcessPool as exc:
            return self._recover_from_crash(morsels, fn, label, exc)
        self._touch()
        return results

    def _recover_from_crash(
        self, morsels: Sequence[Morsel], fn, label: str, exc: BaseException
    ) -> List[Any]:
        crash = WorkerCrashError(label=label, detail=str(exc))
        self.crashes.append(crash)
        self._dispose_pool()
        obs = self.observer
        if obs.enabled:
            obs.inc("parallel_worker_crashes_total", label=label, executor=self.name)
            obs.event("worker_crash", label=label, detail=str(crash))
        # Serial fallback: the in-memory payloads are still right here —
        # recompute the whole batch inline, bitwise the serial path.
        return [fn(m.payload) for m in morsels]
