"""Morsel-style multicore scan execution with deterministic merges.

The simulator's storage layer is numpy-columnar, and the kernels the
engines run per partition — selection masks, aggregate partials, shared
``batch_masks`` passes, row ``take``s — release the GIL for the bulk of
their work.  :class:`ScanExecutor` exploits that: partition-level work
units (*morsels*) are fanned out across a
:class:`~concurrent.futures.ThreadPoolExecutor` so a scan-heavy job uses
every core the host offers.

Determinism is the design's first invariant, not an afterthought:

* **Workers compute, the caller charges.**  A morsel's function must be
  *pure compute* over immutable inputs (partition data never mutates
  after ingest).  Everything order-sensitive — cost-meter charges,
  served-bytes load accounting, fault-injector RNG draws, failover
  retries, trace spans — stays on the calling thread, replayed in
  partition-index order exactly as the serial path would.  Answers,
  cost-meter byte totals, and every pre-existing observability counter
  are therefore *byte-identical* at any worker count.
* **Largest-first morsel queue.**  Morsels are submitted to the pool in
  descending ``size_bytes`` order (ties broken by index), the classic
  LPT heuristic: big partitions start first so no straggler finishes
  last on an otherwise idle pool.
* **Deterministic merge.**  Results land in a slot array indexed by
  submission position and are returned in the *input* order, regardless
  of completion order.  Exceptions are re-raised in input order too, so
  a failing batch fails the same way every run.
* **``workers=1`` is the serial path.**  No pool is created, no thread
  is spawned, no ``parallel_*`` metric is emitted: a ``workers=1``
  executor is observationally identical to having no executor at all.

With ``workers>1`` each batch emits ``parallel_*`` metrics and one
``parallel:<label>`` trace span (category ``parallel``, measured in
*host* seconds — the one place repro.obs reports real wall-clock rather
than simulated time).  These are the only observable artifacts that vary
with the worker count.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.common.validation import require
from repro.obs.observer import NULL_OBSERVER, Observer


@dataclass(frozen=True)
class Morsel:
    """One unit of partition-level work.

    ``index`` is the merge key (partition position for engine scans);
    ``payload`` is what the batch function receives; ``size_bytes``
    orders the morsel queue (largest first).

    The last three fields exist for the process executor, which cannot
    ship in-memory payloads: ``spec`` is a picklable
    :class:`~repro.parallel.spec.TaskSpec` equivalent to the batch
    function, ``partition`` the source :class:`TablePartition` whose
    data workers re-attach from shared memory, and ``columns`` the
    column union applied to the payload (None = unprojected).  Thread
    and serial paths ignore all three and use ``payload`` directly.
    """

    index: int
    payload: Any
    size_bytes: int = 0
    spec: Any = None
    partition: Any = None
    columns: Optional[tuple] = None


class ScanExecutor:
    """A reusable worker pool for partition-parallel scan compute.

    One executor is shared by every engine of a session; its pool is
    created lazily on the first parallel batch and reused until
    :meth:`close`.  The executor is itself thread-safe, but the batch
    functions it runs must be pure compute over immutable inputs — see
    the module docstring for the full thread-safety contract.
    """

    #: Value of the ``executor`` label on ``parallel_*`` metrics/spans.
    name = "thread"

    def __init__(
        self, workers: int = 1, observer: Optional[Observer] = None
    ) -> None:
        require(int(workers) >= 1, f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.observer = observer or NULL_OBSERVER
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    @property
    def parallel(self) -> bool:
        """True iff this executor actually fans work out to a pool."""
        return self.workers > 1

    def attach_observer(self, observer: Observer) -> None:
        """Emit ``parallel_*`` metrics/spans for later batches on ``observer``."""
        self.observer = observer

    # Batch execution -------------------------------------------------------
    def run(
        self,
        morsels: Sequence[Morsel],
        fn: Callable[[Any], Any],
        label: str = "scan",
        observer: Optional[Observer] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every morsel payload; results in input order.

        Serial executors (``workers=1``) run the comprehension inline —
        bit-for-bit the loop the engines used to own.  Parallel executors
        enqueue largest-first, merge by slot, and re-raise the first
        failure *in input order* (not completion order).
        """
        if not morsels:
            return []
        if not self.parallel:
            return [fn(m.payload) for m in morsels]
        obs = observer if observer is not None else self.observer
        started = time.perf_counter()
        pool = self._ensure_pool()
        # Morsel queue: largest payload first (LPT), index breaks ties so
        # the submission order is deterministic for equal sizes.
        order = sorted(
            range(len(morsels)),
            key=lambda i: (-morsels[i].size_bytes, morsels[i].index),
        )
        futures: List[Optional[Future]] = [None] * len(morsels)
        for i in order:
            futures[i] = pool.submit(fn, morsels[i].payload)
        results: List[Any] = [None] * len(morsels)
        error: Optional[BaseException] = None
        for i, future in enumerate(futures):
            try:
                results[i] = future.result()
            except BaseException as exc:  # re-raised after draining the batch
                if error is None:
                    error = exc
        if obs.enabled:
            self._note_batch(obs, morsels, label, time.perf_counter() - started)
        if error is not None:
            raise error
        return results

    # Pool lifecycle --------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="sea-scan"
                )
            return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent); a later batch re-creates it."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ScanExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return f"ScanExecutor(workers={self.workers})"

    # Observability ---------------------------------------------------------
    def _note_batch(
        self,
        obs: Observer,
        morsels: Sequence[Morsel],
        label: str,
        host_seconds: float,
    ) -> None:
        obs.inc("parallel_batches_total", label=label, executor=self.name)
        obs.inc("parallel_morsels_total", len(morsels), label=label, executor=self.name)
        total_bytes = sum(m.size_bytes for m in morsels)
        if total_bytes:
            obs.inc("parallel_bytes_total", total_bytes, label=label, executor=self.name)
        obs.set_gauge("parallel_workers", self.workers)
        obs.observe("parallel_batch_host_seconds", host_seconds, label=label)
        obs.record_span(
            f"parallel:{label}",
            obs.now,
            host_seconds,
            category="parallel",
            track="parallel-pool",
            morsels=len(morsels),
            workers=self.workers,
            executor=self.name,
            bytes=total_bytes,
        )


def partition_morsels(
    partitions, should_scan=None, columns=None, spec=None
) -> List[Morsel]:
    """Morsels over a stored table's partitions (payload = the data).

    ``should_scan(index)`` filters (default: every partition); sizes come
    from the partitions' serialized bytes so the morsel queue starts the
    heaviest scans first.  With ``columns``, columnar partitions carry a
    column-pruned :class:`ColumnarPartition` payload sized by its encoded
    bytes (the late-materialization fast path); row-major partitions fall
    back to the full row payload.  ``spec`` (a picklable
    :class:`~repro.parallel.spec.TaskSpec`) rides along so the process
    executor can ship the kernel without the in-memory payload.
    """
    morsels: List[Morsel] = []
    for index, partition in enumerate(partitions):
        if should_scan is not None and not should_scan(index):
            continue
        # Dirty partitions (staged delta writes) compute over the
        # base+delta view and never ship spec/partition: the process
        # pool's shared-memory segments hold only published base
        # generations, so out-of-process compute would miss the delta.
        dirty = bool(getattr(partition, "dirty", False))
        columnar = getattr(partition, "columnar", None)
        if columns is not None and columnar is not None and not dirty:
            payload = columnar.project(columns)
            size = int(payload.encoded_bytes)
            shipped_columns = tuple(columns)
        else:
            payload = partition.read_view() if dirty else partition.data
            size = int(partition.n_bytes)
            shipped_columns = None
        morsels.append(
            Morsel(
                index=index,
                payload=payload,
                size_bytes=size,
                spec=None if dirty else spec,
                partition=None if dirty else partition,
                columns=shipped_columns,
            )
        )
    return morsels
