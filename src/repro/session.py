"""A high-level session facade: the whole SEA system behind three calls.

For downstream users who want the paper's behaviour without wiring the
subsystems by hand::

    from repro.session import SEASession

    session = SEASession(n_nodes=8)
    session.load_table(my_table)              # or load_csv("data.csv")
    answer = session.sql("SELECT COUNT(*) FROM data "
                         "WHERE x0 BETWEEN 10 AND 20 AND x1 BETWEEN 5 AND 9")
    answer.value        # the analytical answer
    answer.mode         # "train" | "predicted" | "fallback"
    answer.explanation  # lazily built piecewise-linear explanation

The session owns a simulated cluster, a store, the exact engine and one
SEA agent; it exposes SQL in, answers out, with per-query provenance and
cumulative savings statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.exact import ExactEngine
from repro.cluster.storage import DistributedStore
from repro.cluster.topology import ClusterTopology
from repro.common.accounting import CostReport
from repro.common.errors import ConfigurationError
from repro.common.validation import require
from repro.core.agent import AgentConfig, SEAAgent, ServedQuery
from repro.core.persistence import load_agent_models, save_agent_models
from repro.data.tabular import Table
from repro.explain.explanations import Explanation, ExplanationBuilder
from repro.obs.observer import Observer, StackObserver
from repro.parallel import ScanExecutor
from repro.queries.query import AnalyticsQuery
from repro.queries.sql import parse_query


@dataclass
class SessionAnswer:
    """What the analyst gets back for one SQL statement."""

    query: AnalyticsQuery
    value: object
    mode: str
    cost: CostReport
    _session: Optional["SEASession"] = None

    @property
    def explanation(self) -> Explanation:
        """A piecewise-linear explanation of answer vs query extent.

        Built from the agent's models when they cover the query (zero
        data access), from the exact engine otherwise.
        """
        if self._session is None:
            raise ConfigurationError(
                "this SessionAnswer is detached from its SEASession "
                "(e.g. it was unpickled); call session.explain(answer.query) "
                "on a live session instead"
            )
        return self._session.explain(self.query)

    def __repr__(self) -> str:
        return (
            f"SessionAnswer(value={self.value!r}, mode={self.mode!r}, "
            f"elapsed={self.cost.elapsed_sec:.4f}s)"
        )


class SEASession:
    """One analyst-facing session over a simulated SEA deployment."""

    def __init__(
        self,
        n_nodes: int = 8,
        replication: int = 1,
        config: Optional[AgentConfig] = None,
        partitions_per_node: int = 2,
        observer: Optional[Observer] = None,
        workers: int = 1,
    ) -> None:
        """``workers`` sizes the session's morsel pool (DESIGN §9):
        ``workers=1`` (the default) is the serial path; higher counts fan
        partition-level compute across real host threads while every
        answer, cost report and serving statistic stays byte-identical.
        """
        require(n_nodes >= 1, "n_nodes must be >= 1")
        self.topology = ClusterTopology.single_datacenter(n_nodes)
        self.store = DistributedStore(self.topology, replication=replication)
        self.executor = ScanExecutor(workers)
        self.engine = ExactEngine(self.store, executor=self.executor)
        self.agent = SEAAgent(self.engine, config or AgentConfig())
        self.partitions_per_node = partitions_per_node
        self._explainer = ExplanationBuilder(n_probes=13, span=(0.6, 1.4))
        self.observer: Optional[Observer] = None
        if observer is not None:
            self.attach_observer(observer)

    # Observability ----------------------------------------------------------
    def attach_observer(
        self, observer: Optional[Observer] = None
    ) -> Observer:
        """Turn on observability for this session.

        Creates a :class:`~repro.obs.StackObserver` when none is given,
        wires it through the agent and the exact engine (spans, metrics,
        events for every subsequent query), and returns it.
        """
        if observer is None:
            observer = StackObserver()
        self.observer = observer
        self.agent.attach_observer(observer)
        self.executor.attach_observer(observer)
        return observer

    def close(self) -> None:
        """Shut down the session's worker pool (idempotent)."""
        self.executor.close()

    def __enter__(self) -> "SEASession":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def _require_observer(self) -> Observer:
        if self.observer is None or not self.observer.enabled:
            raise ConfigurationError(
                "no observer attached; call session.attach_observer() "
                "before running the workload you want to export"
            )
        return self.observer

    def export_trace(self, path: str) -> str:
        """Write the Chrome-trace JSON (Perfetto-viewable) to ``path``."""
        return self._require_observer().export_trace(path)

    def export_metrics(self, path: str) -> str:
        """Write the Prometheus-style metrics exposition to ``path``."""
        return self._require_observer().export_metrics(path)

    def export_events(self, path: str) -> str:
        """Write the structured decision log as JSON Lines to ``path``."""
        return self._require_observer().export_events(path)

    # Data management -------------------------------------------------------
    def load_table(self, table: Table) -> None:
        """Place a table across the session's cluster."""
        self.store.put_table(
            table, partitions_per_node=self.partitions_per_node
        )

    def load_csv(self, path: str, name: Optional[str] = None) -> Table:
        """Load a numeric CSV (header row) and place it."""
        table = Table.from_csv(path, name=name)
        self.load_table(table)
        return table

    def notify_update(self, table_name: str, lows, highs) -> int:
        """Tell the agent base data changed inside the box (RT1.4-ii)."""
        return self.agent.notify_data_update(table_name, lows, highs)

    # Querying ---------------------------------------------------------------
    def sql(self, statement: str) -> SessionAnswer:
        """Run one SQL-like statement through the agent."""
        return self.submit(parse_query(statement))

    def submit(self, query: AnalyticsQuery) -> SessionAnswer:
        """Run one already-built query through the agent."""
        record: ServedQuery = self.agent.submit(query)
        return SessionAnswer(
            query=query,
            value=record.answer,
            mode=record.mode,
            cost=record.cost,
            _session=self,
        )

    def sql_many(self, statements: Sequence[str]) -> List[SessionAnswer]:
        """Run many SQL-like statements as one batch.

        Answers, modes and per-query costs are identical to calling
        :meth:`sql` once per statement; the batch path amortises the real
        work (vectorized predictions, shared scans, answer cache).
        """
        return self.submit_batch([parse_query(s) for s in statements])

    def submit_batch(
        self, queries: Sequence[AnalyticsQuery]
    ) -> List[SessionAnswer]:
        """Run many already-built queries through the agent's batch path."""
        records = self.agent.submit_batch(queries)
        return [
            SessionAnswer(
                query=record.query,
                value=record.answer,
                mode=record.mode,
                cost=record.cost,
                _session=self,
            )
            for record in records
        ]

    def explain(self, query: AnalyticsQuery) -> Explanation:
        """An explanation for ``query`` (data-less when models cover it)."""
        predictor = self.agent.predictor(query)
        try:
            prediction = predictor.predict(query.vector())
        except Exception:
            prediction = None
        if prediction is not None and prediction.reliable:
            return self._explainer.from_predictor(query, predictor)
        return self._explainer.from_engine(query, self.engine)

    # Persistence ------------------------------------------------------------
    def save_models(self, path: str) -> int:
        """Persist the agent's learned models (bytes written)."""
        return save_agent_models(self.agent, path)

    def load_models(self, path: str) -> int:
        """Restore models saved by :meth:`save_models` (count loaded)."""
        return load_agent_models(self.agent, path)

    # Introspection ------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Serving statistics plus cumulative resource savings.

        ``estimated_seconds_saved`` and ``bytes_scanned_total`` are always
        present (0.0 on an empty history), so downstream tabulation never
        has to guard against missing keys.  When an observer is attached,
        its flat metrics snapshot (span/event volumes, charge counters,
        latency quantiles) is merged in under its exposition names.
        """
        stats = self.agent.stats()
        stats["estimated_seconds_saved"] = 0.0
        stats["bytes_scanned_total"] = 0.0
        history = self.agent.history
        if history:
            exact_costs = [
                r.cost.elapsed_sec for r in history if r.mode != "predicted"
            ]
            mean_exact = float(np.mean(exact_costs)) if exact_costs else 0.0
            saved = sum(
                mean_exact - r.cost.elapsed_sec
                for r in history
                if r.mode == "predicted"
            )
            stats["estimated_seconds_saved"] = float(max(0.0, saved))
            stats["bytes_scanned_total"] = float(
                sum(r.cost.bytes_scanned for r in history)
            )
        if self.observer is not None and self.observer.enabled:
            snapshot = getattr(self.observer, "snapshot", None)
            if callable(snapshot):
                stats.update(snapshot())
        return stats
