"""A high-level session facade: the whole SEA system behind three calls.

For downstream users who want the paper's behaviour without wiring the
subsystems by hand::

    from repro.session import SEASession

    session = SEASession(n_nodes=8)
    session.load_table(my_table)              # or load_csv("data.csv")
    answer = session.sql("SELECT COUNT(*) FROM data "
                         "WHERE x0 BETWEEN 10 AND 20 AND x1 BETWEEN 5 AND 9")
    answer.value        # the analytical answer
    answer.mode         # "train" | "predicted" | "fallback"
    answer.explanation  # lazily built piecewise-linear explanation
    answer.profile      # EXPLAIN ANALYZE flight record (observer attached)

The session owns a simulated cluster, a store, the exact engine and one
SEA agent; it exposes SQL in, answers out, with per-query provenance and
cumulative savings statistics.  ``session.explain(sql)`` plans a query
without executing it; ``session.health()`` summarises SLO burn rates and
accuracy-drift anomalies over everything served so far.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.baselines.exact import ExactEngine
from repro.cluster.storage import DistributedStore
from repro.cluster.topology import ClusterTopology
from repro.common.accounting import CostReport
from repro.common.errors import ConfigurationError
from repro.common.validation import require
from repro.core.agent import AgentConfig, SEAAgent, ServedQuery
from repro.core.persistence import load_agent_models, save_agent_models
from repro.data.tabular import Table
from repro.explain.explanations import Explanation, ExplanationBuilder
from repro.obs.observer import Observer, StackObserver
from repro.obs.profile import QueryProfile, build_plan_profile
from repro.obs.slo import SLOMonitor, SLOPolicy
from repro.parallel import ProcessScanExecutor, ScanExecutor
from repro.queries.query import AnalyticsQuery
from repro.queries.sql import parse_query


@dataclass
class SessionAnswer:
    """What the analyst gets back for one SQL statement."""

    query: AnalyticsQuery
    value: object
    mode: str
    cost: CostReport
    _session: Optional["SEASession"] = None
    _profile: Optional[QueryProfile] = None

    @property
    def explanation(self) -> Explanation:
        """A piecewise-linear explanation of answer vs query extent.

        Built from the agent's models when they cover the query (zero
        data access), from the exact engine otherwise.
        """
        if self._session is None:
            raise ConfigurationError(
                "this SessionAnswer is detached from its SEASession "
                "(e.g. it was unpickled); call session.explanation(answer.query) "
                "on a live session instead"
            )
        return self._session.explanation(self.query)

    @property
    def profile(self) -> QueryProfile:
        """The query's EXPLAIN ANALYZE flight record (plan + actuals).

        Recorded only while an observer is attached — profiling rides the
        same null-observer contract as spans and metrics, so detached
        sessions pay nothing and have nothing to show.
        """
        if self._profile is None:
            raise ConfigurationError(
                "no profile was recorded for this answer; attach an "
                "observer (session.attach_observer()) before submitting"
            )
        return self._profile

    def __repr__(self) -> str:
        return (
            f"SessionAnswer(value={self.value!r}, mode={self.mode!r}, "
            f"elapsed={self.cost.elapsed_sec:.4f}s)"
        )


class SEASession:
    """One analyst-facing session over a simulated SEA deployment."""

    def __init__(
        self,
        n_nodes: int = 8,
        replication: int = 1,
        config: Optional[AgentConfig] = None,
        partitions_per_node: int = 2,
        observer: Optional[Observer] = None,
        workers: int = 1,
        layout: str = "row",
        executor: str = "thread",
        ingest: bool = False,
        epoch_seconds: float = 1.0,
    ) -> None:
        """``workers`` sizes the session's morsel pool (DESIGN §9):
        ``workers=1`` (the default) is the serial path; higher counts fan
        partition-level compute across real host threads while every
        answer, cost report and serving statistic stays byte-identical.
        ``executor`` picks the pool flavour (DESIGN §12): ``"thread"``
        (default) shares the caller's address space but contends on the
        GIL; ``"process"`` fans morsels across worker processes over
        shared-memory partition views, breaking the GIL ceiling with the
        same byte-identical answers. ``layout`` picks the default
        partition storage layout (DESIGN §11): ``"row"`` keeps the
        historical row-major matrices, ``"column"`` stores encoded
        columns and unlocks column-pruned scans — answers are
        byte-identical either way.  ``ingest=True`` turns on the durable
        streaming write path (DESIGN §13): ``append_rows``/``delete_rows``
        land in a write-ahead log plus per-partition deltas, readable
        immediately, and are folded into base partitions by the epoch
        compactor every ``epoch_seconds`` of simulated time
        (``session.advance(...)``/``session.flush()``).
        """
        require(n_nodes >= 1, "n_nodes must be >= 1")
        require(
            executor in ("thread", "process"),
            f"executor must be 'thread' or 'process', not {executor!r}",
        )
        self.topology = ClusterTopology.single_datacenter(n_nodes)
        self.store = DistributedStore(
            self.topology, replication=replication, layout=layout
        )
        self.executor = (
            ProcessScanExecutor(workers)
            if executor == "process"
            else ScanExecutor(workers)
        )
        self.engine = ExactEngine(self.store, executor=self.executor)
        self.agent = SEAAgent(self.engine, config or AgentConfig())
        self.partitions_per_node = partitions_per_node
        self._explainer = ExplanationBuilder(n_probes=13, span=(0.6, 1.4))
        self._closed = False
        self.observer: Optional[Observer] = None
        self.slo: Optional[SLOMonitor] = None
        if ingest:
            from repro.ingest import IngestConfig

            pipeline = self.store.enable_ingest(
                IngestConfig(epoch_seconds=epoch_seconds)
            )
            pipeline.on_epoch(self._on_ingest_epoch)
        if observer is not None:
            self.attach_observer(observer)

    # Observability ----------------------------------------------------------
    def attach_observer(
        self, observer: Optional[Observer] = None
    ) -> Observer:
        """Turn on observability for this session.

        Creates a :class:`~repro.obs.StackObserver` when none is given,
        wires it through the agent and the exact engine (spans, metrics,
        events for every subsequent query), and returns it.
        """
        if observer is None:
            observer = StackObserver()
        self.observer = observer
        self.agent.attach_observer(observer)
        self.executor.attach_observer(observer)
        if self.store.ingest is not None:
            self.store.ingest.attach_observer(observer)
        return observer

    def close(self) -> None:
        """Shut down the session's worker pool (idempotent).

        Safe to call more than once and safe to race with a close
        already in progress: the first call through wins, later calls
        are no-ops, and a query that is *mid-flight* when close() is
        entered finishes against resources the executor releases only
        after its in-progress work drains (both pool flavours wait for
        outstanding morsels before tearing down shared state).
        """
        if self._closed:
            return
        self._closed = True
        self.executor.close()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run (queries may still be served
        through the serial fallback paths, but the worker pools and any
        shared-memory segments are gone)."""
        return self._closed

    def __enter__(self) -> "SEASession":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def _require_observer(self) -> Observer:
        if self.observer is None or not self.observer.enabled:
            raise ConfigurationError(
                "no observer attached; call session.attach_observer() "
                "before running the workload you want to export"
            )
        return self.observer

    def export_trace(self, path: str, overwrite: bool = False) -> str:
        """Write the Chrome-trace JSON (Perfetto-viewable) to ``path``."""
        return self._require_observer().export_trace(path, overwrite=overwrite)

    def export_metrics(self, path: str, overwrite: bool = False) -> str:
        """Write the Prometheus-style metrics exposition to ``path``."""
        return self._require_observer().export_metrics(path, overwrite=overwrite)

    def export_events(self, path: str, overwrite: bool = False) -> str:
        """Write the structured decision log as JSON Lines to ``path``."""
        return self._require_observer().export_events(path, overwrite=overwrite)

    def export_profiles(self, path: str, overwrite: bool = False) -> str:
        """Write every recorded :class:`QueryProfile` as JSON Lines."""
        return self._require_observer().export_profiles(path, overwrite=overwrite)

    def export_observability(
        self, directory: str, overwrite: bool = False
    ) -> Dict[str, str]:
        """One-shot dump of every observability surface into ``directory``.

        Writes ``trace.json``, ``metrics.prom``, ``events.jsonl``,
        ``profiles.jsonl`` and ``health.json``; returns the written paths
        keyed by surface name.  Parent directories are created; existing
        files are refused unless ``overwrite=True``.
        """
        observer = self._require_observer()
        join = lambda name: os.path.join(directory, name)
        paths = {
            "trace": observer.export_trace(join("trace.json"), overwrite=overwrite),
            "metrics": observer.export_metrics(
                join("metrics.prom"), overwrite=overwrite
            ),
            "events": observer.export_events(
                join("events.jsonl"), overwrite=overwrite
            ),
            "profiles": observer.export_profiles(
                join("profiles.jsonl"), overwrite=overwrite
            ),
        }
        from repro.obs.export import prepare_export_path

        health_path = prepare_export_path(join("health.json"), overwrite=overwrite)
        with open(health_path, "w") as handle:
            json.dump(self.health(), handle, sort_keys=True, indent=2)
            handle.write("\n")
        paths["health"] = health_path
        return paths

    # Data management -------------------------------------------------------
    def load_table(self, table: Table) -> None:
        """Place a table across the session's cluster."""
        self.store.put_table(
            table, partitions_per_node=self.partitions_per_node
        )

    def load_csv(self, path: str, name: Optional[str] = None) -> Table:
        """Load a numeric CSV (header row) and place it."""
        table = Table.from_csv(path, name=name)
        self.load_table(table)
        return table

    def notify_update(self, table_name: str, lows, highs) -> int:
        """Tell the agent base data changed inside the box (RT1.4-ii)."""
        return self.agent.notify_data_update(table_name, lows, highs)

    # Streaming ingestion (DESIGN §13) --------------------------------------
    @property
    def ingest(self):
        """The session's :class:`~repro.ingest.IngestPipeline`, or None."""
        return self.store.ingest

    def _require_ingest(self):
        pipeline = self.store.ingest
        if pipeline is None:
            raise ConfigurationError(
                "streaming ingestion is off; build the session with "
                "SEASession(..., ingest=True)"
            )
        return pipeline

    def append_rows(self, table_name: str, rows: Table) -> int:
        """Durably append ``rows``; visible to queries immediately.

        Returns the WAL log-sequence-number of the append (0 for an
        empty batch) — writes with lsn <= a later
        :class:`~repro.ingest.RecoveryReport`'s ``durable_lsn`` survive
        any crash.
        """
        return self._require_ingest().append(table_name, rows)

    def delete_rows(self, table_name: str, predicate) -> int:
        """Durably delete rows matching ``predicate(view) -> mask``."""
        return self._require_ingest().delete(table_name, predicate)

    def advance(self, seconds: float) -> float:
        """Advance simulated time; closes every epoch boundary crossed.

        The fault injector's clock (when one is attached) moves in step,
        so scheduled node outages and write-path faults share one
        timeline with the compactor.
        """
        pipeline = self._require_ingest()
        if self.store.faults is not None:
            self.store.faults.advance(seconds)
        return pipeline.advance(seconds)

    def flush(self) -> Dict[str, object]:
        """Force an epoch close now: compact deltas, sync + prune the WAL."""
        return self._require_ingest().flush()

    def recover(self):
        """Replay the durable WAL after a simulated crash (DESIGN §13)."""
        return self.store.recover()

    @property
    def staleness_bound(self) -> float:
        """Max simulated seconds a staged write waits before compaction."""
        return self._require_ingest().staleness_bound

    def _on_ingest_epoch(self, summary: Dict[str, object]) -> None:
        """Per-epoch maintenance: one drift notification per mutated table.

        Folding the epoch's writes into a single bounding-box
        invalidation (instead of one per write) is what keeps the E13
        retrain machinery epoch-rate rather than write-rate.
        """
        tables = summary.get("tables") or {}
        for name, info in tables.items():
            if info.get("rows"):
                self.agent.notify_data_update(
                    name, info["lows"], info["highs"]
                )

    # Querying ---------------------------------------------------------------
    def sql(self, statement: str) -> SessionAnswer:
        """Run one SQL-like statement through the agent."""
        return self.submit(parse_query(statement))

    def submit(self, query: AnalyticsQuery) -> SessionAnswer:
        """Run one already-built query through the agent."""
        record: ServedQuery = self.agent.submit(query)
        if self.slo is not None:
            self.slo.record(record, self.observer)
        return SessionAnswer(
            query=query,
            value=record.answer,
            mode=record.mode,
            cost=record.cost,
            _session=self,
            _profile=record.profile,
        )

    def sql_many(self, statements: Sequence[str]) -> List[SessionAnswer]:
        """Run many SQL-like statements as one batch.

        Answers, modes and per-query costs are identical to calling
        :meth:`sql` once per statement; the batch path amortises the real
        work (vectorized predictions, shared scans, answer cache).
        """
        return self.submit_batch([parse_query(s) for s in statements])

    def submit_batch(
        self, queries: Sequence[AnalyticsQuery]
    ) -> List[SessionAnswer]:
        """Run many already-built queries through the agent's batch path."""
        records = self.agent.submit_batch(queries)
        if self.slo is not None:
            for record in records:
                self.slo.record(record, self.observer)
        return [
            SessionAnswer(
                query=record.query,
                value=record.answer,
                mode=record.mode,
                cost=record.cost,
                _session=self,
                _profile=record.profile,
            )
            for record in records
        ]

    def explain(
        self, statement_or_query: Union[str, AnalyticsQuery]
    ) -> QueryProfile:
        """Plan a query without executing it (``EXPLAIN``).

        Returns a :class:`~repro.obs.QueryProfile` holding the zone-map
        scan plan (per-partition skip/synopsis/scan with bytes saved) and
        the agent's predicted serving decision — which path *would* run,
        with the driving error estimate and answer-cache status.  Nothing
        is read, nothing is charged, and no serving statistic moves.
        Works with or without an observer attached.
        """
        query = (
            parse_query(statement_or_query)
            if isinstance(statement_or_query, str)
            else statement_or_query
        )
        return build_plan_profile(query, self.engine, agent=self.agent)

    def explanation(self, query: AnalyticsQuery) -> Explanation:
        """An explanation for ``query`` (data-less when models cover it)."""
        predictor = self.agent.predictor(query)
        try:
            prediction = predictor.predict(query.vector())
        except Exception:
            prediction = None
        if prediction is not None and prediction.reliable:
            return self._explainer.from_predictor(query, predictor)
        return self._explainer.from_engine(query, self.engine)

    # Health -----------------------------------------------------------------
    def attach_slo(self, policy: Optional[SLOPolicy] = None) -> SLOMonitor:
        """Start (or replace) SLO monitoring for this session.

        Everything already served replays into the fresh monitor in
        submission order on the same simulated clock, so attaching late
        loses no history.
        """
        self.slo = SLOMonitor(policy or SLOPolicy())
        for record in self.agent.history:
            self.slo.record(record)
        return self.slo

    def health(self) -> Dict[str, object]:
        """Rolling SLO + accuracy-drift health for everything served.

        Lazily attaches a default :class:`SLOPolicy` when none is
        configured.  The snapshot carries per-class burn rates and
        latency quantiles plus the accuracy anomaly counters, and is
        logged as a ``slo_health`` decision event when an observer is
        attached.
        """
        if self.slo is None:
            self.attach_slo()
        snapshot = self.slo.health()
        snapshot["anomaly"] = self.agent.anomaly.summary()
        if self.observer is not None and self.observer.enabled:
            self.observer.event(
                "slo_health",
                status=snapshot["status"],
                queries_recorded=snapshot["queries_recorded"],
                classes={
                    name: info["status"]
                    for name, info in snapshot["classes"].items()
                },
            )
        return snapshot

    # Persistence ------------------------------------------------------------
    def save_models(self, path: str) -> int:
        """Persist the agent's learned models (bytes written)."""
        return save_agent_models(self.agent, path)

    def load_models(self, path: str) -> int:
        """Restore models saved by :meth:`save_models` (count loaded)."""
        return load_agent_models(self.agent, path)

    # Introspection ------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Serving statistics plus cumulative resource savings.

        ``estimated_seconds_saved`` and ``bytes_scanned_total`` are always
        present (0.0 on an empty history), so downstream tabulation never
        has to guard against missing keys.  When an observer is attached,
        its flat metrics snapshot (span/event volumes, charge counters,
        latency quantiles) is merged in under its exposition names.
        """
        stats = self.agent.stats()
        stats["estimated_seconds_saved"] = 0.0
        stats["bytes_scanned_total"] = 0.0
        history = self.agent.history
        if history:
            exact_costs = [
                r.cost.elapsed_sec for r in history if r.mode != "predicted"
            ]
            mean_exact = float(np.mean(exact_costs)) if exact_costs else 0.0
            saved = sum(
                mean_exact - r.cost.elapsed_sec
                for r in history
                if r.mode == "predicted"
            )
            stats["estimated_seconds_saved"] = float(max(0.0, saved))
            stats["bytes_scanned_total"] = float(
                sum(r.cost.bytes_scanned for r in history)
            )
        if self.observer is not None and self.observer.enabled:
            snapshot = getattr(self.observer, "snapshot", None)
            if callable(snapshot):
                stats.update(snapshot())
        return stats
