"""Synopsis-based AQP baseline: distributed count-min range counts.

The second classical AQP substrate Sec. II names (after sampling): "data
synopses (e.g., [16])".  Each data node sketches its local rows of one
numeric column into a dyadic count-min stack; a coordinator merges the
(linear) sketches once and then answers 1-d range-count queries from the
merged synopsis — no base data access per query, but biased-up answers
whose error floor is fixed by the sketch width, and no support for other
aggregates: the structural contrast with SEA's learned models.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.validation import require
from repro.cluster.storage import DistributedStore
from repro.faults.policy import FailoverPolicy
from repro.ml.sketches import DyadicCountMin
from repro.queries.query import AnalyticsQuery
from repro.queries.selections import RangeSelection


class SketchAQPEngine:
    """1-d range counts from a merged distributed count-min synopsis."""

    def __init__(
        self,
        store: DistributedStore,
        table_name: str,
        column: str,
        levels: int = 12,
        width: int = 544,
        depth: int = 5,
        failover: Optional[FailoverPolicy] = None,
    ) -> None:
        self.store = store
        self.failover = failover or FailoverPolicy()
        self.table_name = table_name
        self.column = column
        self.levels = levels
        self._synopsis = DyadicCountMin(levels=levels, width=width, depth=depth)
        self._lo: Optional[float] = None
        self._scale: Optional[float] = None
        self.build_report: Optional[CostReport] = None

    # Offline build ---------------------------------------------------------
    def build(self) -> CostReport:
        """One pass per node: sketch locally, ship sketches, merge.

        Under faults each partition's scan retries and fails over between
        replicas; a partition with no live replica raises
        :class:`~repro.common.errors.PartitionLostError` — a sketch built
        from partial data would be silently biased for its whole
        lifetime.  Once built, query answering never touches base data,
        so the synopsis keeps serving through any later failures.
        """
        meter = CostMeter()
        stored = self.store.table(self.table_name)
        values = stored.full_table().column(self.column).astype(float)
        self._lo = float(values.min())
        span = float(values.max()) - self._lo
        self._scale = (self._synopsis.domain - 1) / (span if span > 0 else 1.0)
        slowest = 0.0
        coordinator = self.store.topology.pick_coordinator()
        sketch_bytes = self._synopsis.state_bytes()
        faults = self.store.faults
        faulty = faults is not None and faults.active
        for partition in stored.partitions:
            if faulty:
                data, serving, extra = self.failover.read_partition(
                    self.store, partition, meter, requester=coordinator
                )
                seconds = extra + (
                    data.n_bytes
                    * self.store.read_slowdown(serving)
                    / meter.rates.disk_bytes_per_sec
                )
            else:
                serving = partition.primary_node
                data = self.store.read_partition(partition, meter)
                seconds = data.n_bytes / meter.rates.disk_bytes_per_sec
            seconds += meter.charge_cpu(serving, data.n_bytes)
            seconds += meter.charge_transfer(serving, coordinator, sketch_bytes)
            slowest = max(slowest, seconds)
            for value in data.column(self.column).astype(float):
                self._synopsis.add(self._bucket(value))
        meter.advance(slowest)
        self.build_report = meter.freeze()
        return self.build_report

    # Query answering -------------------------------------------------------
    def execute(self, query: AnalyticsQuery) -> Tuple[float, CostReport]:
        """Range-count estimate from the synopsis (upward-biased)."""
        require(self._lo is not None, "build() the synopsis first")
        selection = query.selection
        require(
            isinstance(selection, RangeSelection) and len(selection.columns) == 1,
            "SketchAQPEngine answers 1-d range selections only",
        )
        require(
            selection.columns[0] == self.column,
            f"synopsis covers column {self.column!r}",
        )
        require(
            query.aggregate.name == "count",
            "count-min synopses answer count queries only",
        )
        lo = self._bucket(float(selection.lows[0]))
        hi = self._bucket(float(selection.highs[0]))
        meter = CostMeter()
        seconds = meter.charge_cpu(
            self.store.topology.pick_coordinator(), 64 * 2 * self.levels
        )
        meter.advance(seconds)
        return float(self._synopsis.range_count(lo, hi)), meter.freeze()

    def state_bytes(self) -> int:
        return self._synopsis.state_bytes()

    def _bucket(self, value: float) -> int:
        bucket = int(round((value - self._lo) * self._scale))
        return int(np.clip(bucket, 0, self._synopsis.domain - 1))
