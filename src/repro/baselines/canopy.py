"""Data-Canopy-like segment-statistics cache [20].

Data Canopy caches basic statistical aggregates of data *segments* so that
repeated exploratory statistics recombine cached pieces instead of
re-scanning.  Here segments are cells of a uniform grid over the queried
dimensions.  Per cell the cache holds the sufficient statistics of every
numeric column (count, sum, sum-of-squares, cross-products) plus the row
locations, so that

* cells *fully inside* a range query are answered from cached statistics;
* *boundary* cells are resolved by surgically reading just their rows.

Behaviourally this reproduces both Data Canopy's strength (repeat and
overlapping queries get dramatically cheaper) and the weakness the paper
cites: "the storage required ... can grow prohibitively large" — the cache
footprint grows with every new region touched, and "such efforts typically
only benefit previously seen queries."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.validation import require
from repro.cluster.storage import DistributedStore
from repro.engine.coordinator import CoordinatorEngine
from repro.queries.query import AnalyticsQuery, Answer
from repro.queries.selections import RangeSelection

_STAT_BYTES_PER_COLUMN = 3 * 8  # count, sum, sum_sq per cached column
_ROWREF_BYTES = 12  # (partition, row) reference


class SegmentStatsCache:
    """Grid-cell statistics cache over one stored table."""

    def __init__(
        self,
        store: DistributedStore,
        table_name: str,
        grid_columns: Sequence[str],
        cells_per_dim: int = 32,
    ) -> None:
        require(cells_per_dim >= 2, "cells_per_dim must be >= 2")
        self.store = store
        self.table_name = table_name
        self.grid_columns = tuple(grid_columns)
        self.cells_per_dim = cells_per_dim
        self.coordinator = CoordinatorEngine(store)
        stored = store.table(table_name)
        full = stored.full_table()
        mats = full.matrix(self.grid_columns)
        self._lows = mats.min(axis=0)
        self._highs = mats.max(axis=0)
        span = self._highs - self._lows
        span[span == 0.0] = 1.0
        self._span = span
        # cell key -> {column: (count, sum, sum_sq)}
        self._stats: Dict[Tuple[int, ...], Dict[str, Tuple[float, float, float]]] = {}
        # cell key -> [(partition_index, row_index), ...]
        self._rows: Dict[Tuple[int, ...], List[Tuple[int, int]]] = {}
        self._directory_built = False
        self.hits = 0
        self.misses = 0

    # Cache state ----------------------------------------------------------
    def state_bytes(self) -> int:
        """Cache footprint: cached statistics plus the row directory."""
        stats = sum(
            len(cols) * _STAT_BYTES_PER_COLUMN for cols in self._stats.values()
        )
        rows = sum(len(refs) * _ROWREF_BYTES for refs in self._rows.values())
        return stats + rows

    @property
    def n_cached_cells(self) -> int:
        return len(self._stats)

    # Query answering -------------------------------------------------------
    def execute(self, query: AnalyticsQuery) -> Tuple[Answer, CostReport]:
        """Exact range-aggregate from cached cells + boundary row reads.

        The first query over a region pays (a) a one-time directory build
        (full scan, amortised across all future queries) and (b) cell-stat
        materialisation for the cells it covers.  Later queries reuse them.
        """
        selection = query.selection
        require(
            isinstance(selection, RangeSelection),
            "SegmentStatsCache answers range selections only",
        )
        meter = CostMeter()
        if not self._directory_built:
            self._build_directory(meter)
        inner, boundary = self._classify_cells(selection)
        partials = []
        # Fully covered cells: cached statistics (materialise on miss).
        for key in inner:
            stats = self._stats.get(key)
            if stats is None:
                self.misses += 1
                stats = self._materialise_cell(key, meter)
            else:
                self.hits += 1
            partials.append(self._stats_to_partial(query, stats))
        # Boundary cells: surgical reads of their rows, filter exactly.
        rows_by_partition: Dict[int, List[int]] = {}
        for key in boundary:
            for part_idx, row_idx in self._rows.get(key, ()):
                rows_by_partition.setdefault(part_idx, []).append(row_idx)
        if rows_by_partition:
            stored = self.store.table(self.table_name)
            # The fetched rows are filtered by the selection below, so
            # zone-map pruning of the fetch plan is answer-preserving.
            data, _ = self.coordinator.fetch_rows(
                stored, rows_by_partition, meter, selection=selection
            )
            selected = data.select(selection.mask(data))
            partials.append(query.aggregate.partial(selected))
        answer = query.aggregate.merge(partials)
        return answer, meter.freeze()

    # Internals -------------------------------------------------------------
    def _build_directory(self, meter: CostMeter) -> None:
        """One-time full scan building the cell -> rows directory."""
        stored = self.store.table(self.table_name)
        for part_idx, partition in enumerate(stored.partitions):
            data = self.store.read_partition(partition, meter)
            meter.advance(data.n_bytes / meter.rates.disk_bytes_per_sec)
            cells = self._cell_of_rows(data)
            for row_idx, key in enumerate(map(tuple, cells)):
                self._rows.setdefault(key, []).append((part_idx, row_idx))
        self._directory_built = True

    def _cell_of_rows(self, data) -> np.ndarray:
        mats = data.matrix(self.grid_columns)
        scaled = (mats - self._lows) / self._span * self.cells_per_dim
        return np.clip(scaled.astype(int), 0, self.cells_per_dim - 1)

    def _classify_cells(self, selection: RangeSelection):
        """Cell keys fully inside vs partially overlapping the query box."""
        lo_cell = np.clip(
            ((selection.lows - self._lows) / self._span * self.cells_per_dim).astype(int),
            0,
            self.cells_per_dim - 1,
        )
        hi_cell = np.clip(
            ((selection.highs - self._lows) / self._span * self.cells_per_dim).astype(int),
            0,
            self.cells_per_dim - 1,
        )
        inner: List[Tuple[int, ...]] = []
        boundary: List[Tuple[int, ...]] = []
        ranges = [range(lo, hi + 1) for lo, hi in zip(lo_cell, hi_cell)]
        for key in _product(ranges):
            cell_lo = self._lows + np.asarray(key) / self.cells_per_dim * self._span
            cell_hi = self._lows + (np.asarray(key) + 1) / self.cells_per_dim * self._span
            if np.all(cell_lo >= selection.lows) and np.all(cell_hi <= selection.highs):
                inner.append(key)
            else:
                boundary.append(key)
        return inner, boundary

    def _materialise_cell(self, key: Tuple[int, ...], meter: CostMeter):
        """Read the cell's rows once and cache their sufficient statistics."""
        rows_by_partition: Dict[int, List[int]] = {}
        for part_idx, row_idx in self._rows.get(key, ()):
            rows_by_partition.setdefault(part_idx, []).append(row_idx)
        stats: Dict[str, Tuple[float, float, float]] = {}
        if rows_by_partition:
            stored = self.store.table(self.table_name)
            data, _ = self.coordinator.fetch_rows(stored, rows_by_partition, meter)
            for column in data.column_names:
                col = data.column(column).astype(float)
                stats[column] = (
                    float(col.shape[0]),
                    float(col.sum()),
                    float((col**2).sum()),
                )
        else:
            stats = {}
        self._stats[key] = stats
        return stats

    def _stats_to_partial(self, query: AnalyticsQuery, stats):
        """Convert cached cell statistics into the aggregate's partial form."""
        name = query.aggregate.name
        if not stats:
            count = 0.0
            moments = (0.0, 0.0, 0.0)
        else:
            count = next(iter(stats.values()))[0]
        if name.startswith("count"):
            return count
        column = getattr(query.aggregate, "column", None)
        moments = stats.get(column, (0.0, 0.0, 0.0)) if stats else (0.0, 0.0, 0.0)
        if name.startswith("sum"):
            return moments[1]
        if name.startswith("mean"):
            return (moments[1], int(moments[0]))
        if name.startswith("std"):
            return (moments[1], moments[2], int(moments[0]))
        raise NotImplementedError(
            f"SegmentStatsCache supports count/sum/mean/std, not {name}"
        )


def _product(ranges):
    """Cartesian product of index ranges as tuples (tiny itertools.product)."""
    if not ranges:
        yield ()
        return
    first, *rest = ranges
    for head in first:
        for tail in _product(rest):
            yield (head, *tail)
