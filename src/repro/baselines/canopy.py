"""Data-Canopy-like segment-statistics cache [20].

Data Canopy caches basic statistical aggregates of data *segments* so that
repeated exploratory statistics recombine cached pieces instead of
re-scanning.  Here segments are cells of a uniform grid over the queried
dimensions.  Per cell the cache holds the sufficient statistics of every
numeric column (count, sum, sum-of-squares, cross-products) plus the row
locations, so that

* cells *fully inside* a range query are answered from cached statistics;
* *boundary* cells are resolved by surgically reading just their rows.

Behaviourally this reproduces both Data Canopy's strength (repeat and
overlapping queries get dramatically cheaper) and the weakness the paper
cites: "the storage required ... can grow prohibitively large" — the cache
footprint grows with every new region touched, and "such efforts typically
only benefit previously seen queries."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.errors import StorageError
from repro.common.validation import require
from repro.bigdataless.index import group_rows_by_cell
from repro.cluster.storage import DistributedStore
from repro.engine.coordinator import CoordinatorEngine
from repro.engine.specs import GridAssignSpec
from repro.faults.degraded import UnknownChunk, build_degraded_answer
from repro.parallel import partition_morsels
from repro.queries.query import AnalyticsQuery, Answer
from repro.queries.selections import RangeSelection

_STAT_BYTES_PER_COLUMN = 3 * 8  # count, sum, sum_sq per cached column
_ROWREF_BYTES = 12  # (partition, row) reference


class SegmentStatsCache:
    """Grid-cell statistics cache over one stored table."""

    def __init__(
        self,
        store: DistributedStore,
        table_name: str,
        grid_columns: Sequence[str],
        cells_per_dim: int = 32,
        failure_mode: str = "fail",
        executor=None,
    ) -> None:
        require(cells_per_dim >= 2, "cells_per_dim must be >= 2")
        require(
            failure_mode in ("fail", "degrade"),
            f"unknown failure_mode {failure_mode!r}",
        )
        self.store = store
        self.table_name = table_name
        self.failure_mode = failure_mode
        self.grid_columns = tuple(grid_columns)
        self.cells_per_dim = cells_per_dim
        self.executor = executor
        self.coordinator = CoordinatorEngine(store, executor=executor)
        stored = store.table(table_name)
        full = stored.full_table()
        mats = full.matrix(self.grid_columns)
        self._lows = mats.min(axis=0)
        self._highs = mats.max(axis=0)
        span = self._highs - self._lows
        span[span == 0.0] = 1.0
        self._span = span
        # cell key -> {column: (count, sum, sum_sq)}
        self._stats: Dict[Tuple[int, ...], Dict[str, Tuple[float, float, float]]] = {}
        # cell key -> [(partition_index, row-index array), ...] with one
        # ascending run per partition that has rows in the cell.
        self._rows: Dict[Tuple[int, ...], List[Tuple[int, np.ndarray]]] = {}
        self._directory_built = False
        self.hits = 0
        self.misses = 0

    # Cache state ----------------------------------------------------------
    def state_bytes(self) -> int:
        """Cache footprint: cached statistics plus the row directory."""
        stats = sum(
            len(cols) * _STAT_BYTES_PER_COLUMN for cols in self._stats.values()
        )
        rows = sum(
            int(run.size) * _ROWREF_BYTES
            for refs in self._rows.values()
            for _, run in refs
        )
        return stats + rows

    @property
    def n_cached_cells(self) -> int:
        return len(self._stats)

    # Query answering -------------------------------------------------------
    def execute(self, query: AnalyticsQuery) -> Tuple[Answer, CostReport]:
        """Exact range-aggregate from cached cells + boundary row reads.

        The first query over a region pays (a) a one-time directory build
        (full scan, amortised across all future queries) and (b) cell-stat
        materialisation for the cells it covers.  Later queries reuse them.

        Under fault injection reads go through the coordinator's failover
        policy.  With ``failure_mode="degrade"``, rows that cannot be
        reached from any replica are dropped from the value and accounted
        as unknown chunks in a returned
        :class:`~repro.faults.DegradedAnswer`; partial cell reads are
        never cached.  The one-time directory build cannot degrade — it
        needs every row's location — so a partition lost during the build
        always raises :class:`~repro.common.errors.PartitionLostError`.
        """
        selection = query.selection
        require(
            isinstance(selection, RangeSelection),
            "SegmentStatsCache answers range selections only",
        )
        faults = self.store.faults
        degrade = (
            faults is not None and faults.active and self.failure_mode == "degrade"
        )
        meter = CostMeter()
        if not self._directory_built:
            self._build_directory(meter)
        inner, boundary = self._classify_cells(selection)
        partials = []
        unknown: List[UnknownChunk] = []
        lost_partitions: set = set()
        # Fully covered cells: cached statistics (materialise on miss).
        for key in inner:
            stats = self._stats.get(key)
            if stats is None:
                self.misses += 1
                if degrade:
                    cell_lost: List[Tuple[int, int]] = []
                    stats = self._materialise_cell(key, meter, lost=cell_lost)
                    if cell_lost:
                        lost_partitions.update(p for p, _ in cell_lost)
                        unknown.append(
                            UnknownChunk(
                                n_rows=sum(n for _, n in cell_lost),
                                stats=self._cell_box(key),
                            )
                        )
                else:
                    stats = self._materialise_cell(key, meter)
            else:
                self.hits += 1
            partials.append(self._stats_to_partial(query, stats))
        # Boundary cells: surgical reads of their rows, filter exactly.
        rows_by_partition = self._fetch_plan(boundary)
        if rows_by_partition:
            stored = self.store.table(self.table_name)
            # The fetched rows are filtered by the selection below, so
            # zone-map pruning of the fetch plan is answer-preserving.
            boundary_lost: List[Tuple[int, int]] = []
            data, _ = self.coordinator.fetch_rows(
                stored,
                rows_by_partition,
                meter,
                selection=selection,
                on_lost="skip" if degrade else "raise",
                lost=boundary_lost,
            )
            for part_idx, n_rows in boundary_lost:
                lost_partitions.add(part_idx)
                unknown.append(self._unknown_chunk(part_idx, n_rows))
            selected = data.select(selection.mask(data))
            partials.append(query.aggregate.partial(selected))
        answer = query.aggregate.merge(partials)
        if degrade and lost_partitions:
            answer = build_degraded_answer(
                query.aggregate,
                selection,
                answer,
                unknown,
                lost_partitions=sorted(lost_partitions),
                unknown_partitions=sorted(lost_partitions),
                total_rows=self.store.table(self.table_name).n_rows,
            )
        return answer, meter.freeze()

    # Internals -------------------------------------------------------------
    def _build_directory(self, meter: CostMeter) -> None:
        """One-time full scan building the cell -> rows directory.

        The directory must locate *every* row, so under faults the scan
        retries/fails over per partition and a partition with no live
        replica propagates :class:`PartitionLostError` — even in degrade
        mode, where a silently incomplete directory would corrupt every
        later answer.
        """
        stored = self.store.table(self.table_name)
        faults = self.store.faults
        faulty = faults is not None and faults.active
        assign = GridAssignSpec(
            self.grid_columns, self._lows, self._span, self.cells_per_dim
        )
        precomputed_cells = None
        if self.executor is not None and self.executor.parallel:
            # Cell assignment is pure compute over immutable partition
            # data; fan it out and leave reads/charges to the loop below.
            # The spec doubles as the map function so thread and process
            # executors run the exact same code object.
            morsels = partition_morsels(stored.partitions, spec=assign)
            precomputed_cells = self.executor.run(
                morsels,
                assign,
                label="canopy_directory",
                observer=self.coordinator.observer,
            )
        for part_idx, partition in enumerate(stored.partitions):
            if faulty:
                data, node, extra = self.coordinator.failover.read_partition(
                    self.store,
                    partition,
                    meter,
                    requester=self.coordinator.coordinator,
                    obs=self.coordinator.observer,
                )
                meter.advance(
                    extra
                    + data.n_bytes
                    * self.store.read_slowdown(node)
                    / meter.rates.disk_bytes_per_sec
                )
            else:
                data = self.store.read_partition(partition, meter)
                meter.advance(data.n_bytes / meter.rates.disk_bytes_per_sec)
            cells = (
                precomputed_cells[part_idx]
                if precomputed_cells is not None
                else assign(data)
            )
            keys, segments, _ = group_rows_by_cell(cells, self.cells_per_dim)
            for key, run in zip(keys, segments):
                self._rows.setdefault(key, []).append((part_idx, run))
        self._directory_built = True

    def _fetch_plan(self, keys) -> Dict[int, np.ndarray]:
        """Row-fetch plan for ``keys``: partition -> row-index array.

        Runs are concatenated in key order (each run is ascending within
        its partition), matching the order the old per-row directory
        produced so fetches stay byte-identical.
        """
        parts: Dict[int, List[np.ndarray]] = {}
        for key in keys:
            for part_idx, run in self._rows.get(key, ()):
                parts.setdefault(part_idx, []).append(run)
        return {
            part_idx: (runs[0] if len(runs) == 1 else np.concatenate(runs))
            for part_idx, runs in parts.items()
        }

    def _classify_cells(self, selection: RangeSelection):
        """Cell keys fully inside vs partially overlapping the query box."""
        lo_cell = np.clip(
            ((selection.lows - self._lows) / self._span * self.cells_per_dim).astype(int),
            0,
            self.cells_per_dim - 1,
        )
        hi_cell = np.clip(
            ((selection.highs - self._lows) / self._span * self.cells_per_dim).astype(int),
            0,
            self.cells_per_dim - 1,
        )
        inner: List[Tuple[int, ...]] = []
        boundary: List[Tuple[int, ...]] = []
        ranges = [range(lo, hi + 1) for lo, hi in zip(lo_cell, hi_cell)]
        for key in _product(ranges):
            cell_lo = self._lows + np.asarray(key) / self.cells_per_dim * self._span
            cell_hi = self._lows + (np.asarray(key) + 1) / self.cells_per_dim * self._span
            if np.all(cell_lo >= selection.lows) and np.all(cell_hi <= selection.highs):
                inner.append(key)
            else:
                boundary.append(key)
        return inner, boundary

    def _materialise_cell(
        self,
        key: Tuple[int, ...],
        meter: CostMeter,
        lost: Optional[List[Tuple[int, int]]] = None,
    ):
        """Read the cell's rows once and cache their sufficient statistics.

        With ``lost`` (degrade mode) unreachable partitions are skipped
        and reported there; statistics over a *partial* cell read are
        returned for this answer but never cached — the cache only ever
        holds complete cells.
        """
        rows_by_partition = self._fetch_plan((key,))
        stats: Dict[str, Tuple[float, float, float]] = {}
        if rows_by_partition:
            stored = self.store.table(self.table_name)
            data, _ = self.coordinator.fetch_rows(
                stored,
                rows_by_partition,
                meter,
                on_lost="raise" if lost is None else "skip",
                lost=lost,
            )
            for column in data.column_names:
                col = data.column(column).astype(float)
                stats[column] = (
                    float(col.shape[0]),
                    float(col.sum()),
                    float((col**2).sum()),
                )
        else:
            stats = {}
        if lost:
            return stats
        self._stats[key] = stats
        return stats

    def _cell_box(self, key: Tuple[int, ...]) -> Dict[str, Tuple[float, float]]:
        """Grid-column value bounds of one cell (for unknown chunks)."""
        lo = self._lows + np.asarray(key) / self.cells_per_dim * self._span
        hi = self._lows + (np.asarray(key) + 1) / self.cells_per_dim * self._span
        return {
            column: (float(lo[i]), float(hi[i]))
            for i, column in enumerate(self.grid_columns)
        }

    def _unknown_chunk(self, part_idx: int, n_rows: int) -> UnknownChunk:
        """Unknown chunk for ``n_rows`` unreachable rows of one partition,
        bounded by the partition's zone map when one is available."""
        stats: Dict[str, Tuple[float, float]] = {}
        try:
            synopses = self.store.synopses(self.table_name)
        except StorageError:
            synopses = []
        if 0 <= part_idx < len(synopses):
            synopsis = synopses[part_idx]
            stats = {
                name: (s.minimum, s.maximum)
                for name, s in synopsis.columns.items()
            }
        return UnknownChunk(n_rows=n_rows, stats=stats)

    def _stats_to_partial(self, query: AnalyticsQuery, stats):
        """Convert cached cell statistics into the aggregate's partial form."""
        name = query.aggregate.name
        if not stats:
            count = 0.0
            moments = (0.0, 0.0, 0.0)
        else:
            count = next(iter(stats.values()))[0]
        if name.startswith("count"):
            return count
        column = getattr(query.aggregate, "column", None)
        moments = stats.get(column, (0.0, 0.0, 0.0)) if stats else (0.0, 0.0, 0.0)
        if name.startswith("sum"):
            return moments[1]
        if name.startswith("mean"):
            return (moments[1], int(moments[0]))
        if name.startswith("std"):
            return (moments[1], moments[2], int(moments[0]))
        raise NotImplementedError(
            f"SegmentStatsCache supports count/sum/mean/std, not {name}"
        )


def _product(ranges):
    """Cartesian product of index ranges as tuples (tiny itertools.product)."""
    if not ranges:
        yield ()
        return
    first, *rest = ranges
    for head in first:
        for tail in _product(rest):
            yield (head, *tail)
