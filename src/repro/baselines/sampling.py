"""BlinkDB-like stratified-sampling AQP engine [17].

Offline, the engine draws a stratified row sample of each table: rows are
binned by a coarse grid over the queried dimensions and each stratum is
sampled at ``sample_rate`` (with a per-stratum minimum, so rare strata stay
represented — the point of stratification).  The sample is itself stored
across cluster nodes, "created and maintained over a distributed file
system" exactly as Sec. II describes, so answering still costs a
(smaller) distributed scan.

Count/sum answers are scaled by the inverse sampling fraction of each
stratum; mean/std/correlation use the sample directly.  Accuracy degrades
for selective queries — few sampled rows fall inside a small subspace —
which is the weakness the paper contrasts P2 against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.rng import SeedLike, make_rng
from repro.common.validation import require, require_in_range
from repro.cluster.storage import DistributedStore
from repro.data.tabular import Table
from repro.engine.bdas import BDASStack
from repro.queries.query import AnalyticsQuery, Answer


class SamplingAQPEngine:
    """Approximate answers from a stratified sample of the base data."""

    def __init__(
        self,
        store: DistributedStore,
        sample_rate: float = 0.05,
        strata_per_dim: int = 8,
        min_stratum_rows: int = 4,
        seed: SeedLike = 0,
    ) -> None:
        require_in_range(sample_rate, "sample_rate", 0.0, 1.0, inclusive=False)
        require(strata_per_dim >= 1, "strata_per_dim must be >= 1")
        self.store = store
        self.sample_rate = sample_rate
        self.strata_per_dim = strata_per_dim
        self.min_stratum_rows = min_stratum_rows
        self._rng = make_rng(seed)
        self.stack = BDASStack()
        # table -> (sample Table, per-row inverse inclusion weight)
        self._samples: Dict[str, Tuple[Table, np.ndarray]] = {}

    # Offline preparation -------------------------------------------------
    def build_sample(self, table_name: str, stratify_on: List[str]) -> int:
        """Draw and register the stratified sample; returns its row count."""
        stored = self.store.table(table_name)
        full = stored.full_table()
        strata = self._stratum_ids(full, stratify_on)
        keep = np.zeros(full.n_rows, dtype=bool)
        weights = np.ones(full.n_rows)
        for stratum in np.unique(strata):
            members = np.flatnonzero(strata == stratum)
            want = max(
                self.min_stratum_rows, int(round(self.sample_rate * members.size))
            )
            want = min(want, members.size)
            chosen = self._rng.choice(members, size=want, replace=False)
            keep[chosen] = True
            weights[chosen] = members.size / want
        sample = full.select(keep)
        self._samples[table_name] = (sample, weights[keep])
        return sample.n_rows

    def _stratum_ids(self, table: Table, stratify_on: List[str]) -> np.ndarray:
        """Grid-cell id per row over the stratification columns."""
        ids = np.zeros(table.n_rows, dtype=np.int64)
        for name in stratify_on:
            col = table.column(name).astype(float)
            lo, hi = float(col.min()), float(col.max())
            span = (hi - lo) or 1.0
            bins = np.clip(
                ((col - lo) / span * self.strata_per_dim).astype(int),
                0,
                self.strata_per_dim - 1,
            )
            ids = ids * self.strata_per_dim + bins
        return ids

    def sample_bytes(self, table_name: str) -> int:
        """Storage footprint of the sample (the paper's size criticism)."""
        sample, weights = self._samples[table_name]
        return sample.n_bytes + int(weights.nbytes)

    # Query answering -----------------------------------------------------
    def execute(self, query: AnalyticsQuery) -> Tuple[Answer, CostReport]:
        """Approximate answer from the sample, with a metered sample scan."""
        require(
            query.table_name in self._samples,
            f"no sample built for table {query.table_name!r}; "
            "call build_sample first",
        )
        sample, weights = self._samples[query.table_name]
        meter = CostMeter()
        # The sample lives distributed: scan it across the table's nodes.
        stored = self.store.table(query.table_name)
        nodes = stored.nodes
        share = sample.n_bytes // max(1, len(nodes))
        entry = self.store.topology.pick_coordinator()
        meter.advance(self.stack.charge_submission(meter, entry, nodes))
        slowest = 0.0
        for node_id in nodes:
            seconds = meter.charge_task_startup(node_id)
            seconds += share / meter.rates.disk_bytes_per_sec
            meter.charge_scan(node_id, share, rows=sample.n_rows // len(nodes))
            slowest = max(slowest, seconds)
        meter.advance(slowest)
        meter.advance(self.stack.charge_result_return(meter, entry))
        answer = self._estimate(query, sample, weights)
        return answer, meter.freeze()

    def _estimate(
        self, query: AnalyticsQuery, sample: Table, weights: np.ndarray
    ) -> Answer:
        mask = query.selection.mask(sample)
        hit = sample.select(mask)
        w = weights[mask]
        name = query.aggregate.name
        if name.startswith("count"):
            return float(w.sum())
        if name.startswith("sum"):
            column = query.aggregate.column
            return float((hit.column(column) * w).sum()) if hit.n_rows else 0.0
        # Non-scaled statistics straight off the sampled subset.
        return query.aggregate.compute(hit)


def uniform_sample_error_bound(n_sampled: int, confidence: float = 0.95) -> float:
    """Hoeffding-style relative half-width for a uniform-sample count.

    Used by tests to sanity-check that sampling error shrinks as 1/sqrt(n).
    """
    require(n_sampled >= 1, "n_sampled must be >= 1")
    z = {0.9: 1.645, 0.95: 1.96, 0.99: 2.576}.get(confidence, 1.96)
    return z / np.sqrt(n_sampled)
