"""The traditional exact path: every query is a full job over the BDAS.

This is Fig. 1 made executable.  Each analytical query becomes a MapReduce
job that scans *every* partition of the target table, computes per-partition
aggregate partials (or raw values for holistic aggregates), shuffles them to
a reducer and merges.  The answer is exact; the cost is what the paper
complains about: proportional to data size and node count, through all the
stack layers.

Zone-map pruning (on by default, ``pruning=False`` restores the seed
behaviour) intersects each query's bounding box with the stored table's
partition synopses before the fan-out: disjoint partitions are skipped,
fully covered range-selected partitions short-circuit decomposable
aggregates from synopsis statistics, and everything else scans.  Answers
are bit-identical either way — only the cost changes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.accounting import CostReport
from repro.common.errors import StorageError
from repro.cluster.storage import DistributedStore
from repro.data.tabular import Table
from repro.engine.bdas import BDASStack
from repro.engine.mapreduce import MapReduceEngine
from repro.engine.pruning import ScanPlan, plan_scan
from repro.engine.resources import ResourceManager
from repro.queries.query import AnalyticsQuery, Answer
from repro.queries.selections import batch_masks


class ExactEngine:
    """Exact analytical-query execution via MapReduce over the full table."""

    def __init__(
        self,
        store: DistributedStore,
        resources: Optional[ResourceManager] = None,
        stack: Optional[BDASStack] = None,
        rates=None,
        observer=None,
        pruning: bool = True,
    ) -> None:
        self.store = store
        self.pruning = pruning
        self._engine = MapReduceEngine(
            store, resources=resources, stack=stack, rates=rates, observer=observer
        )

    @property
    def observer(self):
        return self._engine.observer

    def attach_observer(self, observer) -> None:
        """Record traces/metrics for subsequent executions on ``observer``."""
        self._engine.attach_observer(observer)

    def plan_for(self, query: AnalyticsQuery) -> Optional[ScanPlan]:
        """Zone-map scan plan for one query, or None when pruning is off
        or the table's synopses are unavailable/misaligned."""
        if not self.pruning:
            return None
        try:
            synopses = self.store.synopses(query.table_name)
            stored = self.store.table(query.table_name)
        except StorageError:
            return None
        if len(synopses) != len(stored.partitions):
            return None
        return plan_scan(synopses, query.selection, query.aggregate, emit_key=0)

    def _note_plan(self, query: AnalyticsQuery, plan: Optional[ScanPlan]) -> None:
        obs = self._engine.observer
        if plan is None or not obs.enabled:
            return
        labels = {"table": query.table_name}
        obs.inc("prune_partitions_scanned_total", plan.n_scanned, **labels)
        obs.inc("prune_partitions_skipped_total", plan.n_skipped, **labels)
        obs.inc("prune_partitions_covered_total", plan.n_covered, **labels)
        obs.event(
            "pruning",
            table=query.table_name,
            aggregate=type(query.aggregate).__name__,
            scanned=plan.n_scanned,
            skipped=plan.n_skipped,
            covered=plan.n_covered,
        )

    def execute(self, query: AnalyticsQuery) -> Tuple[Answer, CostReport]:
        """Run ``query`` exactly; returns (answer, cost report)."""
        aggregate = query.aggregate
        selection = query.selection

        def map_fn(partition: Table):
            selected = partition.select(selection.mask(partition))
            return [(0, aggregate.partial(selected))]

        def reduce_fn(key, partials):
            return aggregate.merge(partials)

        plan = self.plan_for(query)
        self._note_plan(query, plan)
        results, report = self._engine.run(
            query.table_name, map_fn, reduce_fn, n_reducers=1, plan=plan
        )
        # Every partition pruned -> no map output reached the reducer; the
        # merge of zero partials is the same neutral answer the unpruned
        # job assembles from its all-empty selections.
        answer = results[0] if 0 in results else aggregate.merge([])
        return answer, report

    def execute_many(
        self, queries: Sequence[AnalyticsQuery]
    ) -> List[Tuple[Answer, CostReport]]:
        """Run many queries exactly as one shared-scan group per table.

        One real pass over each stored partition evaluates every query's
        selection mask and aggregate partial together (homogeneous range
        selections vectorize into one broadcast per column); the cost
        model still charges each query a full independent job, so query
        ``i``'s (answer, report) is identical to ``execute(queries[i])``.
        """
        out: List[Optional[Tuple[Answer, CostReport]]] = [None] * len(queries)
        by_table: Dict[str, List[int]] = {}
        for index, query in enumerate(queries):
            by_table.setdefault(query.table_name, []).append(index)
        for table_name, indices in by_table.items():
            group = [queries[i] for i in indices]
            selections = [q.selection for q in group]
            aggregates = [q.aggregate for q in group]
            plans = [self.plan_for(q) for q in group]
            for query, plan in zip(group, plans):
                self._note_plan(query, plan)
            if all(p is None for p in plans):
                plans = None

            def multi_map_fn(
                partition: Table,
                active=None,
                selections=selections,
                aggregates=aggregates,
            ):
                if active is None:
                    active = range(len(selections))
                masks = batch_masks([selections[j] for j in active], partition)
                return [
                    [(0, aggregates[j].partial_from_mask(partition, mask))]
                    for j, mask in zip(active, masks)
                ]

            reduce_fns = [
                (lambda key, partials, agg=aggregate: agg.merge(partials))
                for aggregate in aggregates
            ]
            job_results = self._engine.run_many(
                table_name, multi_map_fn, reduce_fns, n_reducers=1, plans=plans
            )
            for position, (index, (results, report)) in enumerate(
                zip(indices, job_results)
            ):
                answer = (
                    results[0]
                    if 0 in results
                    else aggregates[position].merge([])
                )
                out[index] = (answer, report)
        return out  # type: ignore[return-value]

    def ground_truth(self, query: AnalyticsQuery) -> Answer:
        """Answer without cost accounting (for evaluation harnesses)."""
        stored = self.store.table(query.table_name)
        partials = []
        for partition in stored.partitions:
            selected = partition.data.select(query.selection.mask(partition.data))
            partials.append(query.aggregate.partial(selected))
        return query.aggregate.merge(partials)
