"""The traditional exact path: every query is a full job over the BDAS.

This is Fig. 1 made executable.  Each analytical query becomes a MapReduce
job that scans *every* partition of the target table, computes per-partition
aggregate partials (or raw values for holistic aggregates), shuffles them to
a reducer and merges.  The answer is exact; the cost is what the paper
complains about: proportional to data size and node count, through all the
stack layers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.accounting import CostReport
from repro.cluster.storage import DistributedStore
from repro.data.tabular import Table
from repro.engine.bdas import BDASStack
from repro.engine.mapreduce import MapReduceEngine
from repro.engine.resources import ResourceManager
from repro.queries.query import AnalyticsQuery, Answer
from repro.queries.selections import batch_masks


class ExactEngine:
    """Exact analytical-query execution via MapReduce over the full table."""

    def __init__(
        self,
        store: DistributedStore,
        resources: Optional[ResourceManager] = None,
        stack: Optional[BDASStack] = None,
        rates=None,
        observer=None,
    ) -> None:
        self.store = store
        self._engine = MapReduceEngine(
            store, resources=resources, stack=stack, rates=rates, observer=observer
        )

    @property
    def observer(self):
        return self._engine.observer

    def attach_observer(self, observer) -> None:
        """Record traces/metrics for subsequent executions on ``observer``."""
        self._engine.attach_observer(observer)

    def execute(self, query: AnalyticsQuery) -> Tuple[Answer, CostReport]:
        """Run ``query`` exactly; returns (answer, cost report)."""
        aggregate = query.aggregate
        selection = query.selection

        def map_fn(partition: Table):
            selected = partition.select(selection.mask(partition))
            return [(0, aggregate.partial(selected))]

        def reduce_fn(key, partials):
            return aggregate.merge(partials)

        results, report = self._engine.run(
            query.table_name, map_fn, reduce_fn, n_reducers=1
        )
        return results[0], report

    def execute_many(
        self, queries: Sequence[AnalyticsQuery]
    ) -> List[Tuple[Answer, CostReport]]:
        """Run many queries exactly as one shared-scan group per table.

        One real pass over each stored partition evaluates every query's
        selection mask and aggregate partial together (homogeneous range
        selections vectorize into one broadcast per column); the cost
        model still charges each query a full independent job, so query
        ``i``'s (answer, report) is identical to ``execute(queries[i])``.
        """
        out: List[Optional[Tuple[Answer, CostReport]]] = [None] * len(queries)
        by_table: Dict[str, List[int]] = {}
        for index, query in enumerate(queries):
            by_table.setdefault(query.table_name, []).append(index)
        for table_name, indices in by_table.items():
            group = [queries[i] for i in indices]
            selections = [q.selection for q in group]
            aggregates = [q.aggregate for q in group]

            def multi_map_fn(
                partition: Table, selections=selections, aggregates=aggregates
            ):
                masks = batch_masks(selections, partition)
                return [
                    [(0, aggregate.partial_from_mask(partition, mask))]
                    for aggregate, mask in zip(aggregates, masks)
                ]

            reduce_fns = [
                (lambda key, partials, agg=aggregate: agg.merge(partials))
                for aggregate in aggregates
            ]
            job_results = self._engine.run_many(
                table_name, multi_map_fn, reduce_fns, n_reducers=1
            )
            for index, (results, report) in zip(indices, job_results):
                out[index] = (results[0], report)
        return out  # type: ignore[return-value]

    def ground_truth(self, query: AnalyticsQuery) -> Answer:
        """Answer without cost accounting (for evaluation harnesses)."""
        stored = self.store.table(query.table_name)
        partials = []
        for partition in stored.partitions:
            selected = partition.data.select(query.selection.mask(partition.data))
            partials.append(query.aggregate.partial(selected))
        return query.aggregate.merge(partials)
