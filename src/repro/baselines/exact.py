"""The traditional exact path: every query is a full job over the BDAS.

This is Fig. 1 made executable.  Each analytical query becomes a MapReduce
job that scans *every* partition of the target table, computes per-partition
aggregate partials (or raw values for holistic aggregates), shuffles them to
a reducer and merges.  The answer is exact; the cost is what the paper
complains about: proportional to data size and node count, through all the
stack layers.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.common.accounting import CostReport
from repro.cluster.storage import DistributedStore
from repro.data.tabular import Table
from repro.engine.bdas import BDASStack
from repro.engine.mapreduce import MapReduceEngine
from repro.engine.resources import ResourceManager
from repro.queries.query import AnalyticsQuery, Answer


class ExactEngine:
    """Exact analytical-query execution via MapReduce over the full table."""

    def __init__(
        self,
        store: DistributedStore,
        resources: Optional[ResourceManager] = None,
        stack: Optional[BDASStack] = None,
        rates=None,
        observer=None,
    ) -> None:
        self.store = store
        self._engine = MapReduceEngine(
            store, resources=resources, stack=stack, rates=rates, observer=observer
        )

    @property
    def observer(self):
        return self._engine.observer

    def attach_observer(self, observer) -> None:
        """Record traces/metrics for subsequent executions on ``observer``."""
        self._engine.attach_observer(observer)

    def execute(self, query: AnalyticsQuery) -> Tuple[Answer, CostReport]:
        """Run ``query`` exactly; returns (answer, cost report)."""
        aggregate = query.aggregate
        selection = query.selection

        def map_fn(partition: Table):
            selected = partition.select(selection.mask(partition))
            return [(0, aggregate.partial(selected))]

        def reduce_fn(key, partials):
            return aggregate.merge(partials)

        results, report = self._engine.run(
            query.table_name, map_fn, reduce_fn, n_reducers=1
        )
        return results[0], report

    def ground_truth(self, query: AnalyticsQuery) -> Answer:
        """Answer without cost accounting (for evaluation harnesses)."""
        stored = self.store.table(query.table_name)
        partials = []
        for partition in stored.partitions:
            selected = partition.data.select(query.selection.mask(partition.data))
            partials.append(query.aggregate.partial(selected))
        return query.aggregate.merge(partials)
