"""The traditional exact path: every query is a full job over the BDAS.

This is Fig. 1 made executable.  Each analytical query becomes a MapReduce
job that scans *every* partition of the target table, computes per-partition
aggregate partials (or raw values for holistic aggregates), shuffles them to
a reducer and merges.  The answer is exact; the cost is what the paper
complains about: proportional to data size and node count, through all the
stack layers.

Zone-map pruning (on by default, ``pruning=False`` restores the seed
behaviour) intersects each query's bounding box with the stored table's
partition synopses before the fan-out: disjoint partitions are skipped,
fully covered range-selected partitions short-circuit decomposable
aggregates from synopsis statistics, and everything else scans.  Answers
are bit-identical either way — only the cost changes.

Under fault injection the engine reads through its
:class:`~repro.faults.FailoverPolicy` (retry, then replica failover).
When every replica of a needed partition is down, ``failure_mode``
decides the outcome: ``"fail"`` raises
:class:`~repro.common.errors.PartitionLostError`; ``"degrade"`` answers
from the survivors plus the lost partitions' zone-map synopses and
returns a :class:`~repro.faults.DegradedAnswer` carrying the exact
coverage fraction and deterministic error bounds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.common.accounting import CostReport
from repro.common.errors import StorageError
from repro.common.validation import require
from repro.cluster.storage import DistributedStore
from repro.data.tabular import Table
from repro.engine.bdas import BDASStack
from repro.engine.colscan import ColumnScan, scan_columns
from repro.engine.mapreduce import MapReduceEngine
from repro.engine.pruning import SCAN, SKIP, SYNOPSIS, ScanPlan, plan_scan, synopsis_partial
from repro.engine.resources import ResourceManager
from repro.engine.specs import BatchPartialSpec, QueryPartialSpec
from repro.faults.degraded import UnknownChunk, build_degraded_answer
from repro.faults.policy import FailoverPolicy
from repro.queries.query import AnalyticsQuery, Answer


class ExactEngine:
    """Exact analytical-query execution via MapReduce over the full table."""

    def __init__(
        self,
        store: DistributedStore,
        resources: Optional[ResourceManager] = None,
        stack: Optional[BDASStack] = None,
        rates=None,
        observer=None,
        pruning: bool = True,
        failure_mode: str = "fail",
        failover: Optional[FailoverPolicy] = None,
        executor=None,
    ) -> None:
        require(
            failure_mode in ("fail", "degrade"),
            f"unknown failure_mode {failure_mode!r}",
        )
        self.store = store
        self.pruning = pruning
        self.failure_mode = failure_mode
        self._engine = MapReduceEngine(
            store,
            resources=resources,
            stack=stack,
            rates=rates,
            observer=observer,
            failover=failover,
            executor=executor,
        )

    @property
    def executor(self):
        """The morsel pool shared with the underlying MapReduce engine."""
        return self._engine.executor

    @property
    def observer(self):
        return self._engine.observer

    def attach_observer(self, observer) -> None:
        """Record traces/metrics for subsequent executions on ``observer``."""
        self._engine.attach_observer(observer)

    def plan_for(self, query: AnalyticsQuery) -> Optional[ScanPlan]:
        """Zone-map scan plan for one query, or None when pruning is off
        or the table's synopses are unavailable/misaligned."""
        if not self.pruning:
            return None
        try:
            synopses = self.store.synopses(query.table_name)
            stored = self.store.table(query.table_name)
        except StorageError:
            return None
        if len(synopses) != len(stored.partitions):
            return None
        plan = plan_scan(synopses, query.selection, query.aggregate, emit_key=0)
        return self._downgrade_dirty(stored, plan, query)

    @staticmethod
    def _downgrade_dirty(stored, plan: ScanPlan, query: AnalyticsQuery) -> ScanPlan:
        """Re-verify zone-map shortcuts against staged delta writes.

        Base synopses describe base images only, so for a dirty
        partition a SYNOPSIS short-circuit is never sound (pending
        deletes or delta rows change the partial) and a SKIP survives
        only if the delta memtable is *also* disjoint from the query box
        (tombstones alone cannot un-skip: deletes only remove rows).
        """
        lows = highs = None
        for index, partition in enumerate(stored.partitions):
            delta = partition.delta
            if delta is None or not delta.dirty:
                continue
            action = plan.actions[index]
            if action == SYNOPSIS:
                plan.actions[index] = SCAN
                plan.pairs.pop(index, None)
                plan.synopsis_bytes.pop(index, None)
            elif action == SKIP and delta.n_rows:
                if lows is None:
                    lows, highs = query.selection.box()
                delta_synopsis = delta.synopsis()
                if delta_synopsis is None or not delta_synopsis.disjoint(
                    query.selection.columns, lows, highs
                ):
                    plan.actions[index] = SCAN
        return plan

    def scan_for(self, query: AnalyticsQuery) -> Optional[ColumnScan]:
        """Column-pruned scan for one query, or None (read full rows).

        Pushdown engages only when every partition of the table carries a
        columnar layout and the query's selection/aggregate column sets
        are statically known (:func:`scan_columns`); anything else falls
        back to the bit-identical row path.
        """
        try:
            stored = self.store.table(query.table_name)
        except StorageError:
            return None
        if not stored.columnar:
            return None
        if any(p.dirty for p in stored.partitions):
            # Encoded images cover base rows only; staged delta writes
            # force the row path until the next compaction re-encodes.
            return None
        return scan_columns(query.selection, query.aggregate)

    def _note_plan(
        self,
        query: AnalyticsQuery,
        plan: Optional[ScanPlan],
        scan: Optional[ColumnScan] = None,
    ) -> None:
        obs = self._engine.observer
        if not obs.enabled:
            return
        if plan is not None:
            labels = {"table": query.table_name}
            obs.inc("prune_partitions_scanned_total", plan.n_scanned, **labels)
            obs.inc("prune_partitions_skipped_total", plan.n_skipped, **labels)
            obs.inc("prune_partitions_covered_total", plan.n_covered, **labels)
            obs.event(
                "pruning",
                table=query.table_name,
                aggregate=type(query.aggregate).__name__,
                scanned=plan.n_scanned,
                skipped=plan.n_skipped,
                covered=plan.n_covered,
            )
        self._profile_plan(query, plan, scan=scan)

    def _profile_plan(
        self,
        query: AnalyticsQuery,
        plan: Optional[ScanPlan],
        lost: Optional[Set[int]] = None,
        pruned: Optional[bool] = None,
        scan: Optional[ColumnScan] = None,
    ) -> None:
        """Fold the per-partition plan tree into the query's flight record.

        ``plan=None`` profiles as an unpruned scan-everything plan.
        ``lost`` (degrade mode) re-labels partitions the fault layer
        could not read — unless the synopsis recovered them exactly —
        so a profile's per-partition ``read_bytes`` always reconcile
        with what the CostMeter actually charged.
        """
        obs = self._engine.observer
        if not obs.enabled:
            return
        try:
            stored = self.store.table(query.table_name)
        except StorageError:
            return
        if plan is not None and len(plan.actions) != len(stored.partitions):
            return
        partitions = []
        for index, partition in enumerate(stored.partitions):
            action = SCAN if plan is None else plan.actions[index]
            if action == SYNOPSIS:
                read_bytes = int(plan.synopsis_bytes.get(index, 0))
            elif action == SCAN and (lost is None or index not in lost):
                if scan is not None and partition.columnar is not None:
                    # Column-pruned encoded scan: the projected columns'
                    # encoded bytes — exactly what read_columns charges.
                    read_bytes = int(partition.columnar.column_bytes(scan.columns))
                else:
                    read_bytes = int(partition.stored_bytes)
            else:
                read_bytes = 0
                if lost is not None and index in lost:
                    action = "lost"
            delta = getattr(partition, "delta", None)
            partitions.append(
                (
                    action,
                    int(partition.n_rows),
                    int(partition.n_bytes),
                    read_bytes,
                    int(partition.stored_bytes),
                    int(delta.n_rows) if delta is not None else 0,
                )
            )
        obs.profile_note(
            "plan",
            query=query,
            pruned=plan is not None if pruned is None else pruned,
            partitions=partitions,
        )

    def _job_fns(self, query: AnalyticsQuery):
        aggregate = query.aggregate

        # The map kernel is a picklable spec (one code object shared by
        # the serial, thread, and process paths — see repro.engine.specs
        # for the encoded/row dispatch it preserves verbatim).
        map_fn = QueryPartialSpec(query.selection, aggregate)

        def reduce_fn(key, partials):
            return aggregate.merge(partials)

        return map_fn, reduce_fn

    def execute(self, query: AnalyticsQuery) -> Tuple[Answer, CostReport]:
        """Run ``query`` exactly; returns (answer, cost report).

        Under active fault injection with ``failure_mode="degrade"``,
        partitions with no live replica are answered from their zone-map
        synopses where that is exact and otherwise bounded, yielding a
        :class:`~repro.faults.DegradedAnswer` instead of an exact value.
        With ``failure_mode="fail"`` (the default) a lost partition
        raises :class:`~repro.common.errors.PartitionLostError`.
        """
        faults = self.store.faults
        if faults is not None and faults.active and self.failure_mode == "degrade":
            return self._execute_degraded(query)
        map_fn, reduce_fn = self._job_fns(query)
        plan = self.plan_for(query)
        scan = self.scan_for(query)
        self._note_plan(query, plan, scan=scan)
        with self._engine.observer.profile_activate(query):
            results, report = self._engine.run(
                query.table_name,
                map_fn,
                reduce_fn,
                n_reducers=1,
                plan=plan,
                scan=scan,
            )
        # Every partition pruned -> no map output reached the reducer; the
        # merge of zero partials is the same neutral answer the unpruned
        # job assembles from its all-empty selections.
        answer = results[0] if 0 in results else query.aggregate.merge([])
        return answer, report

    def _aligned_synopses(self, stored) -> Optional[Sequence]:
        try:
            synopses = self.store.synopses(stored.name)
        except StorageError:
            return None
        if len(synopses) != len(stored.partitions):
            return None
        return synopses

    def _execute_degraded(self, query: AnalyticsQuery) -> Tuple[Answer, CostReport]:
        """Degrade-mode execution: survivors + synopses of the dead.

        Partitions whose every replica is down are reclassified before
        the fan-out: provably disjoint from the selection -> exact skip;
        fully covered by a box-exact selection with a decomposable
        aggregate -> the synopsis recovers the partial exactly;
        everything else -> skipped and accounted as an *unknown chunk*
        that widens the returned bounds.  Partitions lost mid-job (every
        replica exhausted its retries) are absorbed the same way.
        """
        aggregate = query.aggregate
        selection = query.selection
        faults = self.store.faults
        stored = self.store.table(query.table_name)
        synopses = self._aligned_synopses(stored)
        plan = self.plan_for(query)
        scan = self.scan_for(query)
        self._note_plan(query, plan, scan=scan)
        if plan is None:
            plan = ScanPlan.scan_everything(len(stored.partitions))

        lows, highs = selection.box()
        columns = selection.columns
        lost: Set[int] = set()
        unknown: Dict[int, UnknownChunk] = {}

        def absorb(index: int, statically: bool) -> None:
            """Reclassify one lost partition; exact where provable."""
            lost.add(index)
            synopsis = synopses[index] if synopses is not None else None
            if stored.partitions[index].dirty:
                # The base synopsis does not describe the staged delta
                # writes, so nothing about the lost partition is provable
                # — absorb it as a fully unknown chunk.
                synopsis = None
            if synopsis is not None:
                if synopsis.disjoint(columns, lows, highs):
                    # No selected row lives there: the skip is exact.
                    if statically:
                        plan.actions[index] = SKIP
                    return
                if (
                    statically
                    and selection.box_is_exact
                    and synopsis.covered_by(columns, lows, highs)
                ):
                    supported, partial = synopsis_partial(aggregate, synopsis)
                    if supported:
                        # Metadata recovers the partial bitwise.
                        plan.actions[index] = SYNOPSIS
                        plan.pairs[index] = [(0, partial)]
                        plan.synopsis_bytes[index] = synopsis.n_bytes
                        return
            if statically:
                plan.actions[index] = SKIP
            if synopsis is not None:
                unknown[index] = UnknownChunk.from_synopsis(synopsis)
            else:
                unknown[index] = UnknownChunk(
                    n_rows=stored.partitions[index].n_rows, stats={}
                )

        for index, partition in enumerate(stored.partitions):
            if plan.actions[index] != SCAN:
                continue  # the plan never touches this partition's data
            if all(faults.is_down(n) for n in partition.all_nodes):
                absorb(index, statically=True)

        map_fn, reduce_fn = self._job_fns(query)
        lost_mid_job: List[int] = []
        obs = self._engine.observer
        with obs.profile_activate(query):
            results, report = self._engine.run(
                query.table_name,
                map_fn,
                reduce_fn,
                n_reducers=1,
                plan=plan,
                on_lost="skip",
                lost=lost_mid_job,
                scan=scan,
            )
        for index in lost_mid_job:
            absorb(index, statically=False)
        # absorb() rewrote plan.actions for lost partitions; re-note so the
        # profile's per-partition tree reflects what was actually read.
        if lost:
            self._profile_plan(
                query, plan, lost=lost, pruned=self.pruning, scan=scan
            )
        value = results[0] if 0 in results else aggregate.merge([])
        if not lost:
            return value, report
        answer = build_degraded_answer(
            aggregate,
            selection,
            value,
            [unknown[i] for i in sorted(unknown)],
            lost_partitions=sorted(lost),
            unknown_partitions=sorted(unknown),
            total_rows=stored.n_rows,
        )
        if obs.enabled:
            obs.inc("fault_degraded_answers_total", table=stored.name)
            obs.event(
                "degraded_answer",
                table=stored.name,
                aggregate=type(aggregate).__name__,
                coverage=answer.coverage,
                bounded=answer.bounded,
                lost=list(answer.lost_partitions),
                unknown=list(answer.unknown_partitions),
            )
            obs.profile_note(
                "degraded",
                query=query,
                coverage=answer.coverage,
                lower=answer.lower,
                upper=answer.upper,
                bounded=answer.bounded,
                lost=list(answer.lost_partitions),
                unknown=list(answer.unknown_partitions),
            )
        return answer, report

    def execute_many(
        self, queries: Sequence[AnalyticsQuery]
    ) -> List[Tuple[Answer, CostReport]]:
        """Run many queries exactly as one shared-scan group per table.

        One real pass over each stored partition evaluates every query's
        selection mask and aggregate partial together (homogeneous range
        selections vectorize into one broadcast per column); the cost
        model still charges each query a full independent job, so query
        ``i``'s (answer, report) is identical to ``execute(queries[i])``.

        While faults are active the shared pass cannot replay each
        query's per-attempt fault draws, so the group falls back to
        sequential failure-aware :meth:`execute` calls.
        """
        faults = self.store.faults
        if faults is not None and faults.active:
            return [self.execute(query) for query in queries]
        out: List[Optional[Tuple[Answer, CostReport]]] = [None] * len(queries)
        by_table: Dict[str, List[int]] = {}
        for index, query in enumerate(queries):
            by_table.setdefault(query.table_name, []).append(index)
        for table_name, indices in by_table.items():
            group = [queries[i] for i in indices]
            selections = [q.selection for q in group]
            aggregates = [q.aggregate for q in group]
            plans = [self.plan_for(q) for q in group]
            scans: Optional[List[Optional[ColumnScan]]] = [
                self.scan_for(q) for q in group
            ]
            for query, plan, scan in zip(group, plans, scans):
                self._note_plan(query, plan, scan=scan)
            if all(p is None for p in plans):
                plans = None
            if all(s is None for s in scans):
                scans = None

            # The shared batch-pass kernel is a picklable spec holding
            # the group's selections/aggregates and their precomputed
            # column sets; its encoded/row dispatch (broadcast masks +
            # per-job late-materialized partials) is the historical
            # ``multi_map_fn`` closure verbatim — see
            # :class:`repro.engine.specs.BatchPartialSpec`.
            multi_map_fn = BatchPartialSpec(selections, aggregates)

            reduce_fns = [
                (lambda key, partials, agg=aggregate: agg.merge(partials))
                for aggregate in aggregates
            ]
            job_results = self._engine.run_many(
                table_name,
                multi_map_fn,
                reduce_fns,
                n_reducers=1,
                plans=plans,
                profile_targets=group,
                scans=scans,
            )
            for position, (index, (results, report)) in enumerate(
                zip(indices, job_results)
            ):
                answer = (
                    results[0]
                    if 0 in results
                    else aggregates[position].merge([])
                )
                out[index] = (answer, report)
        return out  # type: ignore[return-value]

    def ground_truth(self, query: AnalyticsQuery) -> Answer:
        """Answer without cost accounting (for evaluation harnesses)."""
        stored = self.store.table(query.table_name)
        partials = []
        for partition in stored.partitions:
            view = partition.read_view()
            mask = query.selection.mask(view)
            partials.append(query.aggregate.partial_from_mask(view, mask))
        return query.aggregate.merge(partials)
