"""Baseline analytics engines the paper positions SEA against (Sec. II).

* :class:`repro.baselines.exact.ExactEngine` — the traditional path of
  Fig. 1: every query is a full MapReduce job over the BDAS.
* :class:`repro.baselines.sampling.SamplingAQPEngine` — a BlinkDB-like
  stratified-sampling approximate engine [17].
* :class:`repro.baselines.canopy.SegmentStatsCache` — a Data-Canopy-like
  cache of chunk-level statistics [20].
* :class:`repro.baselines.dbl.DBLEngine` — a DBL-like learner that starts
  from the AQP engine's answers and learns to correct them [19].
* :class:`repro.baselines.sketch.SketchAQPEngine` — a count-min-synopsis
  engine for 1-d range counts [16].
"""

from repro.baselines.exact import ExactEngine
from repro.baselines.sampling import SamplingAQPEngine
from repro.baselines.canopy import SegmentStatsCache
from repro.baselines.dbl import DBLEngine
from repro.baselines.sketch import SketchAQPEngine

__all__ = [
    "ExactEngine",
    "SamplingAQPEngine",
    "SegmentStatsCache",
    "DBLEngine",
    "SketchAQPEngine",
]
