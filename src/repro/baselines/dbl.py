"""DBL-like "database learning" on top of an AQP engine [19].

DBL observes (query, approximate answer, exact answer) triples and learns
to correct the AQP engine's error, so "the system can learn from past
behavior and gradually improve performance".  The paper's criticisms,
reproduced here by construction:

* it inherits the AQP engine's storage and initial error ("they inherit
  the aforementioned limitations ... and an initial (typically large)
  error");
* it "requires large storage space to manage previous queries and
  answers" — the learner keeps every past (query vector, residual) pair,
  so its footprint grows linearly with the workload (contrast
  :meth:`repro.core.predictor.DatalessPredictor.state_bytes`, which is
  bounded).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.common.accounting import CostReport
from repro.common.validation import require
from repro.baselines.sampling import SamplingAQPEngine
from repro.ml.linear import RidgeRegression
from repro.queries.query import AnalyticsQuery, Answer


_RATIO_FLOOR = 1.0


def _log_ratio(exact: float, approx: float) -> float:
    """Signed multiplicative residual, floored away from zero."""
    return float(
        np.log(max(exact, 0.0) + _RATIO_FLOOR)
        - np.log(max(approx, 0.0) + _RATIO_FLOOR)
    )


def _apply_log_ratio(approx: float, log_ratio: float) -> float:
    corrected = (max(approx, 0.0) + _RATIO_FLOOR) * np.exp(log_ratio) - _RATIO_FLOOR
    return float(max(corrected, 0.0))


class DBLEngine:
    """Residual-learning wrapper over a sampling AQP engine."""

    def __init__(
        self,
        aqp: SamplingAQPEngine,
        min_training: int = 20,
        ridge_alpha: float = 1.0,
        refit_every: int = 10,
    ) -> None:
        require(min_training >= 3, "min_training must be >= 3")
        self.aqp = aqp
        self.min_training = min_training
        self.refit_every = refit_every
        self._vectors: List[np.ndarray] = []
        self._residuals: List[float] = []
        self._model: Optional[RidgeRegression] = None
        self._alpha = ridge_alpha
        self._since_fit = 0

    # Learning ----------------------------------------------------------
    def learn(self, query: AnalyticsQuery, exact_answer: float) -> None:
        """Record one past (query, exact answer) to improve future answers.

        The residual is the *log-ratio* of exact to approximate answer, so
        the learned correction is multiplicative — additive corrections
        would routinely drive small counts negative.
        """
        approx, _ = self.aqp.execute(query)
        self._vectors.append(query.vector())
        self._residuals.append(_log_ratio(float(exact_answer), float(approx)))
        self._since_fit += 1
        if (
            len(self._vectors) >= self.min_training
            and self._since_fit >= self.refit_every
        ):
            self._refit()

    # Answering -----------------------------------------------------------
    def execute(self, query: AnalyticsQuery) -> Tuple[Answer, CostReport]:
        """AQP answer plus the learned correction (when trained)."""
        approx, report = self.aqp.execute(query)
        if self._model is None and len(self._vectors) >= self.min_training:
            self._refit()
        if self._model is not None:
            log_ratio = float(
                self._model.predict(query.vector().reshape(1, -1))[0]
            )
            approx = _apply_log_ratio(float(approx), log_ratio)
        return approx, report

    # Introspection ---------------------------------------------------------
    def state_bytes(self) -> int:
        """Learner footprint: every stored past query + the sample itself."""
        history = sum(v.nbytes for v in self._vectors) + 8 * len(self._residuals)
        samples = sum(
            self.aqp.sample_bytes(name) for name in self.aqp._samples
        )
        return history + samples

    @property
    def n_observed(self) -> int:
        return len(self._vectors)

    def _refit(self) -> None:
        x = np.asarray(self._vectors)
        y = np.asarray(self._residuals)
        self._model = RidgeRegression(alpha=self._alpha).fit(x, y)
        self._since_fit = 0
