"""Subgraph pattern matching with a semantic query cache ([34], [35]).

The data graph is vertex-partitioned across cluster nodes; fetching a
vertex's adjacency list is a metered point-read from the node that owns
it.  :class:`SubgraphMatcher` finds all label-preserving subgraph
isomorphism embeddings of a small query pattern by backtracking search
(VF2-style candidate filtering on labels and degrees), fetching adjacency
lazily.

:class:`SemanticGraphCache` is the GraphCache idea: it remembers
(query graph -> embeddings).  A new query is served by

* an *exact hit* — an isomorphic cached query: zero graph access;
* a *subsumption hit* — some cached query is a sub-pattern of the new
  one: search restarts from the cached embeddings' neighbourhoods instead
  of the whole graph, slashing adjacency fetches;
* a *miss* — full matcher run, after which the result is cached.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.rng import SeedLike, make_rng
from repro.common.validation import require
from repro.cluster.topology import ClusterTopology

_EDGE_BYTES = 16
_VERTEX_BYTES = 24


class QueryGraph:
    """A small labelled pattern graph (undirected)."""

    def __init__(self, labels: Sequence[str], edges: Sequence[Tuple[int, int]]) -> None:
        require(len(labels) >= 1, "pattern needs at least one vertex")
        self.labels = tuple(labels)
        self.edges = tuple(
            (min(u, v), max(u, v)) for u, v in edges if u != v
        )
        n = len(labels)
        for u, v in self.edges:
            require(0 <= u < n and 0 <= v < n, f"edge ({u},{v}) out of range")
        self.adjacency: Dict[int, List[int]] = defaultdict(list)
        for u, v in self.edges:
            self.adjacency[u].append(v)
            self.adjacency[v].append(u)

    @property
    def n_vertices(self) -> int:
        return len(self.labels)

    def degree(self, vertex: int) -> int:
        return len(self.adjacency[vertex])

    def canonical_key(self) -> str:
        """Isomorphism-invariant key (exact for the small patterns used).

        Combines sorted labels with sorted label-pair edge multiset and a
        degree-label refinement — a practical canonical form for patterns
        of <= ~8 vertices with labels.
        """
        label_degrees = sorted(
            f"{self.labels[v]}#{self.degree(v)}" for v in range(self.n_vertices)
        )
        edge_labels = sorted(
            "|".join(sorted((self.labels[u], self.labels[v])))
            for u, v in self.edges
        )
        return ";".join(label_degrees) + "//" + ";".join(edge_labels)

    def contains_pattern(self, other: "QueryGraph") -> Optional[Dict[int, int]]:
        """If ``other`` embeds into self, return one vertex mapping."""
        matcher = _PatternMatcher(self, other)
        return matcher.first_embedding()


class _PatternMatcher:
    """Tiny in-memory pattern-in-pattern matcher (for subsumption checks)."""

    def __init__(self, host: QueryGraph, pattern: QueryGraph) -> None:
        self.host = host
        self.pattern = pattern

    def first_embedding(self) -> Optional[Dict[int, int]]:
        order = sorted(
            range(self.pattern.n_vertices),
            key=lambda v: -self.pattern.degree(v),
        )
        return self._extend(order, 0, {})

    def _extend(self, order, pos, mapping) -> Optional[Dict[int, int]]:
        if pos == len(order):
            return dict(mapping)
        p_vertex = order[pos]
        for h_vertex in range(self.host.n_vertices):
            if h_vertex in mapping.values():
                continue
            if self.host.labels[h_vertex] != self.pattern.labels[p_vertex]:
                continue
            if self.host.degree(h_vertex) < self.pattern.degree(p_vertex):
                continue
            consistent = all(
                (mapping[p_nb] in self.host.adjacency[h_vertex])
                for p_nb in self.pattern.adjacency[p_vertex]
                if p_nb in mapping
            )
            if not consistent:
                continue
            mapping[p_vertex] = h_vertex
            found = self._extend(order, pos + 1, mapping)
            if found is not None:
                return found
            del mapping[p_vertex]
        return None


class GraphStore:
    """A labelled data graph vertex-partitioned across cluster nodes."""

    def __init__(
        self,
        topology: ClusterTopology,
        labels: Sequence[str],
        edges: Sequence[Tuple[int, int]],
    ) -> None:
        self.topology = topology
        self.labels = list(labels)
        self.adjacency: Dict[int, List[int]] = defaultdict(list)
        n = len(self.labels)
        for u, v in edges:
            require(0 <= u < n and 0 <= v < n, f"edge ({u},{v}) out of range")
            if v not in self.adjacency[u]:
                self.adjacency[u].append(v)
            if u not in self.adjacency[v]:
                self.adjacency[v].append(u)
        node_ids = topology.node_ids
        self._owner = {v: node_ids[v % len(node_ids)] for v in range(n)}
        self._by_label: Dict[str, List[int]] = defaultdict(list)
        for v, label in enumerate(self.labels):
            self._by_label[label].append(v)

    @classmethod
    def from_networkx(
        cls,
        topology: ClusterTopology,
        graph,
        label_attribute: str = "label",
        default_label: str = "A",
    ) -> "GraphStore":
        """Build a store from a ``networkx`` graph.

        Node labels come from ``label_attribute`` (falling back to
        ``default_label``); node identifiers may be arbitrary hashables
        and are mapped to dense integer ids in sorted order.
        """
        nodes = sorted(graph.nodes, key=repr)
        id_of = {node: i for i, node in enumerate(nodes)}
        labels = [
            str(graph.nodes[node].get(label_attribute, default_label))
            for node in nodes
        ]
        edges = [(id_of[u], id_of[v]) for u, v in graph.edges]
        return cls(topology, labels, edges)

    def to_networkx(self):
        """Export the data graph as a ``networkx.Graph`` (labels attached)."""
        import networkx as nx

        graph = nx.Graph()
        for vertex, label in enumerate(self.labels):
            graph.add_node(vertex, label=label)
        for u, neighbors in self.adjacency.items():
            for v in neighbors:
                if u < v:
                    graph.add_edge(u, v)
        return graph

    @classmethod
    def random(
        cls,
        topology: ClusterTopology,
        n_vertices: int,
        avg_degree: float = 4.0,
        label_alphabet: Sequence[str] = ("A", "B", "C", "D"),
        seed: SeedLike = None,
    ) -> "GraphStore":
        """Random labelled graph with mild community structure."""
        require(n_vertices >= 2, "need at least two vertices")
        rng = make_rng(seed)
        labels = [label_alphabet[int(i)] for i in rng.integers(len(label_alphabet), size=n_vertices)]
        n_edges = int(n_vertices * avg_degree / 2)
        # Mix of local (community-ish) and random edges.
        edges = []
        for _ in range(n_edges):
            u = int(rng.integers(n_vertices))
            if rng.uniform() < 0.5:
                v = int(np.clip(u + rng.integers(-16, 17), 0, n_vertices - 1))
            else:
                v = int(rng.integers(n_vertices))
            if u != v:
                edges.append((u, v))
        return cls(topology, labels, edges)

    @property
    def n_vertices(self) -> int:
        return len(self.labels)

    def vertices_with_label(self, label: str) -> List[int]:
        return list(self._by_label.get(label, ()))

    def owner(self, vertex: int) -> str:
        return self._owner[vertex]

    def fetch_adjacency(self, vertex: int, meter: CostMeter) -> List[int]:
        """Metered adjacency-list read from the owning node."""
        neighbors = self.adjacency.get(vertex, [])
        num_bytes = _VERTEX_BYTES + _EDGE_BYTES * len(neighbors)
        meter.charge_scan(self._owner[vertex], num_bytes, rows=1)
        return list(neighbors)

    def fetch_label(self, vertex: int, meter: CostMeter) -> str:
        meter.charge_scan(self._owner[vertex], _VERTEX_BYTES, rows=1)
        return self.labels[vertex]

    def total_bytes(self) -> int:
        edges = sum(len(nb) for nb in self.adjacency.values())
        return self.n_vertices * _VERTEX_BYTES + edges * _EDGE_BYTES


class SubgraphMatcher:
    """Backtracking subgraph-isomorphism over the distributed graph."""

    def __init__(self, store: GraphStore, max_embeddings: int = 1000) -> None:
        require(max_embeddings >= 1, "max_embeddings must be >= 1")
        self.store = store
        self.max_embeddings = max_embeddings

    def match(
        self,
        query: QueryGraph,
        meter: Optional[CostMeter] = None,
        seeds: Optional[List[int]] = None,
    ) -> Tuple[List[Tuple[int, ...]], CostReport]:
        """All embeddings (vertex tuples in query order), metered.

        ``seeds`` optionally restricts the anchor vertex's candidates —
        the hook the semantic cache uses for subsumption-accelerated runs.
        """
        meter = meter or CostMeter()
        node_sec_before = meter.freeze().node_sec
        order = self._matching_order(query)
        anchor = order[0]
        candidates = self.store.vertices_with_label(query.labels[anchor])
        if seeds is not None:
            seed_set = set(seeds)
            candidates = [v for v in candidates if v in seed_set]
        embeddings: List[Tuple[int, ...]] = []
        adjacency_cache: Dict[int, List[int]] = {}
        for candidate in candidates:
            if len(embeddings) >= self.max_embeddings:
                break
            self._extend(
                query, order, 1, {anchor: candidate}, embeddings, meter,
                adjacency_cache,
            )
        # Critical path: the fetches above happen sequentially from the
        # coordinator's perspective, so elapsed time equals the work done.
        delta = meter.freeze().node_sec - node_sec_before
        meter.advance(max(0.0, delta))
        return embeddings, meter.freeze()

    def _matching_order(self, query: QueryGraph) -> List[int]:
        """Anchor at the rarest-label, highest-degree vertex; BFS outwards."""
        def rarity(v: int) -> Tuple[int, int]:
            label_count = len(self.store.vertices_with_label(query.labels[v]))
            return (label_count, -query.degree(v))

        anchor = min(range(query.n_vertices), key=rarity)
        order = [anchor]
        frontier = list(query.adjacency[anchor])
        visited = {anchor}
        while len(order) < query.n_vertices:
            next_vertex = None
            for v in frontier:
                if v not in visited:
                    next_vertex = v
                    break
            if next_vertex is None:
                remaining = [v for v in range(query.n_vertices) if v not in visited]
                next_vertex = remaining[0]
            visited.add(next_vertex)
            order.append(next_vertex)
            frontier.extend(query.adjacency[next_vertex])
        return order

    def _extend(
        self,
        query: QueryGraph,
        order: List[int],
        pos: int,
        mapping: Dict[int, int],
        embeddings: List[Tuple[int, ...]],
        meter: CostMeter,
        adjacency_cache: Dict[int, List[int]],
    ) -> None:
        if len(embeddings) >= self.max_embeddings:
            return
        if pos == len(order):
            embeddings.append(
                tuple(mapping[v] for v in range(query.n_vertices))
            )
            return
        q_vertex = order[pos]
        mapped_neighbors = [
            v for v in query.adjacency[q_vertex] if v in mapping
        ]
        if mapped_neighbors:
            # Candidates must be graph-neighbours of an already mapped vertex.
            pivot = mapping[mapped_neighbors[0]]
            candidates = self._adjacency(pivot, meter, adjacency_cache)
        else:
            candidates = self.store.vertices_with_label(query.labels[q_vertex])
        used = set(mapping.values())
        for candidate in candidates:
            if candidate in used:
                continue
            if self.store.labels[candidate] != query.labels[q_vertex]:
                continue
            ok = True
            for q_nb in mapped_neighbors:
                nb_adj = self._adjacency(mapping[q_nb], meter, adjacency_cache)
                if candidate not in nb_adj:
                    ok = False
                    break
            if not ok:
                continue
            mapping[q_vertex] = candidate
            self._extend(
                query, order, pos + 1, mapping, embeddings, meter, adjacency_cache
            )
            del mapping[q_vertex]

    def _adjacency(self, vertex: int, meter: CostMeter, cache: Dict[int, List[int]]):
        if vertex not in cache:
            cache[vertex] = self.store.fetch_adjacency(vertex, meter)
        return cache[vertex]


class SemanticGraphCache:
    """GraphCache-style semantic cache over subgraph query results."""

    def __init__(self, matcher: SubgraphMatcher) -> None:
        self.matcher = matcher
        self._exact: Dict[str, List[Tuple[int, ...]]] = {}
        self._patterns: List[Tuple[QueryGraph, List[Tuple[int, ...]]]] = []
        self.exact_hits = 0
        self.subsumption_hits = 0
        self.misses = 0

    def query(self, pattern: QueryGraph) -> Tuple[List[Tuple[int, ...]], CostReport]:
        """Answer a pattern query through the cache."""
        key = pattern.canonical_key()
        if key in self._exact:
            self.exact_hits += 1
            meter = CostMeter()
            meter.charge_cpu("graph-cache", 1024)
            meter.advance(meter.freeze().node_sec)  # a hash lookup
            return list(self._exact[key]), meter.freeze()
        seeds = self._subsumption_seeds(pattern)
        if seeds is not None:
            self.subsumption_hits += 1
            embeddings, report = self.matcher.match(pattern, seeds=seeds)
        else:
            self.misses += 1
            embeddings, report = self.matcher.match(pattern)
        self._exact[key] = list(embeddings)
        self._patterns.append((pattern, list(embeddings)))
        return embeddings, report

    def _subsumption_seeds(self, pattern: QueryGraph) -> Optional[List[int]]:
        """Anchor seeds from a cached sub-pattern of ``pattern``, if any.

        If a cached pattern embeds into the new pattern, every embedding
        of the new pattern must map some vertex onto a vertex used by a
        cached embedding of the sub-pattern; we seed the anchor candidates
        with the cached embeddings' vertices and their neighbourhoods.
        """
        for cached_pattern, cached_embeddings in self._patterns:
            if cached_pattern.n_vertices >= pattern.n_vertices:
                continue
            mapping = pattern.contains_pattern(cached_pattern)
            if mapping is None or not cached_embeddings:
                continue
            store = self.matcher.store
            seed_vertices = set()
            for embedding in cached_embeddings:
                for vertex in embedding:
                    seed_vertices.add(vertex)
                    seed_vertices.update(store.adjacency.get(vertex, ()))
            return sorted(seed_vertices)
        return None

    def state_bytes(self) -> int:
        total = 0
        for key, embeddings in self._exact.items():
            total += len(key) + sum(8 * len(e) for e in embeddings)
        return total
