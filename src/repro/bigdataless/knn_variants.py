"""kNN query variants (RT2.1): reverse kNN and approximate kNN.

"kNN query processing (and its variants, such as Reverse kNN, kNN joins,
all-pair and approximate kNN, etc.)"

* :class:`ReverseKNN` — all points p whose own k nearest neighbours
  include the query point q.  Exact for 2-d data via the classic
  six-sector pruning (Stanoi et al.): in the plane, only the k nearest
  points to q *within each 60-degree sector around q* can possibly have q
  among their k nearest — at most ``6k`` candidates — and each candidate
  is then verified with one surgical kNN probe.
* :class:`ApproximateKNN` — kNN with a bounded approximation: the first
  candidate fetch is *not* widened when it under-covers; instead the best
  available candidates are returned along with a certified distance bound
  (every returned distance is exact; missed true neighbours, if any, lie
  beyond the searched radius).  Cuts the widening round trips the exact
  operator pays in sparse regions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.validation import require
from repro.cluster.storage import DistributedStore
from repro.data.tabular import Table
from repro.engine.coordinator import CoordinatorEngine
from repro.bigdataless.index import DistributedGridIndex
from repro.bigdataless.knn import CoordinatorKNN


def reverse_knn_reference(
    table: Table, columns: Sequence[str], point, k: int
) -> List[int]:
    """Ground truth: rows whose k nearest *other* rows include ``point``.

    ``point`` is treated as an extra, external point: row p is a reverse
    neighbour if fewer than k stored rows (excluding p itself) are closer
    to p than ``point`` is.
    """
    points = table.matrix(columns)
    q = np.asarray(point, dtype=float).ravel()
    out = []
    for i, p in enumerate(points):
        d_pq = float(np.linalg.norm(p - q))
        diff = points - p
        dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        closer = int((dist < d_pq).sum()) - (1 if d_pq > 0 else 0)
        # Exclude p itself (distance 0 counts as "closer" unless p == q).
        closer = int(np.sum((dist < d_pq)) - 1)
        if closer < k:
            out.append(i)
    return sorted(out)


class ReverseKNN:
    """Exact 2-d reverse-kNN via six-sector candidates + surgical checks."""

    def __init__(self, store: DistributedStore, index: DistributedGridIndex) -> None:
        require(index.is_built, "grid index must be built first")
        require(
            len(index.columns) == 2,
            "the six-sector RkNN algorithm is defined for 2-d data",
        )
        self.store = store
        self.index = index
        self.columns = index.columns
        self._knn = CoordinatorKNN(store, index)
        self._coordinator = CoordinatorEngine(store)

    def query(
        self, table_name: str, point, k: int
    ) -> Tuple[List[int], CostReport]:
        """Global row ids of the reverse k-nearest neighbours of ``point``."""
        require(k >= 1, "k must be >= 1")
        require(
            table_name == self.index.table_name,
            f"index covers {self.index.table_name!r}",
        )
        q = np.asarray(point, dtype=float).ravel()
        meter = CostMeter()
        stored = self.store.table(table_name)
        offsets = {}
        running = 0
        for idx, partition in enumerate(stored.partitions):
            offsets[idx] = running
            running += partition.n_rows
        candidates = self._sector_candidates(stored, q, k, meter, offsets)
        results: List[int] = []
        for global_id, candidate in candidates:
            if self._q_in_knn_of(stored, candidate, q, k, meter):
                results.append(global_id)
        return sorted(results), meter.freeze()

    # Candidate generation ----------------------------------------------------
    def _sector_candidates(self, stored, q, k, meter, offsets):
        """k nearest points to q per 60-degree sector (<= 6k candidates).

        Fetched via expanding rings of grid cells around q; a sector's
        candidate list is final once it holds k points nearer than the
        next unexplored ring can offer.
        """
        n_sectors = 6
        per_sector: List[List[Tuple[float, int, np.ndarray]]] = [
            [] for _ in range(n_sectors)
        ]
        cell_width = float((self.index._span / self.index.cells_per_dim).max())
        center_cell = self.index._clip_cell(q)
        seen_cells = set()
        for ring in range(self.index.cells_per_dim + 1):
            lo = np.maximum(center_cell - ring, 0)
            hi = np.minimum(center_cell + ring, self.index.cells_per_dim - 1)
            ring_keys = [
                key
                for key in self.index.cells_for_box(
                    self.index._lows + lo / self.index.cells_per_dim * self.index._span,
                    self.index._lows
                    + (hi + 1) / self.index.cells_per_dim * self.index._span,
                )
                if key not in seen_cells
            ]
            seen_cells.update(ring_keys)
            if ring_keys:
                rows = self.index.rows_for_cells(ring_keys)
                data, _ = self._coordinator.fetch_rows(
                    stored, rows, meter, charge_stack=False
                )
                ids = [
                    offsets[part_idx] + row_idx
                    for part_idx in sorted(rows)
                    for row_idx in rows[part_idx]
                ]
                points = data.matrix(self.columns)
                for global_id, p in zip(ids, points):
                    d = float(np.linalg.norm(p - q))
                    sector = self._sector_of(p - q, n_sectors)
                    per_sector[sector].append((d, int(global_id), p))
            # Stop once every sector's k-th candidate beats the next ring.
            ring_floor = ring * cell_width
            done = all(
                len(sector) >= k
                and sorted(item[0] for item in sector)[k - 1] <= ring_floor
                for sector in per_sector
            )
            if done or len(seen_cells) >= len(self.index._stats):
                break
        candidates = []
        for sector in per_sector:
            sector.sort(key=lambda item: item[0])
            for d, global_id, p in sector[:k]:
                candidates.append((global_id, p))
        return candidates

    @staticmethod
    def _sector_of(offset: np.ndarray, n_sectors: int) -> int:
        angle = float(np.arctan2(offset[1], offset[0]))  # [-pi, pi]
        fraction = (angle + np.pi) / (2 * np.pi)
        return min(n_sectors - 1, int(fraction * n_sectors))

    # Verification -----------------------------------------------------------
    def _q_in_knn_of(self, stored, candidate, q, k, meter) -> bool:
        """Is q among the k nearest points to ``candidate``?

        Surgical check: count stored points strictly closer to the
        candidate than q is (the candidate itself excluded).
        """
        d_cq = float(np.linalg.norm(candidate - q))
        if d_cq == 0.0:
            return True
        keys = [
            key
            for key in self.index.cells_for_box(
                candidate - d_cq, candidate + d_cq
            )
            if self.index._cell_box_distance(key, candidate) <= d_cq
        ]
        rows = self.index.rows_for_cells(keys)
        data, _ = self._coordinator.fetch_rows(
            stored, rows, meter, charge_stack=False
        )
        points = data.matrix(self.columns)
        diff = points - candidate
        dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        closer = int((dist < d_cq).sum())
        # The candidate itself is among the fetched points at distance 0.
        closer -= 1
        return closer < k


class AllPairKNN:
    """All-pair (self-join) kNN: every stored row's k nearest other rows.

    The "all-pair kNN" of RT2.1 — a kNN join of the table with itself,
    with self-matches excluded.  Implemented on top of the surgical
    machinery: the grid index's cell cache makes each row's probe share
    reads with its neighbours, so the whole pass reads each cell once.
    """

    def __init__(self, store: DistributedStore, index: DistributedGridIndex) -> None:
        require(index.is_built, "grid index must be built first")
        self.store = store
        self.index = index
        self.columns = index.columns
        self._coordinator = CoordinatorEngine(store)

    def query(
        self, table_name: str, k: int
    ) -> Tuple[Dict[int, List[int]], CostReport]:
        """global_row -> sorted ids of its k nearest *other* rows."""
        require(k >= 1, "k must be >= 1")
        require(
            table_name == self.index.table_name,
            f"index covers {self.index.table_name!r}",
        )
        from repro.bigdataless.spatial import IndexedKNNJoin

        # Self-join with k+1 (each row finds itself first), then drop self.
        join = IndexedKNNJoin(self.store, self.index)
        raw, report = join.query(table_name, table_name, k + 1)
        stored = self.store.table(table_name)
        points = stored.full_table().matrix(self.columns)
        results: Dict[int, List[int]] = {}
        for row_id, neighbour_ids in raw.items():
            own = points[row_id]
            ranked = sorted(
                neighbour_ids,
                key=lambda j: float(np.linalg.norm(points[j] - own)),
            )
            trimmed = [j for j in ranked if j != row_id][:k]
            results[row_id] = sorted(trimmed)
        return results, report


class ApproximateKNN:
    """Single-round kNN with a certified search-radius bound."""

    def __init__(self, store: DistributedStore, index: DistributedGridIndex) -> None:
        require(index.is_built, "grid index must be built first")
        self.store = store
        self.index = index
        self.columns = index.columns
        self._coordinator = CoordinatorEngine(store)

    def query(
        self, table_name: str, point, k: int, inflation: float = 1.5
    ) -> Tuple[Table, float, CostReport]:
        """One-shot kNN: returns (rows, certified_radius, cost).

        The returned rows are the exact nearest neighbours *within*
        ``certified_radius`` of the query point; true neighbours beyond it
        (possible only when the single fetch under-covered) are traded for
        the saved widening rounds.
        """
        require(k >= 1, "k must be >= 1")
        require(
            table_name == self.index.table_name,
            f"index covers {self.index.table_name!r}",
        )
        q = np.asarray(point, dtype=float).ravel()
        meter = CostMeter()
        stored = self.store.table(table_name)
        radius = self.index.estimate_knn_radius(q, k, inflation=inflation)
        keys = [
            key
            for key in self.index.cells_for_box(q - radius, q + radius)
            if self.index._cell_box_distance(key, q) <= radius
        ]
        rows = self.index.rows_for_cells(keys)
        data, _ = self._coordinator.fetch_rows(stored, rows, meter)
        if data.n_rows == 0:
            return data.with_column("_dist", np.empty(0)), radius, meter.freeze()
        points = data.matrix(self.columns)
        diff = points - q
        dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        order = np.argsort(dist)[:k]
        result = data.take(order).with_column("_dist", dist[order])
        return result, radius, meter.freeze()
