"""Distributed k-nearest-neighbour query processing (RT2.1, [33]).

Two implementations of the same exact operator:

* :class:`KNNBaseline` — the SpatialHadoop/Simba-style path [31], [32]:
  a MapReduce job where every partition is scanned, each map task emits
  its local top-k, and a reducer merges.  Cost scales with the full table.

* :class:`CoordinatorKNN` — the paper's coordinator-cohort path [33]:
  the coordinator consults the grid index's density histogram to estimate
  a search radius around the query point, identifies the (few) cells —
  hence nodes and rows — that can contain neighbours, surgically reads
  only those rows, and verifies.  If the radius proves too small (fewer
  than k rows found), it doubles and retries, preserving exactness.

Both return exactly the same neighbours as :func:`knn_reference`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.validation import require
from repro.cluster.storage import DistributedStore
from repro.data.tabular import Table
from repro.engine.coordinator import CoordinatorEngine
from repro.engine.mapreduce import MapReduceEngine
from repro.bigdataless.index import DistributedGridIndex


def knn_reference(table: Table, columns: Sequence[str], point, k: int) -> np.ndarray:
    """Ground truth: indices of the k nearest rows (sorted by distance)."""
    points = table.matrix(columns)
    q = np.asarray(point, dtype=float).ravel()
    diff = points - q
    dist = np.einsum("ij,ij->i", diff, diff)
    k = min(k, table.n_rows)
    idx = np.argpartition(dist, k - 1)[:k]
    return idx[np.argsort(dist[idx])]


class KNNBaseline:
    """Full-scan MapReduce kNN (the state of the art the paper criticises)."""

    def __init__(self, store: DistributedStore, columns: Sequence[str]) -> None:
        self.store = store
        self.columns = tuple(columns)
        self._engine = MapReduceEngine(store)

    def query(
        self, table_name: str, point, k: int
    ) -> Tuple[Table, CostReport]:
        """Exact kNN by scanning every partition; returns (rows, cost)."""
        require(k >= 1, "k must be >= 1")
        q = np.asarray(point, dtype=float).ravel()
        columns = self.columns

        def map_fn(partition: Table):
            points = partition.matrix(columns)
            diff = points - q
            dist = np.einsum("ij,ij->i", diff, diff)
            kk = min(k, partition.n_rows)
            if kk == 0:
                return []
            idx = np.argpartition(dist, kk - 1)[:kk]
            local = partition.take(idx).with_column("_dist", np.sqrt(dist[idx]))
            return [(0, local)]

        def reduce_fn(key, locals_: List[Table]):
            merged = Table.concat(locals_)
            order = np.argsort(merged.column("_dist"))[:k]
            return merged.take(order)

        results, report = self._engine.run(table_name, map_fn, reduce_fn, n_reducers=1)
        return results[0], report


class CoordinatorKNN:
    """Index-driven surgical kNN (the right way, per [33])."""

    def __init__(
        self, store: DistributedStore, index: DistributedGridIndex
    ) -> None:
        require(index.is_built, "grid index must be built first")
        self.store = store
        self.index = index
        self.columns = index.columns
        self._coordinator = CoordinatorEngine(store)

    def query(
        self, table_name: str, point, k: int, inflation: float = 1.5
    ) -> Tuple[Table, CostReport]:
        """Exact kNN touching only candidate cells; returns (rows, cost)."""
        require(k >= 1, "k must be >= 1")
        require(
            table_name == self.index.table_name,
            f"index covers {self.index.table_name!r}, not {table_name!r}",
        )
        q = np.asarray(point, dtype=float).ravel()
        stored = self.store.table(table_name)
        radius = self.index.estimate_knn_radius(q, k, inflation=inflation)
        meter = CostMeter()
        domain_diameter = float(np.linalg.norm(self.index._span))
        while True:
            candidates = self._candidate_rows(q, radius)
            enough = sum(len(v) for v in candidates.values()) >= min(
                k, stored.n_rows
            )
            if enough or radius > domain_diameter:
                break
            radius *= 2.0
        data, _ = self._coordinator.fetch_rows(stored, candidates, meter)
        result = self._verify(data, q, k, radius)
        # Neighbours might lie just outside the candidate ball: widen until
        # the k-th distance is certainly covered (exactness guarantee).
        while (
            result.n_rows < min(k, stored.n_rows)
            or float(result.column("_dist").max()) > radius
        ) and radius <= domain_diameter:
            radius *= 2.0
            candidates = self._candidate_rows(q, radius)
            data, _ = self._coordinator.fetch_rows(stored, candidates, meter)
            result = self._verify(data, q, k, radius)
        return result, meter.freeze()

    def _candidate_rows(self, q: np.ndarray, radius: float):
        lows = q - radius
        highs = q + radius
        keys = [
            key
            for key in self.index.cells_for_box(lows, highs)
            if self.index._cell_box_distance(key, q) <= radius
        ]
        return self.index.rows_for_cells(keys)

    def _verify(self, data: Table, q: np.ndarray, k: int, radius: float) -> Table:
        """Rank fetched candidates by true distance; keep the top k."""
        if data.n_rows == 0:
            return data.with_column("_dist", np.empty(0))
        points = data.matrix(self.columns)
        diff = points - q
        dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        order = np.argsort(dist)[:k]
        return data.take(order).with_column("_dist", dist[order])
