"""Ad hoc ML tasks on analyst-defined subspaces (RT2.2).

"Analysts are to define (using selection operators ...) subspaces of
interest and ask for the data items within these subspaces to be
clustered, classified, or to perform regressions."

:class:`AdHocMLEngine` runs k-means clustering, kNN classification or
linear regression over the rows a selection picks, via two access paths:

* ``fullscan`` — a MapReduce job collects the matching rows by scanning
  every partition, then the ML runs centrally;
* ``index``    — the grid index identifies candidate cells, only those
  rows are surgically fetched (then filtered exactly).

Both paths feed identical rows to the identical ML routine, so the
fitted models agree; only the access cost differs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.common.accounting import CostMeter, CostReport
from repro.common.errors import QueryError
from repro.common.validation import require
from repro.cluster.storage import DistributedStore
from repro.data.tabular import Table
from repro.engine.coordinator import CoordinatorEngine
from repro.engine.mapreduce import MapReduceEngine
from repro.ml.kmeans import KMeans
from repro.ml.knn import KNeighborsClassifier
from repro.ml.linear import LinearRegression
from repro.bigdataless.index import DistributedGridIndex
from repro.queries.selections import Selection


class AdHocMLEngine:
    """Cluster / classify / regress over an ad hoc data subspace."""

    def __init__(
        self,
        store: DistributedStore,
        index: Optional[DistributedGridIndex] = None,
    ) -> None:
        self.store = store
        self.index = index
        self._mapreduce = MapReduceEngine(store)
        self._coordinator = CoordinatorEngine(store)

    # Data access ---------------------------------------------------------
    def gather(
        self, table_name: str, selection: Selection, method: str = "index"
    ) -> Tuple[Table, CostReport]:
        """Materialise the subspace rows via the chosen access path."""
        require(method in ("fullscan", "index"), f"unknown method {method!r}")
        if method == "fullscan" or self.index is None:
            return self._gather_fullscan(table_name, selection)
        return self._gather_index(table_name, selection)

    def _gather_fullscan(self, table_name: str, selection: Selection):
        def map_fn(partition: Table):
            selected = partition.select(selection.mask(partition))
            return [(0, selected)] if selected.n_rows else []

        def reduce_fn(key, pieces):
            return Table.concat(pieces)

        results, report = self._mapreduce.run(
            table_name, map_fn, reduce_fn, n_reducers=1
        )
        if 0 in results:
            return results[0], report
        stored = self.store.table(table_name)
        return stored.partitions[0].data.slice_rows(0, 0), report

    def _gather_index(self, table_name: str, selection: Selection):
        require(
            self.index is not None and self.index.table_name == table_name,
            f"no grid index for table {table_name!r}",
        )
        meter = CostMeter()
        keys = self.index.cells_for_selection(selection)
        rows = self.index.rows_for_cells(keys)
        stored = self.store.table(table_name)
        data, _ = self._coordinator.fetch_rows(stored, rows, meter)
        exact = data.select(selection.mask(data))
        return exact, meter.freeze()

    # ML operations -----------------------------------------------------------
    def cluster(
        self,
        table_name: str,
        selection: Selection,
        feature_columns: Sequence[str],
        n_clusters: int,
        method: str = "index",
        seed=0,
    ) -> Tuple[KMeans, CostReport]:
        """k-means over the subspace; returns (fitted model, access cost)."""
        data, report = self.gather(table_name, selection, method)
        if data.n_rows < n_clusters:
            raise QueryError(
                f"subspace has {data.n_rows} rows < n_clusters={n_clusters}"
            )
        model = KMeans(n_clusters=n_clusters, seed=seed).fit(
            data.matrix(feature_columns)
        )
        return model, report

    def classify(
        self,
        table_name: str,
        selection: Selection,
        feature_columns: Sequence[str],
        label_column: str,
        n_neighbors: int = 5,
        method: str = "index",
    ) -> Tuple[KNeighborsClassifier, CostReport]:
        """kNN classifier trained on the subspace rows."""
        data, report = self.gather(table_name, selection, method)
        if data.n_rows == 0:
            raise QueryError("subspace selected no rows to classify")
        model = KNeighborsClassifier(n_neighbors=n_neighbors).fit(
            data.matrix(feature_columns), data.column(label_column)
        )
        return model, report

    def regress(
        self,
        table_name: str,
        selection: Selection,
        feature_columns: Sequence[str],
        target_column: str,
        method: str = "index",
    ) -> Tuple[LinearRegression, CostReport]:
        """OLS regression fitted within the subspace."""
        data, report = self.gather(table_name, selection, method)
        if data.n_rows <= len(feature_columns):
            raise QueryError(
                f"subspace has {data.n_rows} rows, too few for "
                f"{len(feature_columns)} features"
            )
        model = LinearRegression().fit(
            data.matrix(feature_columns), data.column(target_column)
        )
        return model, report
