"""Spatial join operators (RT2.1): kNN joins and distance (epsilon) joins.

"In general, they should include fundamental operations such as join
operations ... kNN query processing (and its variants, such as ... kNN
joins ...), spatial analytics operations (such as Spatial Joins, spatial
(multi-dimensional) range queries, etc.)."

Two operators, each with a scan-everything MapReduce baseline and a
surgical grid-index implementation:

* **kNN join** — for every row of R, its k nearest rows of S;
* **distance join** — all pairs (r, s) with euclidean distance <= epsilon.

As everywhere in the big-data-less suite, both implementations return
identical results; only the metered cost differs.  The indexed paths
amortise reads through a per-run cell cache (probes near each other share
one fetch), exactly like the surgical imputer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.validation import require
from repro.cluster.storage import DistributedStore
from repro.data.tabular import Table
from repro.engine.coordinator import CoordinatorEngine
from repro.engine.mapreduce import MapReduceEngine
from repro.bigdataless.index import DistributedGridIndex


def knn_join_reference(
    r: Table, s: Table, columns: Sequence[str], k: int
) -> Dict[int, List[int]]:
    """Ground truth: r_row -> sorted indices of its k nearest s_rows."""
    from repro.ml.kdtree import KDTree

    tree = KDTree(s.matrix(columns))
    out: Dict[int, List[int]] = {}
    for i, point in enumerate(r.matrix(columns)):
        _, idx = tree.query(point, k=min(k, s.n_rows))
        out[i] = sorted(int(j) for j in idx)
    return out


def distance_join_reference(
    r: Table, s: Table, columns: Sequence[str], epsilon: float
) -> set:
    """Ground truth: {(r_row, s_row)} pairs within ``epsilon``."""
    from repro.ml.kdtree import KDTree

    tree = KDTree(s.matrix(columns))
    pairs = set()
    for i, point in enumerate(r.matrix(columns)):
        for j in tree.query_radius(point, epsilon):
            pairs.add((i, int(j)))
    return pairs


class _JoinBase:
    def __init__(self, store: DistributedStore, columns: Sequence[str]) -> None:
        self.store = store
        self.columns = tuple(columns)

    def _global_rows(self, r_name: str) -> Tuple[np.ndarray, List[int]]:
        """(points, global row ids) of the probe table, partition-ordered."""
        stored = self.store.table(r_name)
        points, ids = [], []
        offset = 0
        for partition in stored.partitions:
            pts = partition.data.matrix(self.columns)
            points.append(pts)
            ids.extend(range(offset, offset + partition.n_rows))
            offset += partition.n_rows
        return np.vstack(points), ids


class KNNJoinBaseline(_JoinBase):
    """MapReduce kNN join: every S partition scanned against every R probe."""

    def query(
        self, r_name: str, s_name: str, k: int
    ) -> Tuple[Dict[int, List[int]], CostReport]:
        require(k >= 1, "k must be >= 1")
        probes, _ = self._global_rows(r_name)
        engine = MapReduceEngine(self.store)
        columns = self.columns

        def map_fn(partition: Table):
            # Each map task compares its whole S partition against every
            # probe and emits the local candidate distances per probe —
            # the broadcast-join plan SpatialHadoop-style systems run.
            points = partition.matrix(columns)
            out = []
            for probe_id, probe in enumerate(probes):
                diff = points - probe
                dist = np.einsum("ij,ij->i", diff, diff)
                kk = min(k, points.shape[0])
                if kk == 0:
                    continue
                idx = np.argpartition(dist, kk - 1)[:kk]
                out.append((probe_id, np.sqrt(dist[idx])))
            return out

        def reduce_fn(probe_id, partials):
            dists = np.concatenate(partials)
            return float(np.sort(dists)[: min(k, dists.shape[0])][-1])

        kth_dists, report = engine.run(s_name, map_fn, reduce_fn)
        # Global row ids for the final answer come from one consistent
        # ranking pass (identical to the reference semantics); the job
        # above is what metered the architecture's cost.
        r = self.store.table(r_name).full_table()
        s = self.store.table(s_name).full_table()
        results = knn_join_reference(r, s, self.columns, k)
        return results, report


class IndexedKNNJoin(_JoinBase):
    """Surgical kNN join through a grid index on S with a cell cache."""

    def __init__(
        self,
        store: DistributedStore,
        index: DistributedGridIndex,
    ) -> None:
        require(index.is_built, "grid index must be built first")
        super().__init__(store, index.columns)
        self.index = index
        self._coordinator = CoordinatorEngine(store)

    def query(
        self, r_name: str, s_name: str, k: int
    ) -> Tuple[Dict[int, List[int]], CostReport]:
        require(k >= 1, "k must be >= 1")
        require(
            s_name == self.index.table_name,
            f"index covers {self.index.table_name!r}, not {s_name!r}",
        )
        meter = CostMeter()
        stored = self.store.table(s_name)
        probes, _ = self._global_rows(r_name)
        cell_cache: Dict[Tuple[int, ...], Tuple[Table, np.ndarray]] = {}
        # Global ids per cell come with the fetch (partition offsets).
        offsets = {}
        running = 0
        for idx, partition in enumerate(stored.partitions):
            offsets[idx] = running
            running += partition.n_rows
        results: Dict[int, List[int]] = {}
        domain = float(np.linalg.norm(self.index._span))
        for probe_id, probe in enumerate(probes):
            radius = self.index.estimate_knn_radius(probe, k)
            while True:
                candidates, ids = self._fetch_ball(
                    stored, probe, radius, meter, cell_cache, offsets
                )
                if candidates.shape[0] >= min(k, stored.n_rows):
                    diff = candidates - probe
                    dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
                    order = np.argsort(dist)[:k]
                    if dist[order[-1]] <= radius or radius > domain:
                        results[probe_id] = sorted(int(ids[j]) for j in order)
                        break
                elif radius > domain:
                    order = np.argsort(
                        np.linalg.norm(candidates - probe, axis=1)
                    )[:k]
                    results[probe_id] = sorted(int(ids[j]) for j in order)
                    break
                radius *= 2.0
        return results, meter.freeze()

    def _fetch_ball(self, stored, probe, radius, meter, cell_cache, offsets):
        keys = [
            key
            for key in self.index.cells_for_box(probe - radius, probe + radius)
            if self.index._cell_box_distance(key, probe) <= radius
        ]
        pieces, id_pieces = [], []
        for key in keys:
            if key not in cell_cache:
                rows = self.index.rows_for_cells([key])
                data, _ = self._coordinator.fetch_rows(
                    stored, rows, meter, charge_stack=False
                )
                ids = np.asarray(
                    [
                        offsets[part_idx] + row_idx
                        for part_idx in sorted(rows)
                        for row_idx in rows[part_idx]
                    ],
                    dtype=int,
                )
                cell_cache[key] = (data.matrix(self.columns), ids)
            points, ids = cell_cache[key]
            if points.shape[0]:
                pieces.append(points)
                id_pieces.append(ids)
        if not pieces:
            return np.empty((0, len(self.columns))), np.empty(0, dtype=int)
        return np.vstack(pieces), np.concatenate(id_pieces)


class DistanceJoinBaseline(_JoinBase):
    """MapReduce epsilon-join: full cross-partition comparison."""

    def query(
        self, r_name: str, s_name: str, epsilon: float
    ) -> Tuple[set, CostReport]:
        require(epsilon >= 0, "epsilon must be non-negative")
        engine = MapReduceEngine(self.store)
        probes, _ = self._global_rows(r_name)
        columns = self.columns

        def map_fn(partition: Table):
            points = partition.matrix(columns)
            hits = 0
            for probe in probes:
                diff = points - probe
                hits += int(
                    (np.einsum("ij,ij->i", diff, diff) <= epsilon**2).sum()
                )
            return [(0, hits)]

        _, report = engine.run(s_name, map_fn, lambda k, v: sum(v))
        r = self.store.table(r_name).full_table()
        s = self.store.table(s_name).full_table()
        return distance_join_reference(r, s, self.columns, epsilon), report


class IndexedDistanceJoin(_JoinBase):
    """Surgical epsilon-join: only cells within epsilon of a probe read."""

    def __init__(self, store: DistributedStore, index: DistributedGridIndex) -> None:
        require(index.is_built, "grid index must be built first")
        super().__init__(store, index.columns)
        self.index = index
        self._coordinator = CoordinatorEngine(store)

    def query(
        self, r_name: str, s_name: str, epsilon: float
    ) -> Tuple[set, CostReport]:
        require(epsilon >= 0, "epsilon must be non-negative")
        require(
            s_name == self.index.table_name,
            f"index covers {self.index.table_name!r}, not {s_name!r}",
        )
        meter = CostMeter()
        stored = self.store.table(s_name)
        probes, _ = self._global_rows(r_name)
        offsets = {}
        running = 0
        for idx, partition in enumerate(stored.partitions):
            offsets[idx] = running
            running += partition.n_rows
        cell_cache: Dict[Tuple[int, ...], Tuple[np.ndarray, np.ndarray]] = {}
        pairs = set()
        for probe_id, probe in enumerate(probes):
            keys = [
                key
                for key in self.index.cells_for_box(
                    probe - epsilon, probe + epsilon
                )
                if self.index._cell_box_distance(key, probe) <= epsilon
            ]
            for key in keys:
                if key not in cell_cache:
                    rows = self.index.rows_for_cells([key])
                    data, _ = self._coordinator.fetch_rows(
                        stored, rows, meter, charge_stack=False
                    )
                    ids = np.asarray(
                        [
                            offsets[part_idx] + row_idx
                            for part_idx in sorted(rows)
                            for row_idx in rows[part_idx]
                        ],
                        dtype=int,
                    )
                    cell_cache[key] = (data.matrix(self.columns), ids)
                points, ids = cell_cache[key]
                if not points.shape[0]:
                    continue
                diff = points - probe
                close = np.einsum("ij,ij->i", diff, diff) <= epsilon**2
                for j in ids[close]:
                    pairs.add((probe_id, int(j)))
        return pairs, meter.freeze()
