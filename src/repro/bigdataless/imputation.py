"""Scalable missing-value imputation (RT2 preparatory task, [36]).

Rows with a missing value are imputed with the mean of their k nearest
*complete* rows (distance over the observed feature columns).  Both
engines produce identical imputations; they differ — dramatically — in
what they touch:

* :class:`MapReduceImputer` — the "typical BDAS/MapReduce-style
  processing" baseline: the set of incomplete rows is broadcast to every
  data node, every partition is scanned in full, local candidate
  neighbours are shuffled to a reducer, which finalises each imputation.

* :class:`SurgicalKNNImputer` — the paper's approach: a grid index over
  the complete rows lets a coordinator fetch only the few candidate cells
  around each incomplete row.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.validation import require
from repro.cluster.storage import DistributedStore
from repro.data.tabular import Table
from repro.engine.coordinator import CoordinatorEngine
from repro.engine.mapreduce import MapReduceEngine
from repro.bigdataless.index import DistributedGridIndex


def _nearest_mean(
    candidates: np.ndarray, values: np.ndarray, point: np.ndarray, k: int
) -> float:
    """Mean target value of the k candidates nearest to ``point``."""
    diff = candidates - point
    dist = np.einsum("ij,ij->i", diff, diff)
    k = min(k, candidates.shape[0])
    idx = np.argpartition(dist, k - 1)[:k] if k < candidates.shape[0] else np.arange(k)
    return float(values[idx].mean())


class MapReduceImputer:
    """Full-scan broadcast-join imputation (the baseline)."""

    def __init__(
        self, store: DistributedStore, feature_columns: Sequence[str], k: int = 5
    ) -> None:
        require(k >= 1, "k must be >= 1")
        self.store = store
        self.features = tuple(feature_columns)
        self.k = k
        self._engine = MapReduceEngine(store)

    def impute(
        self, table_name: str, target_column: str
    ) -> Tuple[Dict[int, float], CostReport]:
        """Impute every NaN in ``target_column``; returns {global_row: value}.

        Global row ids are (partition_index * 10**9 + row_index) so tests
        can align them with ground truth.
        """
        stored = self.store.table(table_name)
        incomplete = self._collect_incomplete(stored, target_column)
        if not incomplete:
            return {}, CostReport()
        probe_points = np.asarray([p for _, p in incomplete])
        k = self.k

        features = self.features
        target = target_column

        def map_fn(partition: Table):
            mask = ~np.isnan(partition.column(target).astype(float))
            complete = partition.select(mask)
            if complete.n_rows == 0:
                return []
            points = complete.matrix(features)
            values = complete.column(target).astype(float)
            out = []
            for probe_id, probe in enumerate(probe_points):
                diff = points - probe
                dist = np.einsum("ij,ij->i", diff, diff)
                kk = min(k, points.shape[0])
                idx = np.argpartition(dist, kk - 1)[:kk]
                out.append((probe_id, (dist[idx], values[idx])))
            return out

        def reduce_fn(probe_id, partials):
            dists = np.concatenate([p[0] for p in partials])
            values = np.concatenate([p[1] for p in partials])
            idx = np.argsort(dists)[:k]
            return float(values[idx].mean())

        results, report = self._engine.run(table_name, map_fn, reduce_fn)
        imputed = {
            incomplete[probe_id][0]: value for probe_id, value in results.items()
        }
        return imputed, report

    def _collect_incomplete(
        self, stored, target_column: str
    ) -> List[Tuple[int, np.ndarray]]:
        """(global_row_id, feature point) of every row with a NaN target.

        This driver-side pass reads only the target/feature columns of
        each partition's rows that are incomplete; its cost is charged
        within the MapReduce job's scan (the job reads everything anyway).
        """
        out: List[Tuple[int, np.ndarray]] = []
        for part_idx, partition in enumerate(stored.partitions):
            target = partition.data.column(target_column).astype(float)
            points = partition.data.matrix(self.features)
            for row_idx in np.flatnonzero(np.isnan(target)):
                out.append((part_idx * 10**9 + int(row_idx), points[row_idx]))
        return out


class SurgicalKNNImputer:
    """Index-driven imputation touching only candidate cells."""

    def __init__(
        self,
        store: DistributedStore,
        index: DistributedGridIndex,
        k: int = 5,
    ) -> None:
        require(index.is_built, "grid index must be built first")
        require(k >= 1, "k must be >= 1")
        self.store = store
        self.index = index
        self.features = index.columns
        self.k = k
        self._coordinator = CoordinatorEngine(store)

    def impute(
        self, table_name: str, target_column: str
    ) -> Tuple[Dict[int, float], CostReport]:
        """Impute every NaN in ``target_column`` via surgical cell reads.

        Fetched cells are cached for the duration of the run, so probes in
        the same neighbourhood share one read — the cost is bounded by the
        distinct cells the missing rows touch, not by probe count.
        """
        stored = self.store.table(table_name)
        meter = CostMeter()
        probes: List[Tuple[int, np.ndarray]] = []
        for part_idx, partition in enumerate(stored.partitions):
            target = partition.data.column(target_column).astype(float)
            points = partition.data.matrix(self.features)
            for row_idx in np.flatnonzero(np.isnan(target)):
                probes.append((part_idx * 10**9 + int(row_idx), points[row_idx]))
        cell_cache = self._prefetch(stored, [p for _, p in probes], meter)
        imputed: Dict[int, float] = {}
        for global_row, point in probes:
            imputed[global_row] = self._impute_one(
                stored, target_column, point, meter, cell_cache
            )
        return imputed, meter.freeze()

    def _prefetch(
        self, stored, points: List[np.ndarray], meter: CostMeter
    ) -> Dict[Tuple[int, ...], Table]:
        """One parallel round fetching every probe's candidate cells.

        All cohort nodes serve their shares concurrently, so the elapsed
        cost is one scatter-gather round, not one round per probe.
        """
        needed: set = set()
        for point in points:
            radius = self.index.estimate_knn_radius(point, self.k)
            needed.update(
                key
                for key in self.index.cells_for_box(point - radius, point + radius)
                if self.index._cell_box_distance(key, point) <= radius
            )
        cell_cache: Dict[Tuple[int, ...], Table] = {}
        if not needed:
            return cell_cache
        rows = self.index.rows_for_cells(sorted(needed))
        data, _ = self._coordinator.fetch_rows(stored, rows, meter)
        if data.n_rows == 0:
            return {key: data for key in needed}
        # Re-bucket the fetched rows into their cells by coordinates.
        cells = self.index._cell_of(data.matrix(self.features))
        keys = [tuple(c) for c in cells]
        for key in needed:
            mask = np.fromiter((k == key for k in keys), dtype=bool,
                               count=len(keys))
            cell_cache[key] = data.select(mask)
        return cell_cache

    def _impute_one(
        self,
        stored,
        target_column: str,
        point: np.ndarray,
        meter: CostMeter,
        cell_cache: Dict[Tuple[int, ...], Table],
    ) -> float:
        radius = self.index.estimate_knn_radius(point, self.k)
        domain = float(np.linalg.norm(self.index._span))
        while True:
            keys = [
                key
                for key in self.index.cells_for_box(point - radius, point + radius)
                if self.index._cell_box_distance(key, point) <= radius
            ]
            data = self._fetch_cells(stored, keys, meter, cell_cache)
            target = data.column(target_column).astype(float)
            complete = data.select(~np.isnan(target))
            if self._covered(complete, point, radius) or radius > domain:
                break
            radius *= 2.0
        if complete.n_rows == 0:
            return 0.0
        return _nearest_mean(
            complete.matrix(self.features),
            complete.column(target_column).astype(float),
            point,
            self.k,
        )

    def _covered(self, complete: Table, point: np.ndarray, radius: float) -> bool:
        """True when the k nearest complete donors provably lie inside radius."""
        if complete.n_rows < self.k:
            return False
        diff = complete.matrix(self.features) - point
        dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        return float(np.partition(dist, self.k - 1)[self.k - 1]) <= radius

    def _fetch_cells(
        self,
        stored,
        keys,
        meter: CostMeter,
        cell_cache: Dict[Tuple[int, ...], Table],
    ) -> Table:
        missing_keys = [k for k in keys if k not in cell_cache]
        if missing_keys:
            for key in missing_keys:
                rows = self.index.rows_for_cells([key])
                data, _ = self._coordinator.fetch_rows(
                    stored, rows, meter, charge_stack=False
                )
                cell_cache[key] = data
        pieces = [cell_cache[k] for k in keys if cell_cache[k].n_rows]
        if not pieces:
            return stored.partitions[0].data.slice_rows(0, 0)
        return Table.concat(pieces)
