"""Raw-data analytics via adaptive indexing (RT2.3).

"Currently data analytics is performed on cleaned data, fitted to given
data models.  This requires a resource-hungry and time-consuming data
wrangling process and ETL procedures.  As data sizes increase, the
data-to-insight times can become too high.  This thread will centre its
attention on developing adaptive indexing and caching techniques that
operate on raw data and facilitate efficient and scalable raw-data
analyses."

Three ways to answer 1-d range aggregates over *raw* (unparsed) files:

* :class:`ColdScanEngine` — parse every file on every query (the
  "no ETL, no index" floor).
* :class:`EagerETLEngine` — parse and sort everything up front (classic
  ETL): best per-query cost, worst time-to-first-insight.
* :class:`AdaptiveCrackingEngine` — database cracking on raw data: the
  first query pays one full parse per file; every query then *cracks* the
  touched pieces around its range bounds, so the file incrementally
  self-organises and later queries touch only matching pieces.

Parsing raw bytes is CPU-expensive (``parse_bytes_per_sec`` <<
``disk_bytes_per_sec``), which is what makes repeated cold scans
"resource-hungry and time-consuming".
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.rng import SeedLike, make_rng
from repro.common.validation import require
from repro.cluster.topology import ClusterTopology

PARSE_BYTES_PER_SEC = 25e6  # CSV parsing is ~4x slower than scanning

_RAW_BYTES_PER_VALUE = 14  # ascii-encoded number + delimiter


@dataclass
class RawFile:
    """One unparsed file of numeric records on one node."""

    file_id: str
    node_id: str
    values: np.ndarray  # the raw column the queries filter on
    payload_columns: int = 3  # other fields each record carries

    @property
    def n_rows(self) -> int:
        return int(self.values.shape[0])

    @property
    def n_bytes(self) -> int:
        return self.n_rows * (1 + self.payload_columns) * _RAW_BYTES_PER_VALUE

    def row_bytes(self) -> int:
        return (1 + self.payload_columns) * _RAW_BYTES_PER_VALUE


class RawDataStore:
    """Raw files spread across cluster nodes."""

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology
        self.files: List[RawFile] = []

    @classmethod
    def synthetic(
        cls,
        topology: ClusterTopology,
        n_rows: int,
        files_per_node: int = 1,
        domain: Tuple[float, float] = (0.0, 1000.0),
        seed: SeedLike = None,
    ) -> "RawDataStore":
        """Uniform numeric records spread across every node."""
        require(n_rows >= 1, "n_rows must be >= 1")
        store = cls(topology)
        rng = make_rng(seed)
        node_ids = topology.node_ids
        n_files = len(node_ids) * files_per_node
        per_file = max(1, n_rows // n_files)
        for i in range(n_files):
            node = node_ids[i % len(node_ids)]
            values = rng.uniform(domain[0], domain[1], size=per_file)
            store.files.append(
                RawFile(file_id=f"raw{i}", node_id=node, values=values)
            )
        return store

    @property
    def n_rows(self) -> int:
        return sum(f.n_rows for f in self.files)

    @property
    def n_bytes(self) -> int:
        return sum(f.n_bytes for f in self.files)

    def true_range_count(self, lo: float, hi: float) -> int:
        """Ground truth for tests/benchmarks."""
        return int(
            sum(((f.values >= lo) & (f.values < hi)).sum() for f in self.files)
        )


def _charge_parse(meter: CostMeter, node_id: str, num_bytes: int, rows: int) -> float:
    """Raw-byte parsing: a scan plus CPU-bound tokenisation."""
    seconds = meter.charge_scan(node_id, num_bytes, rows=rows)
    seconds += num_bytes / PARSE_BYTES_PER_SEC
    meter.charge_cpu(node_id, 0)
    return seconds


class ColdScanEngine:
    """Parse every raw file on every query (the no-index floor)."""

    def __init__(self, store: RawDataStore) -> None:
        self.store = store

    def range_count(self, lo: float, hi: float) -> Tuple[int, CostReport]:
        meter = CostMeter()
        total = 0
        slowest = 0.0
        for raw in self.store.files:
            seconds = _charge_parse(meter, raw.node_id, raw.n_bytes, raw.n_rows)
            slowest = max(slowest, seconds)
            total += int(((raw.values >= lo) & (raw.values < hi)).sum())
        meter.advance(slowest)
        return total, meter.freeze()


class EagerETLEngine:
    """Parse + sort everything up front; then answer from loaded columns."""

    def __init__(self, store: RawDataStore) -> None:
        self.store = store
        self._sorted: Optional[List[np.ndarray]] = None
        self.etl_report: Optional[CostReport] = None

    def etl(self) -> CostReport:
        """The up-front wrangling pass (parse + sort every file)."""
        meter = CostMeter()
        slowest = 0.0
        loaded = []
        for raw in self.store.files:
            seconds = _charge_parse(meter, raw.node_id, raw.n_bytes, raw.n_rows)
            # n log n sort modeled as ~8 CPU passes over the column.
            seconds += meter.charge_cpu(raw.node_id, 8 * raw.n_rows * 8)
            slowest = max(slowest, seconds)
            loaded.append(np.sort(raw.values))
        meter.advance(slowest)
        self._sorted = loaded
        self.etl_report = meter.freeze()
        return self.etl_report

    def range_count(self, lo: float, hi: float) -> Tuple[int, CostReport]:
        require(self._sorted is not None, "run etl() first")
        meter = CostMeter()
        total = 0
        slowest = 0.0
        for raw, column in zip(self.store.files, self._sorted):
            left = int(np.searchsorted(column, lo, side="left"))
            right = int(np.searchsorted(column, hi, side="left"))
            total += right - left
            # Binary searches: touch ~log2(n) cache lines.
            probe_bytes = 64 * max(1, int(np.log2(max(2, raw.n_rows))))
            seconds = meter.charge_cpu(raw.node_id, probe_bytes)
            slowest = max(slowest, seconds)
        meter.advance(slowest)
        return total, meter.freeze()


class _CrackedFile:
    """Cracker index state for one raw file.

    ``order`` is a permutation of the file's rows; ``bounds``/``positions``
    mark crack points: rows in ``order[positions[i]:positions[i+1]]`` all
    fall in ``[bounds[i], bounds[i+1])``.
    """

    def __init__(self, raw: RawFile) -> None:
        self.raw = raw
        self.order = np.arange(raw.n_rows)
        self.bounds: List[float] = [-np.inf, np.inf]
        self.positions: List[int] = [0, raw.n_rows]
        self.parsed = False

    def crack(self, value: float, meter: CostMeter) -> float:
        """Introduce a crack at ``value``; returns simulated seconds.

        Only the piece containing ``value`` is repartitioned, and only its
        bytes are charged — the essence of adaptive indexing.
        """
        piece = bisect.bisect_right(self.bounds, value) - 1
        if self.bounds[piece] == value:
            return 0.0
        lo_pos, hi_pos = self.positions[piece], self.positions[piece + 1]
        if lo_pos == hi_pos:
            self._insert(piece, value, lo_pos)
            return 0.0
        rows = self.order[lo_pos:hi_pos]
        keys = self.raw.values[rows]
        mask = keys < value
        self.order[lo_pos:hi_pos] = np.concatenate([rows[mask], rows[~mask]])
        split = lo_pos + int(mask.sum())
        self._insert(piece, value, split)
        piece_bytes = (hi_pos - lo_pos) * self.raw.row_bytes()
        if self.parsed:
            # Values already tokenised: cracking is a cheap CPU pass.
            return meter.charge_cpu(self.raw.node_id, piece_bytes)
        # The very first crack spans the whole file (there is only one
        # piece initially), so after it every value is tokenised in memory.
        seconds = _charge_parse(
            meter, self.raw.node_id, piece_bytes, hi_pos - lo_pos
        )
        self.parsed = True
        return seconds

    def count_between(self, lo: float, hi: float, meter: CostMeter) -> Tuple[int, float]:
        """Exact count in [lo, hi) after cracking at both bounds."""
        seconds = self.crack(lo, meter)
        seconds += self.crack(hi, meter)
        self.parsed = True
        lo_piece = self.bounds.index(lo)
        hi_piece = self.bounds.index(hi)
        return self.positions[hi_piece] - self.positions[lo_piece], seconds

    def _insert(self, piece: int, value: float, split: int) -> None:
        self.bounds.insert(piece + 1, value)
        self.positions.insert(piece + 1, split)

    @property
    def n_pieces(self) -> int:
        return len(self.bounds) - 1

    def state_bytes(self) -> int:
        return self.order.nbytes + 16 * len(self.bounds)


class AdaptiveCrackingEngine:
    """Database cracking directly on the raw files."""

    def __init__(self, store: RawDataStore) -> None:
        self.store = store
        self._cracked = [_CrackedFile(f) for f in store.files]

    def range_count(self, lo: float, hi: float) -> Tuple[int, CostReport]:
        require(lo <= hi, "lo must not exceed hi")
        meter = CostMeter()
        total = 0
        slowest = 0.0
        for cracked in self._cracked:
            count, seconds = cracked.count_between(lo, hi, meter)
            total += count
            slowest = max(slowest, seconds)
        meter.advance(slowest)
        return total, meter.freeze()

    def state_bytes(self) -> int:
        return sum(c.state_bytes() for c in self._cracked)

    @property
    def n_pieces(self) -> int:
        return sum(c.n_pieces for c in self._cracked)
