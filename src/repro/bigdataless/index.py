"""Distributed multidimensional indexes (RT2.1, objective O4).

A :class:`DistributedGridIndex` is the "statistical index structure" the
big-data-less operators rely on: a uniform grid over selected dimensions
where each cell records *statistics* (count, per-column sums) and the
*locations* (partition, row) of its rows.  The coordinator keeps the small
statistics table; row locations live with the data nodes.  Operators use
the statistics to decide which cells matter, then surgically read only
those cells' rows.

Index construction is an offline, one-off cost, metered separately so
experiments can report it (build once, amortise over the workload).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.validation import require
from repro.cluster.storage import DistributedStore, StoredTable
from repro.queries.selections import RadiusSelection

CellKey = Tuple[int, ...]

_CELL_STAT_BYTES = 8 * 4  # count + min/max id + reserved
_ROWREF_BYTES = 12


@dataclass
class CellStats:
    """Statistics the coordinator keeps per non-empty grid cell."""

    count: int = 0
    sums: Optional[np.ndarray] = None

    def add(self, values: np.ndarray) -> None:
        self.count += values.shape[0]
        total = values.sum(axis=0)
        self.sums = total if self.sums is None else self.sums + total


def group_rows_by_cell(
    cells: np.ndarray, cells_per_dim: int
) -> Tuple[List[CellKey], List[np.ndarray], np.ndarray]:
    """Group row indices by grid cell in one vectorized pass.

    Returns ``(keys, segments, group_of)``: cell keys in first-appearance
    order (matching the historical per-row ``setdefault`` loop), the
    ascending row indices of each key, and the per-row group index into
    ``keys``.  Key elements are the cell array's scalars, exactly what
    ``map(tuple, cells)`` produced row by row.
    """
    n = int(cells.shape[0])
    d = int(cells.shape[1])
    if n == 0:
        return [], [], np.empty(0, dtype=np.int64)
    ids = np.ravel_multi_index(tuple(cells.T), dims=(cells_per_dim,) * d)
    _, first, inverse = np.unique(ids, return_index=True, return_inverse=True)
    # np.unique orders groups by id value; re-rank them by first
    # appearance so iteration order matches the old insertion order.
    order = np.argsort(first, kind="stable")
    rank = np.empty(order.shape[0], dtype=np.int64)
    rank[order] = np.arange(order.shape[0], dtype=np.int64)
    group_of = rank[np.asarray(inverse).ravel()]
    counts = np.bincount(group_of, minlength=order.shape[0])
    # Stable sort by group keeps rows ascending within each group.
    row_order = np.argsort(group_of, kind="stable")
    segments = np.split(row_order, np.cumsum(counts)[:-1])
    keys = [tuple(cells[first[g]]) for g in order]
    return keys, segments, group_of


def split_rows_by_partition(
    rows: np.ndarray, starts: np.ndarray
) -> List[Tuple[int, np.ndarray]]:
    """Split ascending global row indices into (partition, local rows) runs.

    ``starts`` holds each partition's first global row (cumulative row
    counts, length ``n_partitions + 1``).  Ascending input means each
    partition's rows form one contiguous run, preserved in order.
    """
    part_of = np.searchsorted(starts, rows, side="right") - 1
    cuts = np.flatnonzero(part_of[1:] != part_of[:-1]) + 1
    heads = np.concatenate(([0], cuts))
    return [
        (int(part_of[head]), piece - starts[part_of[head]])
        for head, piece in zip(heads, np.split(rows, cuts))
    ]


class DistributedGridIndex:
    """Uniform grid index over selected dimensions of a stored table."""

    def __init__(
        self,
        store: DistributedStore,
        table_name: str,
        columns: Sequence[str],
        cells_per_dim: int = 32,
    ) -> None:
        require(cells_per_dim >= 2, "cells_per_dim must be >= 2")
        self.store = store
        self.table_name = table_name
        self.columns = tuple(columns)
        self.cells_per_dim = cells_per_dim
        self._stats: Dict[CellKey, CellStats] = {}
        #: Per cell: (partition, ascending local row indices) runs, in
        #: partition order — the vectorized image of the historical
        #: per-row (partition, row) tuple list.
        self._rows: Dict[CellKey, List[Tuple[int, np.ndarray]]] = {}
        self._lows: Optional[np.ndarray] = None
        self._span: Optional[np.ndarray] = None
        self.build_report: Optional[CostReport] = None

    # Construction -----------------------------------------------------------
    def build(self) -> CostReport:
        """Scan the table once, populating cell stats and row directories.

        The charging loop stays per-partition (reads, CPU, index-byte
        placement — in partition order, exactly as before); the cell
        fold itself is one global vectorized pass, bitwise equal to the
        historical per-row loop (see :meth:`_ingest`).
        """
        meter = CostMeter()
        stored = self.store.table(self.table_name)
        bounds = self._compute_bounds(stored)
        self._lows, self._span = bounds
        slowest = 0.0
        per_part_points: List[np.ndarray] = []
        per_part_cells: List[np.ndarray] = []
        for partition in stored.partitions:
            data = self.store.read_partition(partition, meter)
            seconds = data.n_bytes / meter.rates.disk_bytes_per_sec
            seconds += meter.charge_cpu(partition.primary_node, data.n_bytes)
            slowest = max(slowest, seconds)
            points = data.matrix(self.columns)
            per_part_points.append(points)
            per_part_cells.append(self._cell_of(points))
            # The node keeps its share of the row directory.
            node = self.store.topology.node(partition.primary_node)
            node.add_index_bytes(data.n_rows * _ROWREF_BYTES)
        meter.advance(slowest)
        self._ingest(per_part_points, per_part_cells)
        self.build_report = meter.freeze()
        return self.build_report

    def _ingest(
        self,
        per_part_points: List[np.ndarray],
        per_part_cells: List[np.ndarray],
    ) -> None:
        """Vectorized cell fold over all partitions in global row order.

        Bitwise equality with the old per-row ``CellStats.add`` fold
        needs two properties: the accumulation must run over rows in
        the *global* (partition-major) order the loop used — so the
        grouping spans all partitions at once, never per-partition
        partials — and the accumulator must start at ``-0.0``, the
        additive identity under IEEE-754 (``-0.0 + x == x`` bitwise,
        including ``x = +0.0``; a ``0.0`` start would flip the sign of
        a cell whose rows sum to ``-0.0``).  ``np.add.at`` is unbuffered
        and applies in
        index order, i.e. it *is* the sequential left fold.
        """
        d = len(self.columns)
        all_points = (
            np.concatenate(per_part_points)
            if per_part_points
            else np.empty((0, d))
        )
        all_cells = (
            np.concatenate(per_part_cells)
            if per_part_cells
            else np.empty((0, d), dtype=int)
        )
        keys, segments, group_of = group_rows_by_cell(
            all_cells, self.cells_per_dim
        )
        if not keys:
            return
        sums = np.full((len(keys), d), -0.0, dtype=all_points.dtype)
        np.add.at(sums, group_of, all_points)
        starts = np.zeros(len(per_part_points) + 1, dtype=np.int64)
        np.cumsum([p.shape[0] for p in per_part_points], out=starts[1:])
        for g, (key, rows) in enumerate(zip(keys, segments)):
            self._stats[key] = CellStats(count=int(rows.size), sums=sums[g].copy())
            self._rows[key] = split_rows_by_partition(rows, starts)

    @property
    def is_built(self) -> bool:
        return self._lows is not None

    # Lookups -----------------------------------------------------------------
    def cells_for_box(self, lows, highs) -> List[CellKey]:
        """Non-empty cell keys intersecting the axis-aligned box."""
        self._require_built()
        lows = np.asarray(lows, dtype=float).ravel()
        highs = np.asarray(highs, dtype=float).ravel()
        lo_cell = self._clip_cell(lows)
        hi_cell = self._clip_cell(highs)
        keys: List[CellKey] = []
        for key in _iter_cells(lo_cell, hi_cell):
            if key in self._stats:
                keys.append(key)
        return keys

    def cells_for_selection(self, selection) -> List[CellKey]:
        """Non-empty cells a range/radius selection may touch."""
        lows, highs = selection.box()
        keys = self.cells_for_box(lows, highs)
        if isinstance(selection, RadiusSelection):
            keys = [
                key
                for key in keys
                if self._cell_box_distance(key, selection.center)
                <= selection.radius
            ]
        return keys

    def count_in_cells(self, keys: Iterable[CellKey]) -> int:
        return sum(self._stats[k].count for k in keys if k in self._stats)

    def rows_for_cells(
        self, keys: Iterable[CellKey]
    ) -> Dict[int, np.ndarray]:
        """{partition_index: row_indices} for the given cells.

        Row arrays concatenate per-cell runs in key order (ascending
        within each cell) — the exact order the historical per-row
        append produced, which downstream fetches materialise verbatim.
        """
        chunks: Dict[int, List[np.ndarray]] = {}
        for key in keys:
            for part_idx, rows in self._rows.get(key, ()):
                chunks.setdefault(part_idx, []).append(rows)
        return {
            part_idx: parts[0] if len(parts) == 1 else np.concatenate(parts)
            for part_idx, parts in chunks.items()
        }

    def density_histogram(self) -> Dict[CellKey, int]:
        """Cell -> count view (the statistical summary operators consult)."""
        self._require_built()
        return {key: stats.count for key, stats in self._stats.items()}

    def estimate_knn_radius(self, point, k: int, inflation: float = 1.5) -> float:
        """Histogram-driven search-radius estimate for a kNN query.

        Grows a cell-ring around the query point until the accumulated
        count reaches ``k``, then inflates the implied radius for safety —
        the radius-estimation idea behind coordinator-cohort kNN [33].
        """
        self._require_built()
        require(k >= 1, "k must be >= 1")
        point = np.asarray(point, dtype=float).ravel()
        center_cell = self._clip_cell(point)
        cell_width = float((self._span / self.cells_per_dim).max())
        d = len(self.columns)
        max_rings = self.cells_per_dim
        for ring in range(max_rings):
            lo = np.maximum(center_cell - ring, 0)
            hi = np.minimum(center_cell + ring, self.cells_per_dim - 1)
            accumulated = self.count_in_cells(_iter_cells(lo, hi))
            if accumulated >= k:
                # Assume roughly uniform density within the covered block
                # and shrink the radius to the ball expected to hold ~k
                # points; the operator's verification loop widens it again
                # if the estimate proves too tight, so this stays exact.
                block_radius = (ring + 1) * cell_width
                density_radius = block_radius * (k / accumulated) ** (1.0 / d)
                return max(density_radius, cell_width * 0.25) * inflation
        return float(np.linalg.norm(self._span))  # whole domain

    # Footprint ---------------------------------------------------------------
    def coordinator_state_bytes(self) -> int:
        """Bytes the coordinator holds (cell statistics only)."""
        per_cell = _CELL_STAT_BYTES + len(self.columns) * 8
        return len(self._stats) * per_cell

    def total_state_bytes(self) -> int:
        rows = (
            sum(
                int(run.size)
                for refs in self._rows.values()
                for _, run in refs
            )
            * _ROWREF_BYTES
        )
        return self.coordinator_state_bytes() + rows

    # Internals ---------------------------------------------------------------
    def _compute_bounds(self, stored: StoredTable):
        lows = None
        highs = None
        for partition in stored.partitions:
            points = partition.data.matrix(self.columns)
            if points.shape[0] == 0:
                continue
            p_lo, p_hi = points.min(axis=0), points.max(axis=0)
            lows = p_lo if lows is None else np.minimum(lows, p_lo)
            highs = p_hi if highs is None else np.maximum(highs, p_hi)
        require(lows is not None, f"table {self.table_name!r} is empty")
        span = highs - lows
        span[span == 0.0] = 1.0
        return lows, span

    def _cell_of(self, points: np.ndarray) -> np.ndarray:
        scaled = (points - self._lows) / self._span * self.cells_per_dim
        return np.clip(scaled.astype(int), 0, self.cells_per_dim - 1)

    def _clip_cell(self, point: np.ndarray) -> np.ndarray:
        scaled = (point - self._lows) / self._span * self.cells_per_dim
        return np.clip(scaled.astype(int), 0, self.cells_per_dim - 1)

    def _cell_box_distance(self, key: CellKey, point: np.ndarray) -> float:
        cell_lo = self._lows + np.asarray(key) / self.cells_per_dim * self._span
        cell_hi = (
            self._lows + (np.asarray(key) + 1) / self.cells_per_dim * self._span
        )
        below = np.maximum(cell_lo - point, 0.0)
        above = np.maximum(point - cell_hi, 0.0)
        gap = below + above
        return float(np.sqrt(gap @ gap))

    def _require_built(self) -> None:
        require(self.is_built, "index not built; call build() first")


def _iter_cells(lo_cell: np.ndarray, hi_cell: np.ndarray):
    """Iterate all integer cell keys in the inclusive hyper-rectangle."""
    ranges = [range(int(lo), int(hi) + 1) for lo, hi in zip(lo_cell, hi_cell)]
    if not ranges:
        return
    stack: List[CellKey] = [()]
    for r in ranges:
        stack = [key + (i,) for key in stack for i in r]
    yield from stack
