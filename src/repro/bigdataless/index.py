"""Distributed multidimensional indexes (RT2.1, objective O4).

A :class:`DistributedGridIndex` is the "statistical index structure" the
big-data-less operators rely on: a uniform grid over selected dimensions
where each cell records *statistics* (count, per-column sums) and the
*locations* (partition, row) of its rows.  The coordinator keeps the small
statistics table; row locations live with the data nodes.  Operators use
the statistics to decide which cells matter, then surgically read only
those cells' rows.

Index construction is an offline, one-off cost, metered separately so
experiments can report it (build once, amortise over the workload).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.validation import require
from repro.cluster.storage import DistributedStore, StoredTable
from repro.queries.selections import RadiusSelection

CellKey = Tuple[int, ...]

_CELL_STAT_BYTES = 8 * 4  # count + min/max id + reserved
_ROWREF_BYTES = 12


@dataclass
class CellStats:
    """Statistics the coordinator keeps per non-empty grid cell."""

    count: int = 0
    sums: Optional[np.ndarray] = None

    def add(self, values: np.ndarray) -> None:
        self.count += values.shape[0]
        total = values.sum(axis=0)
        self.sums = total if self.sums is None else self.sums + total


class DistributedGridIndex:
    """Uniform grid index over selected dimensions of a stored table."""

    def __init__(
        self,
        store: DistributedStore,
        table_name: str,
        columns: Sequence[str],
        cells_per_dim: int = 32,
    ) -> None:
        require(cells_per_dim >= 2, "cells_per_dim must be >= 2")
        self.store = store
        self.table_name = table_name
        self.columns = tuple(columns)
        self.cells_per_dim = cells_per_dim
        self._stats: Dict[CellKey, CellStats] = {}
        self._rows: Dict[CellKey, List[Tuple[int, int]]] = {}
        self._lows: Optional[np.ndarray] = None
        self._span: Optional[np.ndarray] = None
        self.build_report: Optional[CostReport] = None

    # Construction -----------------------------------------------------------
    def build(self) -> CostReport:
        """Scan the table once, populating cell stats and row directories."""
        meter = CostMeter()
        stored = self.store.table(self.table_name)
        bounds = self._compute_bounds(stored)
        self._lows, self._span = bounds
        slowest = 0.0
        for part_idx, partition in enumerate(stored.partitions):
            data = self.store.read_partition(partition, meter)
            seconds = data.n_bytes / meter.rates.disk_bytes_per_sec
            seconds += meter.charge_cpu(partition.primary_node, data.n_bytes)
            slowest = max(slowest, seconds)
            points = data.matrix(self.columns)
            cells = self._cell_of(points)
            for row_idx, key in enumerate(map(tuple, cells)):
                self._rows.setdefault(key, []).append((part_idx, row_idx))
                stats = self._stats.setdefault(key, CellStats())
                stats.add(points[row_idx : row_idx + 1])
            # The node keeps its share of the row directory.
            node = self.store.topology.node(partition.primary_node)
            node.add_index_bytes(data.n_rows * _ROWREF_BYTES)
        meter.advance(slowest)
        self.build_report = meter.freeze()
        return self.build_report

    @property
    def is_built(self) -> bool:
        return self._lows is not None

    # Lookups -----------------------------------------------------------------
    def cells_for_box(self, lows, highs) -> List[CellKey]:
        """Non-empty cell keys intersecting the axis-aligned box."""
        self._require_built()
        lows = np.asarray(lows, dtype=float).ravel()
        highs = np.asarray(highs, dtype=float).ravel()
        lo_cell = self._clip_cell(lows)
        hi_cell = self._clip_cell(highs)
        keys: List[CellKey] = []
        for key in _iter_cells(lo_cell, hi_cell):
            if key in self._stats:
                keys.append(key)
        return keys

    def cells_for_selection(self, selection) -> List[CellKey]:
        """Non-empty cells a range/radius selection may touch."""
        lows, highs = selection.box()
        keys = self.cells_for_box(lows, highs)
        if isinstance(selection, RadiusSelection):
            keys = [
                key
                for key in keys
                if self._cell_box_distance(key, selection.center)
                <= selection.radius
            ]
        return keys

    def count_in_cells(self, keys: Iterable[CellKey]) -> int:
        return sum(self._stats[k].count for k in keys if k in self._stats)

    def rows_for_cells(
        self, keys: Iterable[CellKey]
    ) -> Dict[int, List[int]]:
        """{partition_index: row_indices} for the given cells."""
        rows: Dict[int, List[int]] = {}
        for key in keys:
            for part_idx, row_idx in self._rows.get(key, ()):
                rows.setdefault(part_idx, []).append(row_idx)
        return rows

    def density_histogram(self) -> Dict[CellKey, int]:
        """Cell -> count view (the statistical summary operators consult)."""
        self._require_built()
        return {key: stats.count for key, stats in self._stats.items()}

    def estimate_knn_radius(self, point, k: int, inflation: float = 1.5) -> float:
        """Histogram-driven search-radius estimate for a kNN query.

        Grows a cell-ring around the query point until the accumulated
        count reaches ``k``, then inflates the implied radius for safety —
        the radius-estimation idea behind coordinator-cohort kNN [33].
        """
        self._require_built()
        require(k >= 1, "k must be >= 1")
        point = np.asarray(point, dtype=float).ravel()
        center_cell = self._clip_cell(point)
        cell_width = float((self._span / self.cells_per_dim).max())
        d = len(self.columns)
        max_rings = self.cells_per_dim
        for ring in range(max_rings):
            lo = np.maximum(center_cell - ring, 0)
            hi = np.minimum(center_cell + ring, self.cells_per_dim - 1)
            accumulated = self.count_in_cells(_iter_cells(lo, hi))
            if accumulated >= k:
                # Assume roughly uniform density within the covered block
                # and shrink the radius to the ball expected to hold ~k
                # points; the operator's verification loop widens it again
                # if the estimate proves too tight, so this stays exact.
                block_radius = (ring + 1) * cell_width
                density_radius = block_radius * (k / accumulated) ** (1.0 / d)
                return max(density_radius, cell_width * 0.25) * inflation
        return float(np.linalg.norm(self._span))  # whole domain

    # Footprint ---------------------------------------------------------------
    def coordinator_state_bytes(self) -> int:
        """Bytes the coordinator holds (cell statistics only)."""
        per_cell = _CELL_STAT_BYTES + len(self.columns) * 8
        return len(self._stats) * per_cell

    def total_state_bytes(self) -> int:
        rows = sum(len(v) for v in self._rows.values()) * _ROWREF_BYTES
        return self.coordinator_state_bytes() + rows

    # Internals ---------------------------------------------------------------
    def _compute_bounds(self, stored: StoredTable):
        lows = None
        highs = None
        for partition in stored.partitions:
            points = partition.data.matrix(self.columns)
            if points.shape[0] == 0:
                continue
            p_lo, p_hi = points.min(axis=0), points.max(axis=0)
            lows = p_lo if lows is None else np.minimum(lows, p_lo)
            highs = p_hi if highs is None else np.maximum(highs, p_hi)
        require(lows is not None, f"table {self.table_name!r} is empty")
        span = highs - lows
        span[span == 0.0] = 1.0
        return lows, span

    def _cell_of(self, points: np.ndarray) -> np.ndarray:
        scaled = (points - self._lows) / self._span * self.cells_per_dim
        return np.clip(scaled.astype(int), 0, self.cells_per_dim - 1)

    def _clip_cell(self, point: np.ndarray) -> np.ndarray:
        scaled = (point - self._lows) / self._span * self.cells_per_dim
        return np.clip(scaled.astype(int), 0, self.cells_per_dim - 1)

    def _cell_box_distance(self, key: CellKey, point: np.ndarray) -> float:
        cell_lo = self._lows + np.asarray(key) / self.cells_per_dim * self._span
        cell_hi = (
            self._lows + (np.asarray(key) + 1) / self.cells_per_dim * self._span
        )
        below = np.maximum(cell_lo - point, 0.0)
        above = np.maximum(point - cell_hi, 0.0)
        gap = below + above
        return float(np.sqrt(gap @ gap))

    def _require_built(self) -> None:
        require(self.is_built, "index not built; call build() first")


def _iter_cells(lo_cell: np.ndarray, hi_cell: np.ndarray):
    """Iterate all integer cell keys in the inclusive hyper-rectangle."""
    ranges = [range(int(lo), int(hi) + 1) for lo, hi in zip(lo_cell, hi_cell)]
    if not ranges:
        return
    stack: List[CellKey] = [()]
    for r in ranges:
        stack = [key + (i,) for key in stack for i in r]
    yield from stack
