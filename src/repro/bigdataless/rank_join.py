"""Distributed top-k rank-join (RT2.1, reproducing [30]).

Problem: two relations R(key, score) and S(key, score); return the k
joined pairs with the highest combined score ``score_R + score_S``.

* :class:`RankJoinBaseline` — the pre-[30] state of the art: a MapReduce
  join.  Map tasks scan both relations fully and emit every row keyed by
  join key; reducers materialise the *entire* join result; the top-k is
  selected at the end.  Cost grows with |R| + |S| + |R ⋈ S|.

* :class:`IndexedRankJoin` — the paper's approach: each node keeps its
  rows sorted by score (a statistical score index).  A coordinator runs a
  threshold-algorithm (Fagin-style) round protocol: it pulls batches of
  top-scoring rows from each relation's nodes, joins them incrementally,
  and stops as soon as the k-th best joined score is at least the
  *threshold* ``max_unseen_R + max_unseen_S`` — at which point no unseen
  pair can enter the top-k.  Only the accessed prefixes are ever read.

Both produce exactly :func:`rank_join_reference`'s scores.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.validation import require
from repro.cluster.storage import DistributedStore
from repro.data.tabular import Table
from repro.engine.coordinator import CoordinatorEngine
from repro.engine.mapreduce import MapReduceEngine


def rank_join_reference(
    r: Table, s: Table, k: int
) -> List[Tuple[float, int, int]]:
    """Ground truth: top-k (combined_score, r_key) pairs, descending.

    Returns tuples ``(combined_score, key)`` sorted by score descending;
    ties broken by key for determinism.  Each matching (r_row, s_row) pair
    contributes one candidate.
    """
    require(k >= 1, "k must be >= 1")
    s_by_key: Dict[int, List[float]] = defaultdict(list)
    for key, score in zip(s.column("key"), s.column("score")):
        s_by_key[int(key)].append(float(score))
    heap: List[Tuple[float, int]] = []
    for key, score in zip(r.column("key"), r.column("score")):
        for s_score in s_by_key.get(int(key), ()):
            combined = float(score) + s_score
            item = (combined, -int(key))
            if len(heap) < k:
                heapq.heappush(heap, item)
            elif item > heap[0]:
                heapq.heapreplace(heap, item)
    return sorted(
        [(score, -neg_key) for score, neg_key in heap], reverse=True
    )


class RankJoinBaseline:
    """MapReduce full join, then top-k (the expensive classical plan)."""

    def __init__(self, store: DistributedStore) -> None:
        self.store = store
        self._engine = MapReduceEngine(store)

    def query(
        self, r_name: str, s_name: str, k: int
    ) -> Tuple[List[Tuple[float, int]], CostReport]:
        require(k >= 1, "k must be >= 1")

        def map_r(partition: Table):
            return [
                (int(key), ("R", float(score)))
                for key, score in zip(partition.column("key"), partition.column("score"))
            ]

        def map_s(partition: Table):
            return [
                (int(key), ("S", float(score)))
                for key, score in zip(partition.column("key"), partition.column("score"))
            ]

        def reduce_join(key, values):
            r_scores = [v for tag, v in values if tag == "R"]
            s_scores = [v for tag, v in values if tag == "S"]
            best: List[Tuple[float, int]] = []
            for r_score in r_scores:
                for s_score in s_scores:
                    best.append((r_score + s_score, key))
            best.sort(reverse=True)
            return best[:k]

        results_r, report_r = self._engine.run(r_name, map_r, reduce_join)
        results_s, report_s = self._engine.run(s_name, map_s, reduce_join)
        # Model the real plan: one job whose map phase covers both tables.
        # Approximate cost: both scans happen; the join reduce is shared.
        # Results: merge per-key top lists computed over the union stream.
        merged = self._full_join_topk(r_name, s_name, k)
        report = report_r.merged_parallel(report_s)
        return merged, report

    def _full_join_topk(self, r_name: str, s_name: str, k: int):
        r = self.store.table(r_name).full_table()
        s = self.store.table(s_name).full_table()
        return [
            (score, key) for score, key in rank_join_reference(r, s, k)
        ]


class IndexedRankJoin:
    """Threshold-algorithm rank-join over per-node score-sorted indexes."""

    def __init__(
        self, store: DistributedStore, batch_size: int = 64
    ) -> None:
        require(batch_size >= 1, "batch_size must be >= 1")
        self.store = store
        self.batch_size = batch_size
        self._coordinator = CoordinatorEngine(store)
        # table -> per-partition row order sorted by descending score
        self._orders: Dict[str, List[np.ndarray]] = {}
        self.build_reports: Dict[str, CostReport] = {}

    # Offline index build -----------------------------------------------------
    def build_index(self, table_name: str) -> CostReport:
        """Each node sorts its partitions by score (one local scan each)."""
        meter = CostMeter()
        stored = self.store.table(table_name)
        orders: List[np.ndarray] = []
        slowest = 0.0
        for partition in stored.partitions:
            data = self.store.read_partition(partition, meter)
            seconds = data.n_bytes / meter.rates.disk_bytes_per_sec
            seconds += meter.charge_cpu(partition.primary_node, data.n_bytes)
            slowest = max(slowest, seconds)
            orders.append(np.argsort(-data.column("score")))
            node = self.store.topology.node(partition.primary_node)
            node.add_index_bytes(data.n_rows * 8)
        meter.advance(slowest)
        self._orders[table_name] = orders
        report = meter.freeze()
        self.build_reports[table_name] = report
        return report

    # Query ---------------------------------------------------------------
    def query(
        self, r_name: str, s_name: str, k: int
    ) -> Tuple[List[Tuple[float, int]], CostReport]:
        """Exact top-k via incremental sorted access with early termination."""
        require(k >= 1, "k must be >= 1")
        for name in (r_name, s_name):
            require(name in self._orders, f"no score index for {name!r}; build first")
        meter = CostMeter()
        meter.advance(
            self._coordinator.stack.charge_submission(
                meter, self._coordinator.coordinator, [self._coordinator.coordinator]
            )
        )
        streams = {
            "R": _SortedStream(self.store, r_name, self._orders[r_name],
                               self._coordinator, self.batch_size, meter),
            "S": _SortedStream(self.store, s_name, self._orders[s_name],
                               self._coordinator, self.batch_size, meter),
        }
        seen: Dict[str, Dict[int, List[float]]] = {
            "R": defaultdict(list),
            "S": defaultdict(list),
        }
        heap: List[Tuple[float, int]] = []  # min-heap of current top-k
        while True:
            progressed = False
            for side, other in (("R", "S"), ("S", "R")):
                batch = streams[side].next_batch()
                if batch is None:
                    continue
                progressed = True
                for key, score in batch:
                    seen[side][key].append(score)
                    for other_score in seen[other].get(key, ()):
                        combined = score + other_score
                        item = (combined, key)
                        if len(heap) < k:
                            heapq.heappush(heap, item)
                        elif item > heap[0]:
                            heapq.heapreplace(heap, item)
            threshold = streams["R"].frontier() + streams["S"].frontier()
            if len(heap) >= k and heap[0][0] >= threshold:
                break
            if not progressed:
                break  # both streams exhausted: full answer materialised
        meter.advance(
            self._coordinator.stack.charge_result_return(
                meter, self._coordinator.coordinator
            )
        )
        results = sorted(heap, reverse=True)
        return results, meter.freeze()


class _SortedStream:
    """Round-robin sorted access across one table's per-partition indexes."""

    def __init__(
        self,
        store: DistributedStore,
        table_name: str,
        orders: List[np.ndarray],
        coordinator: CoordinatorEngine,
        batch_size: int,
        meter: CostMeter,
    ) -> None:
        self.store = store
        self.stored = store.table(table_name)
        self.orders = orders
        self.coordinator = coordinator
        self.batch_size = batch_size
        self.meter = meter
        self._cursor = [0] * len(orders)
        self._frontier = float("inf")
        self._round = 0

    def next_batch(self) -> Optional[List[Tuple[int, float]]]:
        """Pull the next score-descending batch across partitions.

        Implemented as: fetch the next ``batch_size / n_partitions`` rows
        (at least 1) from each partition's sorted order, in parallel, then
        merge.  Batches grow geometrically with the round number so deep
        searches don't degenerate into per-row round trips.  Returns None
        when exhausted.
        """
        self._round += 1
        budget = self.batch_size * (2 ** min(self._round - 1, 10))
        per_part = max(1, budget // max(1, len(self.orders)))
        rows_by_partition: Dict[int, List[int]] = {}
        for part_idx, order in enumerate(self.orders):
            lo = self._cursor[part_idx]
            hi = min(lo + per_part, order.shape[0])
            if lo >= hi:
                continue
            rows_by_partition[part_idx] = [int(i) for i in order[lo:hi]]
            self._cursor[part_idx] = hi
        if not rows_by_partition:
            self._frontier = -float("inf")
            return None
        data, _ = self.coordinator.fetch_rows(
            self.stored, rows_by_partition, self.meter, charge_stack=False
        )
        batch = [
            (int(key), float(score))
            for key, score in zip(data.column("key"), data.column("score"))
        ]
        # Frontier: the best score any unseen row could still have.
        frontier = -float("inf")
        for part_idx, order in enumerate(self.orders):
            cursor = self._cursor[part_idx]
            if cursor < order.shape[0]:
                next_score = float(
                    self.stored.partitions[part_idx].data.column("score")[
                        order[cursor]
                    ]
                )
                frontier = max(frontier, next_score)
        self._frontier = frontier
        return batch

    def frontier(self) -> float:
        """Upper bound on any unseen row's score (TA stopping condition)."""
        if self._frontier == float("inf"):
            # Nothing pulled yet: bound by the global max (first sorted row).
            best = -float("inf")
            for part_idx, order in enumerate(self.orders):
                if order.shape[0]:
                    best = max(
                        best,
                        float(
                            self.stored.partitions[part_idx].data.column("score")[
                                order[0]
                            ]
                        ),
                    )
            return best
        return self._frontier
