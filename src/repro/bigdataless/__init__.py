"""Big-data-less big data analytics (P3, RT2): surgical data access.

"Develop algorithms, structures, and models, which will process said
analytics tasks via surgically accessing the smallest data subset that is
required to compute the answers."

* :mod:`repro.bigdataless.index` — distributed grid + per-node k-d
  indexes with cell statistics.
* :mod:`repro.bigdataless.rank_join` — rank-join via per-node sorted score
  access and a threshold-algorithm coordinator (the "up to 6 orders of
  magnitude" result of [30]) vs the MapReduce join-everything baseline.
* :mod:`repro.bigdataless.knn` — coordinator-cohort kNN with
  radius-estimate pruning (the "three orders of magnitude" of [33]) vs
  the scan-everything MapReduce baseline [31], [32].
* :mod:`repro.bigdataless.subgraph` — subgraph matching with a
  GraphCache-like semantic cache (the "up to 40X" of [34], [35]).
* :mod:`repro.bigdataless.imputation` — scalable missing-value imputation
  via donor indexes [36].
* :mod:`repro.bigdataless.adhoc` — ad hoc ML (cluster/classify/regress)
  on index-selected subspaces (RT2.2).
"""

from repro.bigdataless.index import DistributedGridIndex, CellStats
from repro.bigdataless.rank_join import (
    RankJoinBaseline,
    IndexedRankJoin,
    rank_join_reference,
)
from repro.bigdataless.knn import KNNBaseline, CoordinatorKNN, knn_reference
from repro.bigdataless.subgraph import GraphStore, SubgraphMatcher, SemanticGraphCache
from repro.bigdataless.imputation import MapReduceImputer, SurgicalKNNImputer
from repro.bigdataless.adhoc import AdHocMLEngine
from repro.bigdataless.raw import (
    RawDataStore,
    ColdScanEngine,
    EagerETLEngine,
    AdaptiveCrackingEngine,
)
from repro.bigdataless.spatial import (
    KNNJoinBaseline,
    IndexedKNNJoin,
    knn_join_reference,
    DistanceJoinBaseline,
    IndexedDistanceJoin,
    distance_join_reference,
)
from repro.bigdataless.knn_variants import (
    ReverseKNN,
    ApproximateKNN,
    AllPairKNN,
    reverse_knn_reference,
)

__all__ = [
    "RawDataStore",
    "ColdScanEngine",
    "EagerETLEngine",
    "AdaptiveCrackingEngine",
    "KNNJoinBaseline",
    "IndexedKNNJoin",
    "knn_join_reference",
    "DistanceJoinBaseline",
    "IndexedDistanceJoin",
    "distance_join_reference",
    "ReverseKNN",
    "ApproximateKNN",
    "AllPairKNN",
    "reverse_knn_reference",
    "DistributedGridIndex",
    "CellStats",
    "RankJoinBaseline",
    "IndexedRankJoin",
    "rank_join_reference",
    "KNNBaseline",
    "CoordinatorKNN",
    "knn_reference",
    "GraphStore",
    "SubgraphMatcher",
    "SemanticGraphCache",
    "MapReduceImputer",
    "SurgicalKNNImputer",
    "AdHocMLEngine",
]
