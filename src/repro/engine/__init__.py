"""Distributed execution frameworks over the simulated cluster.

Two processing paradigms, matching the distinction the paper draws in
RT3.2:

* :class:`repro.engine.mapreduce.MapReduceEngine` — the classic BDAS path:
  a job fans out over *every* partition of a table, paying task startup,
  full scans, a shuffle, and a reduce, all through the layered stack.
* :class:`repro.engine.coordinator.CoordinatorEngine` — the
  coordinator-cohort path: one coordinating node contacts only specific
  nodes and surgically reads only specific rows.

Both compute real answers on the stored numpy data while charging
simulated costs to a :class:`~repro.common.CostMeter`.
"""

from repro.engine.bdas import BDASStack
from repro.engine.resources import ResourceManager
from repro.engine.mapreduce import MapReduceEngine
from repro.engine.coordinator import CoordinatorEngine
from repro.engine.pruning import (
    ScanPlan,
    plan_scan,
    prune_row_plan,
    synopsis_partial,
)
from repro.engine.simulation import (
    OpenLoopSimulator,
    ClosedLoopSimulator,
    SimulationResult,
    mdc_response_time,
)

__all__ = [
    "BDASStack",
    "ResourceManager",
    "MapReduceEngine",
    "CoordinatorEngine",
    "ScanPlan",
    "plan_scan",
    "prune_row_plan",
    "synopsis_partial",
    "OpenLoopSimulator",
    "ClosedLoopSimulator",
    "SimulationResult",
    "mdc_response_time",
]
