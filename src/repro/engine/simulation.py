"""Event-driven closed/open-loop query-arrival simulation.

The throughput experiment (E3) uses an M/D/c approximation over measured
per-query demands; this module provides the discrete-event counterpart so
the approximation can be validated and richer scenarios (mixed query
classes, finite analyst populations) can be simulated exactly.

* :class:`OpenLoopSimulator` — Poisson arrivals at a fixed rate into a
  ``c``-server FCFS queue; each job's service time is drawn from a given
  per-class demand.
* :class:`ClosedLoopSimulator` — ``m`` analysts, each submitting a new
  query a fixed think time after receiving the previous answer (the
  population model of Fig. 1/2).

Both return per-job response times and utilisation summaries.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.rng import SeedLike, make_rng
from repro.common.validation import require


def mdc_response_time(
    arrival_rate: float, service_sec: float, servers: int
) -> Tuple[float, float]:
    """Approximate M/D/c mean response time; (inf, rho) when unstable.

    Deterministic service halves the M/M/1-style wait; the experiment E3
    uses this closed form, and :class:`OpenLoopSimulator` validates it.
    """
    utilisation = arrival_rate * service_sec / servers
    if utilisation >= 1.0:
        return float("inf"), utilisation
    wait = (utilisation / (1 - utilisation)) * service_sec / (2 * servers)
    return service_sec + wait, utilisation


@dataclass
class SimulationResult:
    """Summary of one simulation run."""

    response_times: np.ndarray
    waits: np.ndarray
    utilisation: float
    completed: int
    horizon: float

    @property
    def mean_response(self) -> float:
        return float(self.response_times.mean()) if self.completed else float("inf")

    @property
    def p95_response(self) -> float:
        return (
            float(np.quantile(self.response_times, 0.95))
            if self.completed
            else float("inf")
        )

    @property
    def throughput(self) -> float:
        return self.completed / self.horizon if self.horizon > 0 else 0.0


def _run_queue(
    arrivals: List[float],
    service_times: List[float],
    n_servers: int,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """FCFS multi-server queue; returns (responses, waits, busy_time)."""
    free_at = [0.0] * n_servers
    heapq.heapify(free_at)
    responses, waits = [], []
    busy = 0.0
    for arrival, service in zip(arrivals, service_times):
        server_free = heapq.heappop(free_at)
        start = max(arrival, server_free)
        finish = start + service
        heapq.heappush(free_at, finish)
        waits.append(start - arrival)
        responses.append(finish - arrival)
        busy += service
    return np.asarray(responses), np.asarray(waits), busy


class OpenLoopSimulator:
    """Poisson arrivals into a c-server FCFS queue."""

    def __init__(
        self,
        n_servers: int,
        service_sampler: Callable[[np.random.Generator], float],
        seed: SeedLike = 0,
    ) -> None:
        require(n_servers >= 1, "n_servers must be >= 1")
        self.n_servers = n_servers
        self.service_sampler = service_sampler
        self._rng = make_rng(seed)

    @classmethod
    def deterministic(
        cls, n_servers: int, service_sec: float, seed: SeedLike = 0
    ) -> "OpenLoopSimulator":
        require(service_sec > 0, "service_sec must be positive")
        return cls(n_servers, lambda rng: service_sec, seed=seed)

    @classmethod
    def mixture(
        cls,
        n_servers: int,
        demands: Sequence[float],
        weights: Sequence[float],
        seed: SeedLike = 0,
    ) -> "OpenLoopSimulator":
        """Service times drawn from a discrete mixture (e.g. data-less vs
        fallback demands with the agent's serving fractions)."""
        demands = np.asarray(demands, dtype=float)
        weights = np.asarray(weights, dtype=float)
        require(demands.shape == weights.shape, "demands/weights mismatch")
        require(np.all(weights >= 0) and weights.sum() > 0, "bad weights")
        probs = weights / weights.sum()

        def sample(rng: np.random.Generator) -> float:
            return float(demands[rng.choice(len(demands), p=probs)])

        return cls(n_servers, sample, seed=seed)

    def run(self, arrival_rate: float, n_jobs: int = 2000) -> SimulationResult:
        require(arrival_rate > 0, "arrival_rate must be positive")
        require(n_jobs >= 1, "n_jobs must be >= 1")
        gaps = self._rng.exponential(1.0 / arrival_rate, size=n_jobs)
        arrivals = np.cumsum(gaps).tolist()
        services = [self.service_sampler(self._rng) for _ in range(n_jobs)]
        responses, waits, busy = _run_queue(arrivals, services, self.n_servers)
        horizon = arrivals[-1] + responses[-1]
        return SimulationResult(
            response_times=responses,
            waits=waits,
            utilisation=busy / (self.n_servers * horizon),
            completed=n_jobs,
            horizon=horizon,
        )


class ClosedLoopSimulator:
    """m analysts with think time: submit, wait for answer, think, repeat."""

    def __init__(
        self,
        n_servers: int,
        service_sampler: Callable[[np.random.Generator], float],
        think_time_sec: float = 1.0,
        seed: SeedLike = 0,
    ) -> None:
        require(n_servers >= 1, "n_servers must be >= 1")
        require(think_time_sec >= 0, "think_time_sec must be non-negative")
        self.n_servers = n_servers
        self.service_sampler = service_sampler
        self.think_time = think_time_sec
        self._rng = make_rng(seed)

    def run(self, n_analysts: int, queries_per_analyst: int = 50) -> SimulationResult:
        require(n_analysts >= 1, "n_analysts must be >= 1")
        require(queries_per_analyst >= 1, "queries_per_analyst must be >= 1")
        # Event-driven: each analyst alternates think -> queue -> served.
        free_at = [0.0] * self.n_servers
        heapq.heapify(free_at)
        responses, waits = [], []
        busy = 0.0
        horizon = 0.0
        # (next submission time, analyst remaining queries)
        analysts = [
            (float(self._rng.exponential(self.think_time + 1e-12)), queries_per_analyst)
            for _ in range(n_analysts)
        ]
        pending = [(t, i) for i, (t, _) in enumerate(analysts)]
        heapq.heapify(pending)
        remaining = [queries_per_analyst] * n_analysts
        while pending:
            submit_time, analyst = heapq.heappop(pending)
            service = self.service_sampler(self._rng)
            server_free = heapq.heappop(free_at)
            start = max(submit_time, server_free)
            finish = start + service
            heapq.heappush(free_at, finish)
            waits.append(start - submit_time)
            responses.append(finish - submit_time)
            busy += service
            horizon = max(horizon, finish)
            remaining[analyst] -= 1
            if remaining[analyst] > 0:
                think = float(self._rng.exponential(self.think_time + 1e-12))
                heapq.heappush(pending, (finish + think, analyst))
        return SimulationResult(
            response_times=np.asarray(responses),
            waits=np.asarray(waits),
            utilisation=busy / (self.n_servers * horizon) if horizon else 0.0,
            completed=len(responses),
            horizon=horizon,
        )
