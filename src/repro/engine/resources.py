"""Resource management: task slots and makespan scheduling.

A YARN-like resource manager with a fixed number of task slots per node.
Engines hand it a bag of task durations; it returns the simulated makespan
under greedy longest-processing-time-first assignment, which is how the
simulator turns "run 64 map tasks on 8 nodes x 2 slots" into elapsed time.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.common.validation import require
from repro.cluster.topology import ClusterTopology


class ResourceManager:
    """Slot-based scheduler for the simulated cluster."""

    def __init__(self, topology: ClusterTopology, slots_per_node: int = 2) -> None:
        require(slots_per_node >= 1, "slots_per_node must be >= 1")
        self.topology = topology
        self.slots_per_node = slots_per_node

    def total_slots(self, node_ids: Iterable[str] = None) -> int:
        nodes = list(node_ids) if node_ids is not None else self.topology.node_ids
        return len(nodes) * self.slots_per_node

    def makespan(self, task_seconds: Sequence[float], n_slots: int = None) -> float:
        """LPT-greedy makespan of the tasks over ``n_slots`` parallel slots."""
        durations = [float(t) for t in task_seconds]
        if not durations:
            return 0.0
        slots = n_slots if n_slots is not None else self.total_slots()
        require(slots >= 1, "need at least one slot")
        heap = [0.0] * min(slots, len(durations))
        heapq.heapify(heap)
        for duration in sorted(durations, reverse=True):
            if duration < 0:
                raise ValueError(f"negative task duration {duration}")
            finish = heapq.heappop(heap)
            heapq.heappush(heap, finish + duration)
        return max(heap)

    def makespan_per_node(
        self, node_tasks: Dict[str, Sequence[float]]
    ) -> float:
        """Makespan when each task is pinned to a specific node.

        Data-local tasks (e.g. map tasks) run where their partition lives;
        each node runs its own tasks on its own slots.
        """
        worst = 0.0
        for node_id, durations in node_tasks.items():
            local = self.makespan(durations, n_slots=self.slots_per_node)
            worst = max(worst, local)
        return worst

    def queueing_delay(self, pending_jobs: int, avg_job_seconds: float) -> float:
        """Crude M/D/c-style delay for a backlog of whole jobs.

        Used by the throughput experiment (E3): when jobs arrive faster
        than the cluster drains them, each new job waits for the backlog.
        """
        require(pending_jobs >= 0, "pending_jobs must be >= 0")
        if pending_jobs == 0:
            return 0.0
        concurrency = max(1, len(self.topology))
        return pending_jobs * avg_job_seconds / concurrency
