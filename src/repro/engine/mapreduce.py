"""MapReduce-style execution over the distributed store.

This is the "traditional" path of Fig. 1: a job touches *every* partition
of its input table.  Each map task pays container startup + a full scan +
CPU over the partition; map outputs are shuffled (hash-partitioned by key)
to reducer nodes; reduce tasks aggregate; results return to the driver.

``map_fn`` and ``reduce_fn`` are real Python callables over the real data,
so results are exact; only the *costs* are simulated.
"""

from __future__ import annotations

import heapq
import zlib
from collections import defaultdict
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.errors import PartitionLostError
from repro.common.validation import require
from repro.cluster.storage import DistributedStore, StoredTable
from repro.data.tabular import Table
from repro.engine.bdas import BDASStack
from repro.engine.pruning import SCAN, SKIP, SYNOPSIS, ScanPlan
from repro.engine.resources import ResourceManager
from repro.faults.policy import FailoverPolicy
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.parallel import Morsel, ScanExecutor, partition_morsels
from repro.parallel.spec import BoundSpec, TaskSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.colscan import ColumnScan

MapFn = Callable[[Table], Iterable[Tuple[Any, Any]]]
ReduceFn = Callable[[Any, List[Any]], Any]

_KV_OVERHEAD_BYTES = 16


def stable_hash(key: Any) -> int:
    """Deterministic key hash (Python's ``hash`` is salted per process)."""
    return zlib.crc32(repr(key).encode())


def estimate_payload_bytes(value: Any) -> int:
    """Serialized-size estimate for shuffle/result payloads."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, Table):
        return value.n_bytes
    if isinstance(value, (list, tuple)):
        return sum(estimate_payload_bytes(v) for v in value) + 8
    if isinstance(value, dict):
        return (
            sum(
                estimate_payload_bytes(k) + estimate_payload_bytes(v)
                for k, v in value.items()
            )
            + 8
        )
    if isinstance(value, (bytes, str)):
        return len(value)
    return 8  # scalar


class MapReduceEngine:
    """Hadoop/Spark-style engine: full fan-out map, shuffle, reduce."""

    def __init__(
        self,
        store: DistributedStore,
        resources: Optional[ResourceManager] = None,
        stack: Optional[BDASStack] = None,
        rates: Optional["CostRates"] = None,
        observer: Optional[Observer] = None,
        failover: Optional[FailoverPolicy] = None,
        executor: Optional[ScanExecutor] = None,
    ) -> None:
        self.store = store
        self.topology = store.topology
        self.resources = resources or ResourceManager(store.topology)
        self.stack = stack or BDASStack()
        self.rates = rates
        self.observer = observer or NULL_OBSERVER
        self.failover = failover or FailoverPolicy()
        # Morsel pool for the real per-partition compute (map functions,
        # shared batch passes).  All *charging* stays on this thread in
        # partition order, so results and costs are byte-identical to the
        # serial path at any worker count.  None (or workers=1) keeps the
        # historical inline loops.
        self.executor = executor

    def attach_observer(self, observer: Observer) -> None:
        """Record traces/metrics/events for subsequent jobs on ``observer``."""
        self.observer = observer

    @contextmanager
    def _phase(self, obs: Observer, name: str, meter: CostMeter):
        """One engine phase: a trace span plus a flight-recorder note.

        The note carries the phase's *simulated* elapsed seconds (a
        meter delta), never host seconds, so profiles stay byte-identical
        at any morsel-pool worker count.
        """
        before = meter.elapsed_sec
        with obs.span(name, meter=meter, category="phase"):
            yield
        if obs.enabled:
            obs.profile_note(
                "phase", name=name, seconds=meter.elapsed_sec - before
            )

    def run(
        self,
        table_name: str,
        map_fn: MapFn,
        reduce_fn: ReduceFn,
        n_reducers: int = 0,
        driver_node: Optional[str] = None,
        meter: Optional[CostMeter] = None,
        plan: Optional[ScanPlan] = None,
        on_lost: str = "raise",
        lost: Optional[List[int]] = None,
        scan: Optional["ColumnScan"] = None,
    ) -> Tuple[Dict[Any, Any], CostReport]:
        """Execute one job; returns (results-by-key, cost report).

        ``plan`` (a zone-map :class:`~repro.engine.pruning.ScanPlan`)
        restricts the fan-out: skipped partitions are never read, never
        charged, and their nodes are never engaged; covered partitions
        emit their precomputed synopsis partials for the price of a
        metadata read.  Without a plan every partition is scanned.

        ``scan`` (a :class:`~repro.engine.colscan.ColumnScan`) enables
        column pruning on columnar-layout partitions: map tasks read only
        the scan's columns in encoded form (``map_fn`` then receives a
        :class:`~repro.cluster.columnar.ColumnarPartition` instead of a
        :class:`Table` and must handle both), and the meter charges the
        encoded bytes actually read.  Row-major partitions ignore it.

        With a fault injector attached to the store, scans run through
        the engine's :class:`~repro.faults.FailoverPolicy`.  A partition
        with no live replica raises :class:`PartitionLostError` when
        ``on_lost="raise"`` (the default); with ``on_lost="skip"`` the
        partition contributes nothing and its index is appended to the
        caller-supplied ``lost`` list (degrade-mode engines reconcile it).
        """
        require(on_lost in ("raise", "skip"), f"unknown on_lost {on_lost!r}")
        stored = self.store.table(table_name)
        require(len(stored.partitions) >= 1, "table has no partitions")
        if plan is not None:
            require(
                len(plan.actions) == len(stored.partitions),
                f"plan covers {len(plan.actions)} partitions, "
                f"table has {len(stored.partitions)}",
            )
        obs = self.observer
        if meter is None:
            watcher = obs if obs.enabled else None
            meter = (
                CostMeter(self.rates, observer=watcher)
                if self.rates
                else CostMeter(observer=watcher)
            )
        elif not obs.enabled and meter.observer is not None:
            obs = meter.observer  # caller-attached observer travels with the meter
        driver = driver_node or self.topology.pick_coordinator()
        reducers = self._reducer_nodes(stored, n_reducers)

        engaged = self._engaged_nodes(stored, reducers, plan)
        with obs.span(
            "mapreduce", meter=meter, category="job", table=table_name
        ):
            with self._phase(obs, "submit", meter):
                meter.advance(self.stack.charge_submission(meter, driver, engaged))

            with self._phase(obs, "map", meter):
                map_outputs, map_elapsed = self._map_phase(
                    stored,
                    map_fn,
                    meter,
                    obs,
                    precomputed=self._parallel_map_outputs(
                        stored, map_fn, plan, obs, scan=scan
                    ),
                    plan=plan,
                    driver=driver,
                    on_lost=on_lost,
                    lost=lost,
                    scan=scan,
                )
                meter.advance(map_elapsed)

            with self._phase(obs, "shuffle", meter):
                grouped, ingest_bytes, shuffle_elapsed = self._shuffle_phase(
                    map_outputs, reducers, meter
                )
                meter.advance(shuffle_elapsed)

            with self._phase(obs, "reduce", meter):
                results, reduce_elapsed = self._reduce_phase(
                    grouped, reduce_fn, reducers, meter, obs, ingest_bytes
                )
                meter.advance(reduce_elapsed)

            with self._phase(obs, "collect", meter):
                meter.advance(self._collect_phase(results, reducers, driver, meter))
                meter.advance(self.stack.charge_result_return(meter, driver))
        return results, meter.freeze()

    def run_many(
        self,
        table_name: str,
        multi_map_fn: Callable[..., List[List[Tuple[Any, Any]]]],
        reduce_fns: List[ReduceFn],
        n_reducers: int = 0,
        driver_node: Optional[str] = None,
        plans: Optional[List[Optional[ScanPlan]]] = None,
        profile_targets: Optional[List[Any]] = None,
        scans: Optional[List[Optional["ColumnScan"]]] = None,
    ) -> List[Tuple[Dict[Any, Any], CostReport]]:
        """Execute many jobs over one table, sharing the real partition pass.

        ``multi_map_fn(partition)`` returns one pair-list per job, computed
        in a single pass over the partition's data; each job's simulated
        charges are then replayed with a fresh meter through exactly the
        phase sequence :meth:`run` uses, so job ``j``'s (results, report)
        is identical to ``run(table_name, map_fn_j, reduce_fns[j], ...)``.
        Only real wall-clock work is shared — the cost model still sees
        every job pay its own scan.

        With ``plans`` (one zone-map :class:`ScanPlan` per job, or None
        for scan-everything), a partition is read once iff *some* job in
        the wave scans it, and ``multi_map_fn(partition, active)`` is
        called with the indices of those jobs, returning their outputs
        only; skipped and synopsis-covered partitions never touch the
        real data.

        ``profile_targets`` (one query-like object per job, or None)
        routes each job's phase notes to that object's open flight
        record during the per-job charge replay.

        ``scans`` (one :class:`ColumnScan` or None per job) enables
        column pruning per job, exactly as :meth:`run`'s ``scan``.  A
        columnar partition's shared pass reads the *union* of the active
        jobs' scan columns (only when every active job pushed one down —
        a single row-path job forces the full row payload so its map
        function sees what it expects); each job's charge replay still
        pays for its own columns only.
        """
        stored = self.store.table(table_name)
        require(len(stored.partitions) >= 1, "table has no partitions")
        n_jobs = len(reduce_fns)
        if n_jobs == 0:
            return []
        if plans is not None:
            require(
                len(plans) == n_jobs,
                f"{len(plans)} plans for {n_jobs} jobs",
            )
        if profile_targets is not None:
            require(
                len(profile_targets) == n_jobs,
                f"{len(profile_targets)} profile targets for {n_jobs} jobs",
            )
        if scans is not None:
            require(
                len(scans) == n_jobs, f"{len(scans)} scans for {n_jobs} jobs"
            )
        faults = self.store.faults
        if faults is not None and faults.active:
            # Fault outcomes are drawn per read attempt from the injector's
            # seeded stream, so one shared pass cannot replay each job's
            # charges faithfully; under active faults every job runs its
            # own failure-aware pass (amortisation resumes when healthy).
            out = []
            for j in range(n_jobs):

                def job_map_fn(data, j=j):
                    if plans is not None:
                        return multi_map_fn(data, [j])[0]
                    return multi_map_fn(data)[j]

                target = (
                    profile_targets[j] if profile_targets is not None else None
                )
                with self.observer.profile_activate(target):
                    out.append(
                        self.run(
                            table_name,
                            job_map_fn,
                            reduce_fns[j],
                            n_reducers=n_reducers,
                            driver_node=driver_node,
                            plan=plans[j] if plans is not None else None,
                            scan=scans[j] if scans is not None else None,
                        )
                    )
            return out
        # Shared real pass: every job's map outputs from one read of each
        # partition, computed before any charging so the replay below can
        # interleave charges per job in sequential order.  Outputs are
        # indexed by partition position; entries a job never scans stay
        # None (its plan covers them from the synopsis or skips them).
        # The per-partition passes are pure compute over immutable data,
        # so they fan out across the morsel pool when one is attached;
        # planning (the ``active`` lists) and the scatter stay serial.
        obs = self.observer
        n_parts = len(stored.partitions)
        outputs_per_job: List[List[Optional[List[Tuple[Any, Any]]]]] = [
            [None] * n_parts for _ in range(n_jobs)
        ]
        actives: Dict[int, List[int]] = {}
        morsels: List[Morsel] = []
        # The all-jobs column union recurs for every fully active
        # partition (the common case — unclustered data defeats the zone
        # maps job by job together); compute it once, not per partition.
        all_pushed = scans is not None and all(s is not None for s in scans)
        full_union: Optional[tuple] = None
        if all_pushed:
            merged: Dict[str, None] = {}
            for s in scans:
                merged.update(dict.fromkeys(s.columns))
            full_union = tuple(merged)
        for index, partition in enumerate(stored.partitions):
            if plans is None:
                active = list(range(n_jobs))
            else:
                active = [
                    j
                    for j in range(n_jobs)
                    if plans[j] is None or plans[j].actions[index] == SCAN
                ]
                if not active:
                    continue
            actives[index] = active
            # Column pruning for the shared pass: read the union of the
            # active jobs' scan columns iff every active job pushed one
            # down (a row-path job needs the full Table payload).
            # Dirty partitions (staged delta writes) carry the base+delta
            # view and never ship spec/partition: shared-memory segments
            # hold published base generations only.
            dirty = bool(getattr(partition, "dirty", False))
            shipped_columns = None
            if (
                scans is not None
                and partition.columnar is not None
                and not dirty
                and all(scans[j] is not None for j in active)
            ):
                if full_union is not None and len(active) == n_jobs:
                    columns = full_union
                else:
                    union: Dict[str, None] = {}
                    for j in active:
                        union.update(dict.fromkeys(scans[j].columns))
                    columns = tuple(union)
                payload_data = partition.columnar.project(columns)
                size = payload_data.encoded_bytes
                shipped_columns = columns
            else:
                payload_data = partition.read_view()
                size = int(partition.n_bytes)
            payload_active = active if plans is not None else None
            # Ship a picklable spec alongside the in-memory payload so a
            # process executor can run this morsel out-of-process; the
            # thread/serial paths keep using ``payload`` directly.
            spec = None
            if isinstance(multi_map_fn, TaskSpec) and not dirty:
                spec = (
                    multi_map_fn
                    if payload_active is None
                    else BoundSpec(multi_map_fn, (payload_active,))
                )
            morsels.append(
                Morsel(
                    index=index,
                    payload=(payload_data, payload_active),
                    size_bytes=size,
                    spec=spec,
                    partition=None if dirty else partition,
                    columns=shipped_columns,
                )
            )

        def shared_pass(payload):
            data, active = payload
            if active is None:
                return multi_map_fn(data)
            return multi_map_fn(data, active)

        if self.executor is not None:
            per_part = self.executor.run(
                morsels, shared_pass, label="map_many", observer=obs
            )
        else:
            per_part = [shared_pass(m.payload) for m in morsels]
        for morsel, per_job in zip(morsels, per_part):
            active = actives[morsel.index]
            require(
                len(per_job) == len(active),
                f"multi_map_fn returned {len(per_job)} outputs "
                f"for {len(active)} active jobs",
            )
            for j, pairs in zip(active, per_job):
                outputs_per_job[j][morsel.index] = list(pairs)
        out: List[Tuple[Dict[Any, Any], CostReport]] = []
        for j in range(n_jobs):
            plan = plans[j] if plans is not None else None
            watcher = obs if obs.enabled else None
            meter = (
                CostMeter(self.rates, observer=watcher)
                if self.rates
                else CostMeter(observer=watcher)
            )
            driver = driver_node or self.topology.pick_coordinator()
            reducers = self._reducer_nodes(stored, n_reducers)
            engaged = self._engaged_nodes(stored, reducers, plan)
            target = profile_targets[j] if profile_targets is not None else None
            with obs.profile_activate(target), obs.span(
                "mapreduce", meter=meter, category="job", table=table_name
            ):
                with self._phase(obs, "submit", meter):
                    meter.advance(
                        self.stack.charge_submission(meter, driver, engaged)
                    )
                with self._phase(obs, "map", meter):
                    map_outputs, map_elapsed = self._map_phase(
                        stored,
                        None,
                        meter,
                        obs,
                        precomputed=outputs_per_job[j],
                        plan=plan,
                        scan=scans[j] if scans is not None else None,
                    )
                    meter.advance(map_elapsed)
                with self._phase(obs, "shuffle", meter):
                    grouped, ingest_bytes, shuffle_elapsed = self._shuffle_phase(
                        map_outputs, reducers, meter
                    )
                    meter.advance(shuffle_elapsed)
                with self._phase(obs, "reduce", meter):
                    results, reduce_elapsed = self._reduce_phase(
                        grouped, reduce_fns[j], reducers, meter, obs, ingest_bytes
                    )
                    meter.advance(reduce_elapsed)
                with self._phase(obs, "collect", meter):
                    meter.advance(
                        self._collect_phase(results, reducers, driver, meter)
                    )
                    meter.advance(self.stack.charge_result_return(meter, driver))
            out.append((results, meter.freeze()))
        return out

    # Phases ----------------------------------------------------------------
    def _parallel_map_outputs(
        self,
        stored: StoredTable,
        map_fn: Optional[MapFn],
        plan: Optional[ScanPlan],
        obs: Observer,
        scan: Optional["ColumnScan"] = None,
    ) -> Optional[List[Optional[List[Tuple[Any, Any]]]]]:
        """Precompute map outputs on the worker pool (None = run inline).

        Only plan-scanned partitions enqueue morsels; skipped and
        synopsis-covered partitions never reach the pool.  Workers run
        ``map_fn`` over the immutable partition data and nothing else —
        every charge, failover retry, and span is replayed serially by
        :meth:`_map_phase` with these outputs, which is what keeps the
        parallel run byte-identical to the serial one.  With ``scan``,
        columnar partitions carry column-pruned encoded payloads, exactly
        the payloads the inline path would hand ``map_fn``.
        """
        executor = self.executor
        if executor is None or not executor.parallel or map_fn is None:
            return None
        should_scan = None
        if plan is not None:
            should_scan = lambda i: plan.actions[i] == SCAN
        morsels = partition_morsels(
            stored.partitions,
            should_scan,
            columns=scan.columns if scan is not None else None,
            spec=map_fn if isinstance(map_fn, TaskSpec) else None,
        )
        if not morsels:
            return None
        results = executor.run(
            morsels, lambda data: list(map_fn(data)), label="map", observer=obs
        )
        outputs: List[Optional[List[Tuple[Any, Any]]]] = [None] * len(
            stored.partitions
        )
        for morsel, pairs in zip(morsels, results):
            outputs[morsel.index] = pairs
        return outputs

    def _engaged_nodes(
        self,
        stored: StoredTable,
        reducers: List[str],
        plan: Optional[ScanPlan],
    ) -> set:
        """Nodes the job touches: mappers surviving the plan + reducers.

        Zone-map-skipped partitions drop out entirely — their nodes never
        see the job, which is the paper's "touch only the data that can
        matter" at the stack-submission layer too.  Under fault
        injection, a crashed primary is replaced by the partition's
        preferred live replica, and fully lost partitions engage nobody.
        """
        mappers = set()
        for index, partition in enumerate(stored.partitions):
            if plan is not None and plan.actions[index] == SKIP:
                continue
            node = self._mapper_node(partition)
            if node is not None:
                mappers.add(node)
        return mappers | set(reducers)

    def _mapper_node(self, partition) -> Optional[str]:
        """The node a map task over ``partition`` lands on (None if lost)."""
        faults = self.store.faults
        if faults is None or not faults.active:
            return partition.primary_node
        if not faults.is_down(partition.primary_node):
            return partition.primary_node
        live = [n for n in partition.replica_nodes if not faults.is_down(n)]
        if not live:
            return None
        return min(live, key=self.store.served_bytes)

    def _map_phase(
        self,
        stored: StoredTable,
        map_fn: Optional[MapFn],
        meter: CostMeter,
        obs: Observer = NULL_OBSERVER,
        precomputed: Optional[List[Optional[List[Tuple[Any, Any]]]]] = None,
        plan: Optional[ScanPlan] = None,
        driver: Optional[str] = None,
        on_lost: str = "raise",
        lost: Optional[List[int]] = None,
        scan: Optional["ColumnScan"] = None,
    ) -> Tuple[List[Tuple[str, List[Tuple[Any, Any]]]], float]:
        """Run one map task per partition; returns (per-node outputs, elapsed).

        With ``precomputed`` (pair-lists indexed by partition position,
        from a shared batch pass) the per-partition charges are identical
        but the map function is not re-run.  With ``plan``, skipped
        partitions charge nothing and synopsis-covered partitions charge
        only the metadata read while emitting the plan's partials.
        Under fault injection, scans fail over between replicas via
        :attr:`failover` (probes, retries, and hops charged to ``meter``)
        and a fully lost partition either raises or — with
        ``on_lost="skip"`` — is recorded in ``lost`` and skipped.
        """
        faults = self.store.faults
        faulty = faults is not None and faults.active
        node_tasks: Dict[str, List[float]] = defaultdict(list)
        outputs: List[Tuple[str, List[Tuple[Any, Any]]]] = []
        tracing = obs.enabled
        phase_start = obs.now if tracing else 0.0
        spans: List[Tuple[str, str, float, Dict[str, Any]]] = []
        for index, partition in enumerate(stored.partitions):
            action = SCAN if plan is None else plan.actions[index]
            if action == SKIP:
                continue
            node = partition.primary_node
            if action == SYNOPSIS:
                # The region server answers from block metadata: no task
                # container, no scan bytes — just a tiny statistics read.
                seconds = meter.charge_cpu(
                    node, plan.synopsis_bytes.get(index, 0)
                )
                pairs = list(plan.pairs[index])
                outputs.append((node, pairs))
                if tracing:
                    spans.append(
                        (
                            f"synopsis:{partition.partition_id}",
                            node,
                            seconds,
                            {"rows": 0, "bytes": 0},
                        )
                    )
                node_tasks[node].append(seconds)
                continue
            # Columnar fast path: with a pushed-down scan over a columnar
            # partition, the task reads only the scan's columns in encoded
            # form.  read_bytes — what the disk/CPU formulas and spans see
            # — is then the projected encoded footprint; otherwise it is
            # the partition's stored footprint (== row bytes for row
            # layout, so the historical charges are bit-identical).
            use_cols = scan is not None and partition.columnar is not None
            if faulty:
                try:
                    data, node, fault_seconds = self.failover.read_partition(
                        self.store,
                        partition,
                        meter,
                        requester=driver,
                        obs=obs,
                        columns=scan.columns if use_cols else None,
                    )
                except PartitionLostError:
                    if on_lost == "skip":
                        if lost is not None:
                            lost.append(index)
                        continue
                    raise
                read_bytes = data.encoded_bytes if use_cols else partition.stored_bytes
                seconds = meter.charge_task_startup(node)
                seconds += fault_seconds
                seconds += (
                    read_bytes
                    * self.store.read_slowdown(node)
                    / meter.rates.disk_bytes_per_sec
                )
            else:
                seconds = meter.charge_task_startup(node)
                if use_cols:
                    data = self.store.read_columns(partition, scan.columns, meter)
                else:
                    data = self.store.read_partition(partition, meter)
                read_bytes = data.encoded_bytes if use_cols else partition.stored_bytes
                seconds += read_bytes / meter.rates.disk_bytes_per_sec
            seconds += meter.charge_cpu(node, read_bytes)
            pairs = (
                precomputed[index] if precomputed is not None else list(map_fn(data))
            )
            outputs.append((node, pairs))
            if tracing:
                spans.append(
                    (
                        f"map:{partition.partition_id}",
                        node,
                        seconds,
                        {"rows": data.n_rows, "bytes": read_bytes},
                    )
                )
            node_tasks[node].append(seconds)
        if tracing:
            self._record_task_spans(obs, phase_start, spans)
        return outputs, self.resources.makespan_per_node(node_tasks)

    def _record_task_spans(
        self,
        obs: Observer,
        phase_start: float,
        tasks: List[Tuple[str, str, float, Dict[str, Any]]],
    ) -> None:
        """Lay per-node task spans out on slot tracks.

        Replays the same LPT-greedy schedule as
        :meth:`ResourceManager.makespan`, so the last task span ends
        exactly when the phase's simulated elapsed time says it does.
        """
        per_node: Dict[str, List[Tuple[str, float, Dict[str, Any]]]] = (
            defaultdict(list)
        )
        for name, node, seconds, extra in tasks:
            per_node[node].append((name, seconds, extra))
        for node, node_tasks in per_node.items():
            n_slots = min(self.resources.slots_per_node, len(node_tasks))
            slots = [(0.0, i) for i in range(n_slots)]
            for name, seconds, extra in sorted(
                node_tasks, key=lambda t: t[1], reverse=True
            ):
                busy_until, slot = heapq.heappop(slots)
                track = node if slot == 0 else f"{node}#{slot + 1}"
                obs.record_span(
                    name,
                    phase_start + busy_until,
                    seconds,
                    category="task",
                    track=track,
                    **extra,
                )
                heapq.heappush(slots, (busy_until + seconds, slot))

    def _shuffle_phase(
        self,
        map_outputs: List[Tuple[str, List[Tuple[Any, Any]]]],
        reducers: List[str],
        meter: CostMeter,
    ) -> Tuple[Dict[str, Dict[Any, List[Any]]], Dict[str, int], float]:
        """Hash-partition map outputs to reducer nodes.

        Returns (grouped data, per-reducer ingest bytes, elapsed).  The
        ingest-byte totals double as the reduce phase's input-byte
        accounting, so payload sizes are estimated once per emitted pair
        for the whole job.  ``stable_hash`` is memoized per key — map
        outputs repeat the same few keys across every partition.
        """
        grouped: Dict[str, Dict[Any, List[Any]]] = {r: defaultdict(list) for r in reducers}
        transfer_seconds: Dict[str, float] = defaultdict(float)
        ingest_bytes: Dict[str, int] = defaultdict(int)
        hash_memo: Dict[Any, int] = {}
        for src_node, pairs in map_outputs:
            by_reducer: Dict[str, int] = defaultdict(int)
            for key, value in pairs:
                key_hash = hash_memo.get(key)
                if key_hash is None:
                    key_hash = hash_memo[key] = stable_hash(key)
                reducer = reducers[key_hash % len(reducers)]
                grouped[reducer][key].append(value)
                by_reducer[reducer] += _KV_OVERHEAD_BYTES + estimate_payload_bytes(
                    value
                )
            for reducer, num_bytes in by_reducer.items():
                ingest_bytes[reducer] += num_bytes
                if reducer == src_node:
                    continue
                wan = self.topology.is_wan(src_node, reducer)
                transfer_seconds[src_node] += meter.charge_transfer(
                    src_node, reducer, num_bytes, wan=wan
                )
        send = max(transfer_seconds.values()) if transfer_seconds else 0.0
        # Each reducer's NIC serialises its incoming shuffle traffic.
        ingest = (
            max(ingest_bytes.values()) / meter.rates.lan_bytes_per_sec
            if ingest_bytes
            else 0.0
        )
        return grouped, dict(ingest_bytes), max(send, ingest)

    def _reduce_phase(
        self,
        grouped: Dict[str, Dict[Any, List[Any]]],
        reduce_fn: ReduceFn,
        reducers: List[str],
        meter: CostMeter,
        obs: Observer = NULL_OBSERVER,
        ingest_bytes: Optional[Dict[str, int]] = None,
    ) -> Tuple[Dict[Any, Any], float]:
        results: Dict[Any, Any] = {}
        node_tasks: Dict[str, List[float]] = defaultdict(list)
        tracing = obs.enabled
        phase_start = obs.now if tracing else 0.0
        spans: List[Tuple[str, str, float, Dict[str, Any]]] = []
        for reducer in reducers:
            seconds = meter.charge_task_startup(reducer)
            if ingest_bytes is not None:
                # The shuffle already summed this reducer's input payloads.
                in_bytes = ingest_bytes.get(reducer, 0)
            else:
                in_bytes = sum(
                    _KV_OVERHEAD_BYTES + estimate_payload_bytes(v)
                    for values in grouped[reducer].values()
                    for v in values
                )
            seconds += meter.charge_cpu(reducer, in_bytes)
            for key, values in grouped[reducer].items():
                results[key] = reduce_fn(key, values)
            if tracing:
                spans.append(
                    (
                        f"reduce:{reducer}",
                        reducer,
                        seconds,
                        {"keys": len(grouped[reducer]), "bytes": in_bytes},
                    )
                )
            node_tasks[reducer].append(seconds)
        if tracing:
            self._record_task_spans(obs, phase_start, spans)
        return results, self.resources.makespan_per_node(node_tasks)

    def _collect_phase(
        self,
        results: Dict[Any, Any],
        reducers: List[str],
        driver: str,
        meter: CostMeter,
    ) -> float:
        elapsed = 0.0
        result_bytes = sum(
            _KV_OVERHEAD_BYTES + estimate_payload_bytes(v) for v in results.values()
        )
        share = result_bytes // max(1, len(reducers))
        for reducer in reducers:
            if reducer == driver:
                continue
            wan = self.topology.is_wan(reducer, driver)
            elapsed = max(
                elapsed, meter.charge_transfer(reducer, driver, share, wan=wan)
            )
        return elapsed

    def _reducer_nodes(self, stored: StoredTable, n_reducers: int) -> List[str]:
        if n_reducers <= 0:
            n_reducers = max(1, len(stored.nodes) // 2)
        nodes = self.topology.node_ids
        return nodes[: min(n_reducers, len(nodes))]
