"""Coordinator-cohort execution: surgical access to specific rows.

RT3.2: "having a coordinating node accessing the (typically distributed)
index and then use it to surgically access small subsets of base data,
directly from the back-end storage, may be preferable to having an all-out
MapReduce processing of data nodes."

The coordinator sends a request to each cohort node that holds relevant
rows; each cohort performs point-reads of just those rows and ships them
back.  Cohorts work in parallel, so elapsed time is the slowest cohort.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.errors import PartitionLostError
from repro.common.validation import require
from repro.cluster.storage import DistributedStore, StoredTable, TablePartition
from repro.data.tabular import Table
from repro.engine.bdas import BDASStack
from repro.engine.pruning import prune_row_plan
from repro.engine.specs import RowTakeSpec
from repro.faults.policy import FailoverPolicy
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.parallel import Morsel, ScanExecutor
from repro.queries.selections import Selection

_REQUEST_BYTES = 256


class CoordinatorEngine:
    """Direct, index-driven access through a coordinating node."""

    def __init__(
        self,
        store: DistributedStore,
        coordinator: Optional[str] = None,
        stack: Optional[BDASStack] = None,
        rates: Optional["CostRates"] = None,
        observer: Optional[Observer] = None,
        failover: Optional[FailoverPolicy] = None,
        executor: Optional[ScanExecutor] = None,
    ) -> None:
        self.store = store
        self.topology = store.topology
        self.coordinator = coordinator or self.topology.pick_coordinator()
        # Coordinator-cohort bypasses the engine layers: client -> storage.
        self.stack = stack or BDASStack(layers=("client", "coordinator"))
        self.rates = rates
        self.observer = observer or NULL_OBSERVER
        self.failover = failover or FailoverPolicy()
        # Morsel pool for the row materialisation (``take``) work; all
        # charging and replica choice stays on this thread — see DESIGN §9.
        self.executor = executor

    def attach_observer(self, observer: Observer) -> None:
        """Record traces/metrics/events for subsequent fetches on ``observer``."""
        self.observer = observer

    def _meter(self, meter: Optional[CostMeter]) -> Tuple[CostMeter, Observer]:
        """(meter, observer) for one call, creating/wiring as needed."""
        obs = self.observer
        if meter is None:
            watcher = obs if obs.enabled else None
            meter = (
                CostMeter(self.rates, observer=watcher)
                if self.rates
                else CostMeter(observer=watcher)
            )
        elif not obs.enabled and meter.observer is not None:
            obs = meter.observer
        return meter, obs

    def _pruned(
        self,
        stored: StoredTable,
        rows_by_partition: Dict[int, Sequence[int]],
        selection: Optional[Selection],
        obs: Observer,
    ) -> Dict[int, Sequence[int]]:
        """Drop fetch requests against partitions disjoint from ``selection``.

        Callers opt in by passing the selection they will re-apply to the
        fetched rows — only then is dropping provably-non-matching rows
        answer-preserving.  Without synopses (or with stale ones) the plan
        passes through unchanged.
        """
        if selection is None:
            return rows_by_partition
        synopses = self.store.synopses(stored.name)
        if len(synopses) != len(stored.partitions):
            return rows_by_partition
        dirty = {
            index
            for index, partition in enumerate(stored.partitions)
            if getattr(partition, "dirty", False)
        }
        kept, pruned = prune_row_plan(
            synopses, rows_by_partition, selection, dirty=dirty or None
        )
        if pruned and obs.enabled:
            obs.inc(
                "prune_fetch_partitions_skipped_total", pruned, table=stored.name
            )
        return kept

    def fetch_rows(
        self,
        stored: StoredTable,
        rows_by_partition: Dict[int, Sequence[int]],
        meter: Optional[CostMeter] = None,
        charge_stack: bool = True,
        selection: Optional[Selection] = None,
        on_lost: str = "raise",
        lost: Optional[List[Tuple[int, int]]] = None,
    ) -> Tuple[Table, CostReport]:
        """Fetch the given ``{partition_index: row_indices}`` to the coordinator.

        Returns the concatenated rows and the cost report.  Partitions not
        mentioned are never touched — the essence of big-data-less access.

        Iterative operators that issue many fetch rounds within one query
        pass ``charge_stack=False`` after charging the stack once
        themselves; the stack is a per-query cost, not per-round.

        ``selection`` enables zone-map pruning of the plan itself: requests
        against partitions provably disjoint from the selection's bounding
        box are dropped before any cohort is contacted.  Pass it only when
        the fetched rows are filtered by the same selection afterwards.

        Under fault injection, point reads retry and fail over between
        replicas through :attr:`failover`.  A partition with no live
        replica raises :class:`PartitionLostError` (``on_lost="raise"``)
        or — with ``on_lost="skip"`` — drops its rows from the result and
        appends ``(partition_index, n_rows_lost)`` to ``lost``.
        """
        require(on_lost in ("raise", "skip"), f"unknown on_lost {on_lost!r}")
        meter, obs = self._meter(meter)
        rows_by_partition = self._pruned(stored, rows_by_partition, selection, obs)
        cache = None
        if self.executor is not None and self.executor.parallel:
            # Materialise each partition's rows on the pool up front; the
            # serial loop below then only replays charges and slices the
            # precomputed pieces (identical values to per-partition takes).
            cache = self._parallel_pieces(stored, [rows_by_partition], obs)
        return self._fetch_one(
            stored,
            rows_by_partition,
            meter,
            obs,
            charge_stack,
            cache=cache or None,
            on_lost=on_lost,
            lost=lost,
        )

    def fetch_rows_many(
        self,
        stored: StoredTable,
        plans: Sequence[Dict[int, Sequence[int]]],
        charge_stack: bool = True,
        selections: Optional[Sequence[Optional[Selection]]] = None,
    ) -> List[Tuple[Table, CostReport]]:
        """Fetch many row plans, sharing each partition's point reads.

        The union of every plan's requested rows is materialised once per
        partition; each plan then replays its own charges (replica
        choice, transfers, point-read accounting) in plan order with a
        fresh meter, so entry ``i`` — rows and cost report — is identical
        to ``fetch_rows(stored, plans[i])``.

        ``selections`` (one per plan, None entries allowed) applies the
        same zone-map plan pruning as :meth:`fetch_rows`, *before* the
        shared union read, so a partition every plan pruned is never
        materialised at all.
        """
        if selections is not None:
            require(
                len(selections) == len(plans),
                f"{len(selections)} selections for {len(plans)} plans",
            )
            obs = self.observer
            plans = [
                self._pruned(stored, plan, sel, obs)
                for plan, sel in zip(plans, selections)
            ]
        faults = self.store.faults
        if faults is not None and faults.active:
            # Fault outcomes are drawn per read attempt, so shared-union
            # charge replay would not match the sequential path; each plan
            # runs its own failure-aware fetch while faults are active.
            return [
                self.fetch_rows(stored, plan, charge_stack=charge_stack)
                for plan in plans
            ]
        cache = self._parallel_pieces(stored, plans, self.observer)
        out: List[Tuple[Table, CostReport]] = []
        for plan in plans:
            meter, obs = self._meter(None)
            out.append(
                self._fetch_one(stored, plan, meter, obs, charge_stack, cache)
            )
        return out

    def _parallel_pieces(
        self,
        stored: StoredTable,
        plans: Sequence[Dict[int, Sequence[int]]],
        obs: Observer,
    ) -> Dict[int, Tuple[np.ndarray, Table]]:
        """Materialise each partition's union of requested rows.

        Returns the ``{partition_index: (sorted unique indices, rows)}``
        cache :meth:`_fetch_one` slices per plan.  The ``take`` calls are
        pure compute over immutable partition data, so they fan out
        across the morsel pool when one is attached (weighted by the
        bytes each partition must materialise); without an executor the
        same code runs inline.
        """
        union: Dict[int, List[np.ndarray]] = {}
        for plan in plans:
            for part_index, rows in plan.items():
                idx = np.asarray(rows, dtype=int)
                if idx.size:
                    union.setdefault(part_index, []).append(idx)
        if not union:
            return {}
        morsels: List[Morsel] = []
        for part_index in sorted(union):
            partition = self._partition(stored, part_index)
            chunks = union[part_index]
            rows_requested = sum(int(c.size) for c in chunks)
            # The union/take kernel lives in RowTakeSpec — one picklable
            # code object shared by the inline, thread, and process
            # paths; TablePartition.take gathers straight from the
            # encoded columns on columnar layouts, from the row store
            # otherwise (mirrored by the worker-side partition wrapper).
            spec = RowTakeSpec(tuple(chunks))
            morsels.append(
                Morsel(
                    index=part_index,
                    payload=(spec, partition),
                    size_bytes=rows_requested * int(partition.row_bytes),
                    spec=spec,
                    # A dirty partition's take() gathers from the
                    # base+delta view, which shared memory does not
                    # cover — keep its morsel inline.
                    partition=(
                        None
                        if getattr(partition, "dirty", False)
                        else partition
                    ),
                )
            )

        def materialise(payload):
            spec, partition = payload
            return spec(partition)

        if self.executor is not None:
            results = self.executor.run(
                morsels, materialise, label="fetch", observer=obs
            )
        else:
            results = [materialise(m.payload) for m in morsels]
        return {m.index: r for m, r in zip(morsels, results)}

    def _fetch_one(
        self,
        stored: StoredTable,
        rows_by_partition: Dict[int, Sequence[int]],
        meter: CostMeter,
        obs: Observer,
        charge_stack: bool,
        cache: Optional[Dict[int, Tuple[np.ndarray, Table]]] = None,
        on_lost: str = "raise",
        lost: Optional[List[Tuple[int, int]]] = None,
    ) -> Tuple[Table, CostReport]:
        """One fetch round; with ``cache`` the rows come from a shared read."""
        faults = self.store.faults
        faulty = faults is not None and faults.active
        with obs.span(
            "coordinator_fetch", meter=meter, category="job", table=stored.name
        ):
            if charge_stack:
                meter.advance(
                    self.stack.charge_submission(
                        meter, self.coordinator, [self.coordinator]
                    )
                )
            pieces: List[Table] = []
            slowest = 0.0
            total_response_bytes = 0
            tracing = obs.enabled
            fan_start = obs.now if tracing else 0.0
            for part_index, row_indices in sorted(rows_by_partition.items()):
                partition = self._partition(stored, part_index)
                idx = np.asarray(row_indices, dtype=int)
                if idx.size == 0:
                    continue
                if faulty:
                    try:
                        piece, cohort, fault_extra = self.failover.read_rows(
                            self.store,
                            partition,
                            idx,
                            meter,
                            requester=self.coordinator,
                            obs=obs,
                            materialize=cache is None,
                        )
                    except PartitionLostError:
                        if on_lost == "skip":
                            if lost is not None:
                                lost.append((part_index, int(idx.size)))
                            continue
                        raise
                    seconds = meter.charge_transfer(
                        self.coordinator,
                        cohort,
                        _REQUEST_BYTES,
                        wan=self.topology.is_wan(self.coordinator, cohort),
                    )
                    seconds += fault_extra
                    if cache is not None or piece is None:
                        all_idx, union_table = cache[part_index]
                        piece = union_table.take(np.searchsorted(all_idx, idx))
                    seconds += (
                        idx.size
                        * partition.row_bytes
                        * meter.rates.point_read_penalty
                        * self.store.read_slowdown(cohort)
                        / meter.rates.disk_bytes_per_sec
                    )
                else:
                    # Read from the least-loaded replica (spreads hot
                    # partitions).
                    cohort = self.store.pick_replica(partition)
                    seconds = meter.charge_transfer(
                        self.coordinator,
                        cohort,
                        _REQUEST_BYTES,
                        wan=self.topology.is_wan(self.coordinator, cohort),
                    )
                    if cache is None:
                        piece = self.store.read_rows(
                            partition, idx, meter, node_id=cohort
                        )
                    else:
                        self.store.read_rows(
                            partition,
                            idx,
                            meter,
                            node_id=cohort,
                            materialize=False,
                        )
                        all_idx, union_table = cache[part_index]
                        piece = union_table.take(np.searchsorted(all_idx, idx))
                    seconds += (
                        idx.size
                        * partition.row_bytes
                        * meter.rates.point_read_penalty
                        / meter.rates.disk_bytes_per_sec
                    )
                seconds += meter.charge_transfer(
                    cohort,
                    self.coordinator,
                    piece.n_bytes,
                    wan=self.topology.is_wan(cohort, self.coordinator),
                )
                if tracing:
                    # Cohorts fetch in parallel: one trace track per cohort.
                    obs.record_span(
                        f"fetch:{partition.partition_id}",
                        fan_start,
                        seconds,
                        category="task",
                        track=cohort,
                        rows=int(idx.size),
                        bytes=piece.n_bytes,
                    )
                slowest = max(slowest, seconds)
                total_response_bytes += piece.n_bytes
                pieces.append(piece)
            # The coordinator's NIC serialises all cohort responses: elapsed is
            # at least the total ingest time, which is what makes fetching a
            # large fraction of a table through one coordinator a losing plan.
            ingest = total_response_bytes / meter.rates.lan_bytes_per_sec
            meter.advance(max(slowest, ingest))
            if charge_stack:
                meter.advance(
                    self.stack.charge_result_return(meter, self.coordinator)
                )
        if pieces:
            result = Table.concat(pieces, name=stored.name)
        else:
            first = stored.partitions[0].data
            result = first.slice_rows(0, 0)
        return result, meter.freeze()

    def scatter_gather(
        self,
        node_payloads: Dict[str, int],
        response_bytes: Dict[str, int],
        meter: Optional[CostMeter] = None,
        compute_bytes: Optional[Dict[str, int]] = None,
    ) -> CostReport:
        """Generic parallel round-trip: request out, compute, response back.

        Used by operators whose cohorts do local work (e.g. probe a local
        index) rather than raw row reads.  ``node_payloads`` and
        ``response_bytes`` give per-node request/response sizes;
        ``compute_bytes`` optionally charges local CPU work.
        """
        meter, obs = self._meter(meter)
        with obs.span("scatter_gather", meter=meter, category="job"):
            slowest = 0.0
            tracing = obs.enabled
            fan_start = obs.now if tracing else 0.0
            for node_id, req_bytes in node_payloads.items():
                wan = self.topology.is_wan(self.coordinator, node_id)
                seconds = meter.charge_transfer(
                    self.coordinator, node_id, req_bytes, wan=wan
                )
                if compute_bytes and node_id in compute_bytes:
                    seconds += meter.charge_cpu(node_id, compute_bytes[node_id])
                resp = response_bytes.get(node_id, 0)
                seconds += meter.charge_transfer(
                    node_id, self.coordinator, resp, wan=wan
                )
                if tracing:
                    obs.record_span(
                        f"gather:{node_id}",
                        fan_start,
                        seconds,
                        category="task",
                        track=node_id,
                        bytes=resp,
                    )
                slowest = max(slowest, seconds)
            meter.advance(slowest)
        return meter.freeze()

    def _partition(self, stored: StoredTable, index: int) -> TablePartition:
        require(
            0 <= index < len(stored.partitions),
            f"partition index {index} out of range for {stored.name}",
        )
        return stored.partitions[index]
