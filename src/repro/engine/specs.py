"""Concrete :class:`~repro.parallel.spec.TaskSpec` kernels for the engines.

Each spec is the *single* code object for its kernel: the engines call
the same instance inline on the serial and thread paths that the
process executor pickles out to workers, so the three execution modes
cannot drift apart.  Every body is pure compute over the partition
payload — charging, fault draws, and tracing stay on the caller (see
DESIGN §9/§12, the "workers compute, the caller charges" contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.columnar import ColumnarPartition
from repro.engine.colscan import (
    aggregate_columns,
    columnar_partial,
    encoded_batch_masks,
)
from repro.parallel.spec import TaskSpec
from repro.queries.selections import batch_masks

__all__ = [
    "QueryPartialSpec",
    "BatchPartialSpec",
    "RowTakeSpec",
    "GridAssignSpec",
]


@dataclass(frozen=True)
class QueryPartialSpec(TaskSpec):
    """Single-query map kernel: selection mask + aggregate partial.

    Mirrors ``ExactEngine._job_fns``'s historical closure exactly: the
    encoded path on columnar partitions, the fused mask/partial row path
    otherwise.  Returns the map-output pair list the reducer expects.
    """

    selection: Any
    aggregate: Any

    def __call__(self, partition) -> List[Tuple[int, Any]]:
        if isinstance(partition, ColumnarPartition):
            # Encoded predicate + late materialization: bitwise equal
            # to the row path below by colscan's contract.
            return [(0, columnar_partial(partition, self.selection, self.aggregate))]
        # Row path: mask + partial in fused numpy passes —
        # partial_from_mask is documented to equal
        # partial(partition.select(mask)) without materializing the
        # selected rows.
        return [
            (
                0,
                self.aggregate.partial_from_mask(
                    partition, self.selection.mask(partition)
                ),
            )
        ]


class BatchPartialSpec(TaskSpec):
    """Shared batch-pass kernel: broadcast masks, per-job partials.

    Picklable replacement for ``ExactEngine.execute_many``'s
    ``multi_map_fn`` closure.  The per-aggregate decode target (full
    decode, cached scratch of the aggregate's own columns, or — for the
    column-less Count — the mask itself) is resolved once per call from
    the precomputed column sets instead of captured lambdas, which do
    not pickle.
    """

    def __init__(self, selections: Sequence[Any], aggregates: Sequence[Any]) -> None:
        self.selections = tuple(selections)
        self.aggregates = tuple(aggregates)
        self.aggregate_cols = tuple(aggregate_columns(a) for a in aggregates)

    def _encoded_partial(self, job: int, partition, mask) -> Any:
        cols = self.aggregate_cols[job]
        aggregate = self.aggregates[job]
        if cols is None:
            return aggregate.partial_from_mask(partition.to_table(), mask)
        if not cols:  # column-less (Count): mask cardinality
            return float(np.count_nonzero(mask))
        return aggregate.partial_from_mask(partition.scratch_table(cols), mask)

    def __call__(self, partition, active=None) -> List[List[Tuple[int, Any]]]:
        if active is None:
            active = range(len(self.selections))
        if isinstance(partition, ColumnarPartition):
            # Encoded shared pass: one broadcast comparison per column
            # over the encoded domain, then each job's late-materialized
            # partial.
            masks = encoded_batch_masks(
                [self.selections[j] for j in active], partition
            )
            return [
                [(0, self._encoded_partial(j, partition, mask))]
                for j, mask in zip(active, masks)
            ]
        masks = batch_masks([self.selections[j] for j in active], partition)
        return [
            [(0, self.aggregates[j].partial_from_mask(partition, mask))]
            for j, mask in zip(active, masks)
        ]


@dataclass(frozen=True)
class RowTakeSpec(TaskSpec):
    """Row-materialisation kernel for the coordinator's fetch cache.

    ``chunks`` are the per-plan index arrays requesting rows of one
    partition; the kernel unions them and gathers the rows —
    ``TablePartition.take`` semantics (encoded columns first, row store
    otherwise), exposed worker-side through the same ``take`` method on
    the shared-memory partition wrapper.
    """

    payload_kind = "partition"

    chunks: Tuple[np.ndarray, ...]

    def __call__(self, partition) -> Tuple[np.ndarray, Any]:
        all_idx = np.unique(np.concatenate(self.chunks))
        return all_idx, partition.take(all_idx)


@dataclass(frozen=True, eq=False)
class GridAssignSpec(TaskSpec):
    """Grid-cell assignment kernel for canopy/grid directory builds.

    Picklable replacement for the bound-method cell assigner: scales
    each row's grid columns into cell coordinates, clipped to the grid.
    """

    grid_columns: Tuple[str, ...]
    lows: np.ndarray
    span: np.ndarray
    cells_per_dim: int

    def __call__(self, data) -> np.ndarray:
        mats = data.matrix(list(self.grid_columns))
        scaled = (mats - self.lows) / self.span * self.cells_per_dim
        return np.clip(scaled.astype(int), 0, self.cells_per_dim - 1)


def _optional_tuple(columns: Optional[Sequence[str]]) -> Optional[Tuple[str, ...]]:
    """Normalise a column union for shipping on a morsel (None = no projection)."""
    if columns is None:
        return None
    return tuple(columns)
