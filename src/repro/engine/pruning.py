"""Zone-map scan planning: which partitions a query must actually read.

Before an engine fans a job out over a stored table, the query's
cached ``Selection.box()`` is intersected with every partition's
:class:`~repro.cluster.synopsis.PartitionSynopsis`:

* **skip** — the box is provably disjoint from the partition's zone map
  (exact float comparisons): the partition is never read, never charged,
  and its node is never engaged.
* **synopsis** — the partition is *fully covered* by a box-exact
  selection (``RangeSelection``) and the aggregate is decomposable from
  the stored statistics: the partial is emitted straight from the
  synopsis (a metadata read, zero scan bytes) and is bitwise identical
  to what a full scan of the partition would have produced.
* **scan** — everything else: the partition is read exactly as the
  unpruned path would.

The resulting :class:`ScanPlan` is what
:meth:`~repro.engine.mapreduce.MapReduceEngine.run` consumes; answers
are bit-identical to the unpruned execution in every case (DESIGN §7
spells out the invariants).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.synopsis import PartitionSynopsis
from repro.queries.aggregates import (
    Aggregate,
    Count,
    Max,
    Mean,
    Min,
    Std,
    Sum,
    Variance,
)
from repro.queries.selections import Selection

SCAN = "scan"
SKIP = "skip"
SYNOPSIS = "synopsis"


@dataclass
class ScanPlan:
    """Per-partition actions for one job over one stored table."""

    actions: List[str]
    # partition index -> precomputed map-output pairs (synopsis partitions)
    pairs: Dict[int, List[Tuple[Any, Any]]] = field(default_factory=dict)
    # partition index -> synopsis footprint charged for the metadata read
    synopsis_bytes: Dict[int, int] = field(default_factory=dict)

    @property
    def n_scanned(self) -> int:
        return sum(1 for a in self.actions if a == SCAN)

    @property
    def n_skipped(self) -> int:
        return sum(1 for a in self.actions if a == SKIP)

    @property
    def n_covered(self) -> int:
        return sum(1 for a in self.actions if a == SYNOPSIS)

    @property
    def prunes_nothing(self) -> bool:
        return all(a == SCAN for a in self.actions)

    def action(self, index: int) -> str:
        return self.actions[index]

    @staticmethod
    def scan_everything(n_partitions: int) -> "ScanPlan":
        return ScanPlan(actions=[SCAN] * n_partitions)


def synopsis_partial(aggregate: Aggregate, synopsis: PartitionSynopsis):
    """(supported, partial) of ``aggregate`` over a fully selected partition.

    Each branch reproduces the aggregate's ``partial_from_mask`` with an
    all-true mask *bitwise*, because the synopsis stored the identical
    numpy reductions at build time.  Unsupported aggregates (holistic or
    cross-column) return ``(False, None)`` and fall back to a scan.
    """
    kind = type(aggregate)
    if kind is Count:
        return True, float(synopsis.n_rows)
    column = getattr(aggregate, "column", None)
    if column is None or column not in synopsis.columns:
        return False, None
    stats = synopsis.columns[column]
    if kind is Sum:
        return True, stats.total
    if kind is Mean:
        return True, (stats.total, synopsis.n_rows)
    if kind is Min:
        return True, stats.minimum
    if kind is Max:
        return True, stats.maximum
    if kind is Std or kind is Variance:
        return True, (stats.ftotal, stats.fsumsq, synopsis.n_rows)
    return False, None


def plan_scan(
    synopses: Sequence[PartitionSynopsis],
    selection: Selection,
    aggregate: Optional[Aggregate] = None,
    emit_key: Any = 0,
) -> ScanPlan:
    """Classify every partition of a table for one (selection, aggregate).

    ``emit_key`` is the map-output key synopsis partials are emitted
    under (the exact engine's single-reducer convention uses ``0``).
    With ``aggregate=None`` only skip-vs-scan pruning applies — the mode
    used when the caller needs the matching *rows*, not a partial.
    """
    lows, highs = selection.box()
    columns = selection.columns
    covering = aggregate is not None and selection.box_is_exact
    actions: List[str] = []
    pairs: Dict[int, List[Tuple[Any, Any]]] = {}
    synopsis_bytes: Dict[int, int] = {}
    for index, synopsis in enumerate(synopses):
        if synopsis.disjoint(columns, lows, highs):
            actions.append(SKIP)
            continue
        if covering and synopsis.covered_by(columns, lows, highs):
            supported, partial = synopsis_partial(aggregate, synopsis)
            if supported:
                actions.append(SYNOPSIS)
                pairs[index] = [(emit_key, partial)]
                synopsis_bytes[index] = synopsis.n_bytes
                continue
        actions.append(SCAN)
    return ScanPlan(actions=actions, pairs=pairs, synopsis_bytes=synopsis_bytes)


def prune_row_plan(
    synopses: Sequence[PartitionSynopsis],
    rows_by_partition: Dict[int, Sequence[int]],
    selection: Selection,
    dirty: Optional[AbstractSet[int]] = None,
) -> Tuple[Dict[int, Sequence[int]], int]:
    """Drop row-fetch requests against partitions disjoint from the box.

    Returns ``(kept_plan, n_pruned_partitions)``.  Safe only for callers
    that filter the fetched rows by ``selection`` afterwards — the
    dropped rows provably cannot satisfy it.  ``dirty`` partitions
    (staged delta writes the base synopsis does not describe) are never
    pruned.
    """
    lows, highs = selection.box()
    columns = selection.columns
    kept: Dict[int, Sequence[int]] = {}
    pruned = 0
    for index, rows in rows_by_partition.items():
        synopsis = synopses[index] if 0 <= index < len(synopses) else None
        if (
            synopsis is not None
            and (dirty is None or index not in dirty)
            and synopsis.disjoint(columns, lows, highs)
        ):
            pruned += 1
            continue
        kept[index] = rows
    return kept, pruned
