"""Encoded-column scan kernels: predicates + late materialization.

The row-major exact path reads a whole partition, builds a selection
mask, and feeds masked columns to the aggregate.  This module is the
columnar twin: selection bounds are evaluated *directly on the encoded
columns* (dictionary-domain comparison, run-level comparison + expansion,
vectorized compares on raw buffers — one fused numpy pass per column, no
per-row python), and only the surviving rows of the columns the
aggregate actually reads are ever decoded into :class:`Table` form.

Bitwise identity with the row path is the contract, not an aspiration:

* every encoded range mask equals ``RangeSelection.mask`` on the decoded
  table (floating-point comparisons are exact, and distributing a
  comparison over a dictionary/run domain is a pure re-association of
  *which* rows are compared, never of the comparison itself);
* ``partial_from_encoded`` builds the masked mini-table from the same
  ``decode()[mask]`` bit patterns the row path masks, then calls the
  aggregate's own ``partial`` — the documented equal of
  ``partial_from_mask`` — so partials, shuffle payload estimates, and
  merged answers are identical at any worker count.

Pushdown is *conservative*: only selection and aggregate types whose
column sets are statically known participate (:func:`scan_columns`
returns None otherwise), and unknown shapes fall back to a full decode,
which is always correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.columnar import ColumnarPartition
from repro.data.tabular import Table
from repro.queries.aggregates import (
    Aggregate,
    Correlation,
    Count,
    Max,
    Mean,
    Median,
    Min,
    Quantile,
    RegressionCoefficients,
    Std,
    Sum,
    Variance,
)
from repro.queries.selections import (
    KNNSelection,
    RadiusSelection,
    RangeSelection,
    Selection,
)


@dataclass(frozen=True)
class ColumnScan:
    """A column-pruned scan request: the columns one job must read."""

    columns: Tuple[str, ...]


#: Exact aggregate types with statically known column sets.  Exact-type
#: keys (not isinstance) keep the pushdown conservative: a subclass with
#: overridden partials simply falls back to the row-identical full path.
_COLUMN_AGGREGATES = (Sum, Mean, Std, Variance, Min, Max, Median, Quantile)
_SELECTION_TYPES = (RangeSelection, RadiusSelection, KNNSelection)


def aggregate_columns(aggregate: Aggregate) -> Optional[Tuple[str, ...]]:
    """Columns ``aggregate`` reads, or None when not statically known."""
    kind = type(aggregate)
    if kind is Count:
        return ()
    if kind in _COLUMN_AGGREGATES:
        return (aggregate.column,)
    if kind is Correlation:
        return (aggregate.column_a, aggregate.column_b)
    if kind is RegressionCoefficients:
        return tuple(aggregate.features) + (aggregate.target,)
    return None


def selection_columns(selection: Selection) -> Optional[Tuple[str, ...]]:
    """Columns ``selection`` reads, or None when not statically known."""
    if type(selection) in _SELECTION_TYPES:
        return tuple(selection.columns)
    return None


def scan_columns(
    selection: Selection, aggregate: Aggregate
) -> Optional[ColumnScan]:
    """The column-pruned scan for one query, or None (read everything).

    The scan covers the selection's predicate columns plus the
    aggregate's input columns, deduplicated in first-use order; any
    statically unknown shape disables pushdown for the whole query.
    """
    sel = selection_columns(selection)
    agg = aggregate_columns(aggregate)
    if sel is None or agg is None:
        return None
    return ColumnScan(tuple(dict.fromkeys(sel + agg)))


# Encoded predicate evaluation ----------------------------------------------
def encoded_mask(part: ColumnarPartition, selection: Selection) -> np.ndarray:
    """``selection.mask`` evaluated on encoded columns, bitwise equal.

    Range selections run per-encoding kernels (dictionary-domain
    comparison, run skipping, fused raw compares); other selections
    decode just their predicate columns into a scratch table — column
    pruning still applies, only the late-materialization step is lost.
    """
    if type(selection) is RangeSelection:
        out = np.ones(part.n_rows, dtype=bool)
        for name, lo, hi in zip(selection.columns, selection.lows, selection.highs):
            out &= part.column(name).range_mask(lo, hi)
        return out
    scratch = Table(
        {name: part.column(name).decode() for name in selection.columns},
        name=part.name,
        value_bytes=part.value_bytes,
    )
    return selection.mask(scratch)


def encoded_batch_masks(
    selections: Sequence[Selection], part: ColumnarPartition
) -> List[np.ndarray]:
    """Masks for many selections over one columnar partition.

    The encoded twin of :func:`repro.queries.selections.batch_masks`: a
    homogeneous batch of range selections over the same columns shares
    one encoded read per column (one broadcast comparison over the
    dictionary/run/raw domain); mixed batches fall back to the
    per-selection loop.  Every mask is bitwise equal to
    ``encoded_mask(part, selection)``.
    """
    if not selections:
        return []
    if len(selections) >= 2 and all(
        type(s) is RangeSelection for s in selections
    ):
        columns = selections[0].columns
        if all(s.columns == columns for s in selections[1:]):
            lows = np.stack([s.lows for s in selections])
            highs = np.stack([s.highs for s in selections])
            out: Optional[np.ndarray] = None
            for j, name in enumerate(columns):
                masks = part.column(name).batch_range_masks(
                    lows[:, j], highs[:, j]
                )
                out = masks if out is None else out & masks
            if out is None:  # zero predicate columns cannot happen, but be safe
                out = np.ones((len(selections), part.n_rows), dtype=bool)
            return list(out)
    return [encoded_mask(part, s) for s in selections]


# Late-materialized partials -------------------------------------------------
_UNRESOLVED = object()  # sentinel: caller did not precompute the columns


def partial_from_encoded(
    part: ColumnarPartition,
    aggregate: Aggregate,
    mask: np.ndarray,
    columns=_UNRESOLVED,
):
    """The aggregate's partition partial from an encoded mask.

    Decodes only the surviving rows of the aggregate's own columns and
    feeds them to ``aggregate.partial`` — bitwise equal to
    ``aggregate.partial_from_mask(decoded_partition, mask)`` because the
    masked gathers reproduce ``decode()[mask]`` exactly and
    ``partial_from_mask`` is documented to equal
    ``partial(table.select(mask))``.

    Batched callers that resolve :func:`aggregate_columns` once per job
    pass the result as ``columns`` to skip re-dispatching it for every
    (job, partition) pair on the shared-pass hot path.
    """
    if columns is _UNRESOLVED:
        columns = aggregate_columns(aggregate)
    if columns is None:
        # Unknown aggregate shape: full decode, then the row-path partial.
        return aggregate.partial_from_mask(part.to_table(), mask)
    if not columns:
        # Count is the only column-less aggregate; its partial_from_mask
        # is float(np.count_nonzero(mask)) regardless of the table.
        return float(np.count_nonzero(mask))
    # Gather survivors from the partition's cached decoded scratch of
    # just these columns: ``partial_from_mask`` is documented to equal
    # ``partial(table.select(mask))``, the scratch holds ``decode()``
    # arrays bit for bit, and the decode itself amortizes to one pass
    # per column per partition (zero for raw columns) across a wave.
    return aggregate.partial_from_mask(part.scratch_table(columns), mask)


def columnar_partial(
    part: ColumnarPartition, selection: Selection, aggregate: Aggregate
):
    """One partition's partial: encoded predicate + late materialization."""
    return partial_from_encoded(part, aggregate, encoded_mask(part, selection))
