"""Big Data Analytics Stack (BDAS) layering model.

Sec. II.A, first bullet: "each analytical query passes through many layers
of the BDAS, with each layer adding extra overheads at all nodes engaged in
task processing."  We model that directly: a stack is an ordered list of
layers, and submitting work through it charges one layer-crossing per layer
per engaged node (plus the client-side entry).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.common.accounting import CostMeter
from repro.common.validation import require

DEFAULT_LAYERS: Tuple[str, ...] = (
    "client",
    "query_interface",
    "big_data_engine",
    "resource_manager",
    "storage_engine",
)


class BDASStack:
    """An ordered stack of named layers with per-crossing overhead."""

    def __init__(self, layers: Sequence[str] = DEFAULT_LAYERS) -> None:
        require(len(layers) >= 1, "a stack needs at least one layer")
        self.layers: Tuple[str, ...] = tuple(layers)

    @property
    def depth(self) -> int:
        return len(self.layers)

    def charge_submission(
        self, meter: CostMeter, entry_node: str, engaged_nodes: Iterable[str]
    ) -> float:
        """Charge a query descending the stack and fanning out.

        The full stack is crossed once at the entry node (query submission)
        and the lower half (engine downwards) is crossed on every engaged
        node, as each node's local daemons dispatch the work.  Returns the
        critical-path seconds, which the caller adds to elapsed time.
        """
        entry_seconds = meter.charge_layers(entry_node, self.depth)
        fanout_layers = max(1, self.depth // 2)
        node_seconds = 0.0
        n_engaged = 0
        for node_id in engaged_nodes:
            n_engaged += 1
            node_seconds = max(
                node_seconds, meter.charge_layers(node_id, fanout_layers)
            )
        total = entry_seconds + node_seconds
        obs = meter.observer
        if obs is not None:
            obs.record_span(
                "stack:submit",
                obs.now,
                total,
                category="stack",
                layers=self.depth,
                engaged_nodes=n_engaged,
            )
        return total

    def charge_result_return(self, meter: CostMeter, entry_node: str) -> float:
        """Charge the answer ascending the stack back to the client."""
        seconds = meter.charge_layers(entry_node, self.depth)
        obs = meter.observer
        if obs is not None:
            obs.record_span(
                "stack:return", obs.now, seconds, category="stack", layers=self.depth
            )
        return seconds


def agent_stack() -> BDASStack:
    """The stack seen by the data-less agent: just the client-facing layer.

    When the SEA agent answers from its models (Fig. 2), the query never
    descends into the engine/storage layers — it is intercepted at the
    interface.
    """
    return BDASStack(layers=("client", "sea_agent"))
