"""Bounded, deadline-ordered admission control for the serving gateway.

The gateway's front door is a :class:`AdmissionQueue`: a bounded buffer
of pending :class:`Request`\\ s with per-tenant sub-queues.  Admission is
where backpressure becomes *typed* instead of implicit latency:

* the queue holds at most ``capacity`` requests across all tenants and
  at most ``tenant_quota`` per tenant — before refusing a live arrival
  at capacity, the gateway sheds queued requests that are already past
  their deadline (they cannot be served usefully anyway; shedding them
  is strictly better than refusing live work), so ``queue_full`` means
  genuinely full of serveable work;
* every refusal raises
  :class:`~repro.common.errors.AdmissionRejectedError` with a machine
  -readable ``reason`` so clients can distinguish "back off" from "your
  deadline already passed";
* within a tenant, requests are served in *effective-deadline* order:
  ``min(deadline, arrival + starvation_guard)`` — the aging term bounds
  how long a no-deadline (or far-deadline) request can be overtaken by
  urgent arrivals, so deadline scheduling cannot starve patient clients;
* dispatches are *feasibility-checked* against the batcher's measured
  per-query service time (see :meth:`AdmissionQueue.take`): the
  tightest-deadline members are dropped — as fast typed rejections —
  until the batch's projected completion fits every survivor, so the
  gateway never spends serving capacity on answers that would arrive
  past their deadline anyway.

The queue is a plain single-threaded structure: the gateway mutates it
only from its event loop, so there is no locking here by design.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.common.errors import AdmissionRejectedError
from repro.common.validation import require


@dataclass
class Request:
    """One admitted (or about-to-be-admitted) gateway request."""

    tenant: str
    query: Any
    arrival: float
    deadline: float
    future: Any = None
    seq: int = 0
    #: Set by the queue when the request is shed/cancelled so a lazily
    #: popped heap entry can be skipped without an O(n) removal.
    dead: bool = False

    def effective_deadline(self, starvation_guard: float) -> float:
        """Scheduling key: deadline, capped by the anti-starvation age."""
        return min(self.deadline, self.arrival + starvation_guard)


class AdmissionQueue:
    """Bounded deadline-ordered pending set with per-tenant sub-queues."""

    def __init__(
        self,
        capacity: int = 256,
        tenant_quota: int = 0,
        starvation_guard: float = 0.25,
    ) -> None:
        require(capacity >= 1, "capacity must be >= 1")
        require(tenant_quota >= 0, "tenant_quota must be >= 0 (0 = unlimited)")
        require(starvation_guard > 0, "starvation_guard must be positive")
        self.capacity = capacity
        self.tenant_quota = tenant_quota
        self.starvation_guard = starvation_guard
        self._heaps: Dict[str, List] = {}
        self._pending: Dict[str, int] = {}
        self._seq = itertools.count()
        self.admitted_total = 0
        self.shed_total = 0
        self.rejected_total = 0

    def __len__(self) -> int:
        return sum(self._pending.values())

    def pending(self, tenant: str) -> int:
        return self._pending.get(tenant, 0)

    def tenants_with_work(self) -> List[str]:
        """Tenants holding at least one live request (insertion order)."""
        return [t for t, n in self._pending.items() if n > 0]

    # Admission --------------------------------------------------------------
    def offer(self, request: Request, now: float) -> Request:
        """Admit ``request`` or raise a typed rejection.

        Admission order of defence: tenant quota first (a greedy tenant
        is rejected even when the shared queue has room — its quota is
        the fairness boundary), then total capacity.  The queue never
        sheds internally here — every shed request carries a waiting
        future the *caller* must fail, so the gateway runs its shed
        pass (which does exactly that) before offering when the queue
        looks full.
        """
        if self.tenant_quota and self.pending(request.tenant) >= self.tenant_quota:
            self.rejected_total += 1
            raise AdmissionRejectedError(
                "tenant_quota",
                tenant=request.tenant,
                detail=f"{self.pending(request.tenant)} pending >= quota "
                f"{self.tenant_quota}",
                queue_depth=len(self),
            )
        if len(self) >= self.capacity:
            self.rejected_total += 1
            raise AdmissionRejectedError(
                "queue_full",
                tenant=request.tenant,
                detail=f"{len(self)} pending >= capacity {self.capacity}",
                queue_depth=len(self),
            )
        request.seq = next(self._seq)
        heap = self._heaps.setdefault(request.tenant, [])
        heapq.heappush(
            heap,
            (request.effective_deadline(self.starvation_guard), request.seq, request),
        )
        self._pending[request.tenant] = self._pending.get(request.tenant, 0) + 1
        self.admitted_total += 1
        return request

    # Shedding ---------------------------------------------------------------
    def shed_expired(self, now: float) -> List[Request]:
        """Remove every queued request whose deadline has passed.

        Returns the shed requests (oldest-deadline first per tenant);
        the caller is responsible for failing their futures with a
        ``reason="deadline"`` rejection.  Marking entries ``dead`` keeps
        this O(shed log n) — survivors are never re-heapified.
        """
        shed: List[Request] = []
        for tenant, heap in self._heaps.items():
            while heap and (heap[0][2].dead or heap[0][2].deadline <= now):
                _, _, request = heapq.heappop(heap)
                if request.dead:
                    continue
                request.dead = True
                self._pending[tenant] -= 1
                shed.append(request)
        self.shed_total += len(shed)
        return shed

    def drain(self) -> List[Request]:
        """Remove and return every live request (gateway shutdown path)."""
        drained: List[Request] = []
        for tenant, heap in self._heaps.items():
            while heap:
                _, _, request = heapq.heappop(heap)
                if request.dead:
                    continue
                request.dead = True
                drained.append(request)
            self._pending[tenant] = 0
        return drained

    # Dispatch ---------------------------------------------------------------
    def take(
        self, tenant: str, limit: int, now: float, service: float = 0.0
    ) -> List[Request]:
        """Pop up to ``limit`` live requests of ``tenant``, deadline order.

        Requests already past their deadline are shed (returned
        separately by a prior :meth:`shed_expired`; here they are simply
        skipped and marked) rather than dispatched — serving a dead
        request wastes a batch slot the goodput metric would count
        against us.

        When a per-query ``service`` estimate is supplied, the dispatch
        is also *feasibility-checked*.  Members of one ``submit_batch``
        call all finish together, at roughly ``now + n * service`` for a
        batch of ``n`` — so with uniform service times the on-time-
        maximal subset is found Moore–Hodgson style: drop the tightest-
        deadline member until the projected completion fits every
        survivor.  Dropped members become fast typed rejections the
        client can act on; serving them could only produce late answers
        (zero goodput, inflated tail) while delaying the rest of the
        batch.  Crucially the *backlog depth* does not shrink the batch:
        a doomed head never caps amortisation for the roomy requests
        behind it — shedding it is what keeps batches large under
        sustained overload.
        """
        require(limit >= 1, "limit must be >= 1")
        heap = self._heaps.get(tenant)
        taken: List[Request] = []
        if not heap:
            return taken
        while heap and len(taken) < limit:
            _, _, request = heapq.heappop(heap)
            if request.dead:
                continue
            request.dead = True  # no longer queued; owned by the caller
            self._pending[tenant] -= 1
            if request.deadline <= now:
                self.shed_total += 1
                self._reject_deadline(request, now)
                continue
            taken.append(request)
        if service > 0.0 and taken:
            taken.sort(key=lambda r: (r.deadline, r.seq))
            while taken and now + len(taken) * service > taken[0].deadline:
                doomed = taken.pop(0)
                self.shed_total += 1
                self._reject_infeasible(
                    doomed, now, now + (len(taken) + 1) * service
                )
        return taken

    def oldest_wait(self, now: float) -> float:
        """Age of the oldest live queued request (0.0 when empty)."""
        oldest: Optional[float] = None
        for heap in self._heaps.values():
            for _, _, request in heap:
                if not request.dead:
                    arrival = request.arrival
                    oldest = arrival if oldest is None else min(oldest, arrival)
        return 0.0 if oldest is None else max(0.0, now - oldest)

    @staticmethod
    def _reject_deadline(request: Request, now: float) -> None:
        future = request.future
        if future is not None and not future.done():
            future.set_exception(
                AdmissionRejectedError(
                    "deadline",
                    tenant=request.tenant,
                    detail=f"deadline {request.deadline:.4f} passed at "
                    f"{now:.4f} while queued",
                )
            )

    @staticmethod
    def _reject_infeasible(
        request: Request, now: float, projected: float
    ) -> None:
        future = request.future
        if future is not None and not future.done():
            future.set_exception(
                AdmissionRejectedError(
                    "deadline",
                    tenant=request.tenant,
                    detail=f"projected completion {projected:.4f} past "
                    f"deadline {request.deadline:.4f} at {now:.4f}",
                )
            )
