"""Async multi-tenant serving gateway with adaptive micro-batching.

:class:`ServingGateway` is the front door for many concurrent clients
over one :class:`~repro.session.SEASession`'s cluster.  One asyncio
event loop admits requests, one serve-loop task schedules them, and one
dedicated serving thread executes coalesced batches — the engine itself
never sees concurrency, which is what keeps every gateway answer
byte-identical to a plain sequential session.

The serving pipeline, in order:

1. **Admission** (:mod:`repro.serve.admission`): bounded queue with
   per-tenant quotas; refusals are typed
   :class:`~repro.common.errors.AdmissionRejectedError`\\ s, and a full
   queue sheds already-expired requests before rejecting live ones.
2. **Scheduling**: deficit round-robin across tenants (cross-tenant
   fairness), effective-deadline order within a tenant (urgency), and a
   starvation guard that forces service of any request older than the
   guard regardless of whose turn it is.
3. **Micro-batching** (:mod:`repro.serve.batcher`): the serve loop waits
   up to an adaptive window for concurrent arrivals to coalesce into a
   single ``submit_batch`` call.  The window is tuned online from the
   observed arrival rate and batch service time and collapses to zero
   at low load — plus an *inline fast path* that serves a lone request
   directly in ``submit`` (no queue hop, no thread hop), so pass-through
   latency is a direct agent call plus microseconds of bookkeeping.
4. **Execution**: per-tenant :class:`~repro.serve.tenant.TenantHandle`
   agents (own predictors + own answer-cache partition) over the shared
   engine, run on a single ``sea-gateway`` thread via
   ``run_in_executor`` so the event loop stays responsive during scans.

Byte-identity contract: for each tenant, the answers the gateway
returned equal a fresh sequential agent over the same store serving
``handle.served_queries`` (the gateway's serving order) — E24 asserts
this on every trial.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.common.accounting import CostReport
from repro.common.errors import (
    AdmissionRejectedError,
    ConfigurationError,
    GatewayClosedError,
)
from repro.common.validation import require
from repro.core.agent import AgentConfig
from repro.obs.observer import Observer
from repro.queries.query import AnalyticsQuery
from repro.queries.sql import parse_query
from repro.serve.admission import AdmissionQueue, Request
from repro.serve.batcher import AdaptiveBatcher
from repro.serve.tenant import DeficitRoundRobin, TenantHandle
from repro.session import SEASession


@dataclass
class GatewayConfig:
    """Knobs for admission, scheduling and micro-batching."""

    #: Total pending requests across all tenants before ``queue_full``.
    queue_capacity: int = 256
    #: Pending requests per tenant before ``tenant_quota`` (0 = none).
    tenant_quota: int = 0
    #: Largest batch one dispatch may coalesce.
    max_batch: int = 64
    #: Deadline applied when a request names none (seconds from arrival).
    default_timeout: float = 1.0
    #: A queued request older than this is served next, turn or not.
    starvation_guard: float = 0.25
    #: Upper clamp on the adaptive batching window (seconds).
    max_window: float = 0.02
    #: Utilisation at or below which the gateway is pure pass-through.
    passthrough_rho: float = 0.75
    #: Target batch = ceil(headroom * rho) once batching engages.
    headroom: float = 2.0
    #: Samples kept by the batcher's windowed-median estimators.
    estimator_history: int = 32
    #: DRR credits granted per visit (0 = use ``max_batch``).
    drr_quantum: int = 0


@dataclass
class GatewayAnswer:
    """One served request: the session answer plus serving provenance."""

    query: AnalyticsQuery
    value: object
    mode: str
    cost: CostReport
    tenant: str
    batched: bool
    batch_size: int
    queued_sec: float
    service_sec: float
    profile: object = None


@dataclass
class _GatewayCounters:
    served_total: int = 0
    passthrough_total: int = 0
    coalesced_total: int = 0
    batches_total: int = 0
    inline_total: int = 0
    rejected: Dict[str, int] = field(default_factory=dict)

    def reject(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1


class ServingGateway:
    """Async front door multiplexing tenants over one ``SEASession``.

    The gateway owns the session it serves by default: ``close()``
    drains the queue, stops the serve loop, shuts the serving thread
    down and closes the session (idempotently); pass
    ``own_session=False`` to share one session across many gateway
    lifetimes.  Use it as an async context manager::

        async with ServingGateway(session) as gw:
            answer = await gw.submit("SELECT ...", tenant="alice")

    ``time_fn`` is the *scheduling* clock (arrivals, deadlines,
    windows); tests inject a fake one to make shedding deterministic.
    Service times always come from ``time.perf_counter``.
    """

    def __init__(
        self,
        session: SEASession,
        config: Optional[GatewayConfig] = None,
        agent_config: Optional[AgentConfig] = None,
        time_fn=None,
        own_session: bool = True,
    ) -> None:
        self.session = session
        self.own_session = own_session
        self.config = config or GatewayConfig()
        require(self.config.max_batch >= 1, "max_batch must be >= 1")
        require(self.config.default_timeout > 0, "default_timeout must be > 0")
        self._agent_config = agent_config
        self._time = time_fn or time.monotonic
        self.queue = AdmissionQueue(
            capacity=self.config.queue_capacity,
            tenant_quota=self.config.tenant_quota,
            starvation_guard=self.config.starvation_guard,
        )
        self.batcher = AdaptiveBatcher(
            max_window=self.config.max_window,
            passthrough_rho=self.config.passthrough_rho,
            headroom=self.config.headroom,
            history=self.config.estimator_history,
        )
        self.drr = DeficitRoundRobin(
            quantum=self.config.drr_quantum or self.config.max_batch
        )
        self.counters = _GatewayCounters()
        self._handles: Dict[str, TenantHandle] = {}
        self.observer: Optional[Observer] = session.observer
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._task: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None
        self._pool = None  # lazy single-thread executor ("sea-gateway")
        self._busy = False  # a batch is executing on the serving thread
        self._closing = False
        self._closed = False

    # Tenancy ----------------------------------------------------------------
    def tenant(self, name: str = "default") -> TenantHandle:
        """Get or lazily create the named tenant's serving handle."""
        handle = self._handles.get(name)
        if handle is None:
            handle = TenantHandle(name, self.session.engine, self._agent_config)
            if self.observer is not None:
                handle.agent.attach_observer(self.observer)
            self._handles[name] = handle
            self.drr.observe(name)
        return handle

    def tenants(self) -> List[str]:
        return list(self._handles)

    # Observability ----------------------------------------------------------
    def attach_observer(self, observer: Optional[Observer] = None) -> Observer:
        """Wire an observer through the session and every tenant agent."""
        observer = self.session.attach_observer(observer)
        self.observer = observer
        for handle in self._handles.values():
            handle.agent.attach_observer(observer)
        return observer

    # Lifecycle --------------------------------------------------------------
    async def start(self) -> "ServingGateway":
        """Bind to the running loop and start the serve task (idempotent)."""
        if self._closed:
            raise GatewayClosedError(detail="gateway already closed")
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
            self._wake = asyncio.Event()
            self._task = loop.create_task(self._serve_loop())
        elif self._loop is not loop:
            raise ConfigurationError(
                "this ServingGateway is bound to a different event loop"
            )
        return self

    async def __aenter__(self) -> "ServingGateway":
        return await self.start()

    async def __aexit__(self, *exc) -> bool:
        await self.close()
        return False

    async def close(self, drain: bool = True) -> None:
        """Stop serving and shut everything down (idempotent).

        ``drain=True`` (the default) serves every queued request before
        stopping; ``drain=False`` fails them with a typed ``closed``
        rejection.  Either way new submissions are refused immediately,
        the serving thread is joined, and the underlying session closed.
        """
        if self._closed:
            return
        self._closing = True
        if self._task is not None:
            if not drain:
                for request in self.queue.drain():
                    self._fail(
                        request,
                        GatewayClosedError(
                            tenant=request.tenant, detail="gateway closing"
                        ),
                    )
                    self.counters.reject("closed")
            self._wake.set()
            await self._task
            self._task = None
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self.own_session:
            self.session.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # Submission -------------------------------------------------------------
    async def submit(
        self,
        statement_or_query: Union[str, AnalyticsQuery],
        tenant: str = "default",
        deadline: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> GatewayAnswer:
        """Admit one request and await its answer.

        ``deadline`` is absolute on the gateway clock; ``timeout`` is
        relative to arrival; naming neither applies
        ``config.default_timeout``.  Raises
        :class:`AdmissionRejectedError` (reasons ``queue_full`` /
        ``tenant_quota`` / ``deadline`` / ``closed``) when the request
        cannot be served within policy.
        """
        if self._closed or self._closing:
            self.counters.reject("closed")
            raise GatewayClosedError(tenant=tenant)
        await self.start()
        query = (
            parse_query(statement_or_query)
            if isinstance(statement_or_query, str)
            else statement_or_query
        )
        now = self._time()
        if deadline is None:
            deadline = now + (
                timeout if timeout is not None else self.config.default_timeout
            )
        handle = self.tenant(tenant)
        request = Request(
            tenant=tenant, query=query, arrival=now, deadline=deadline
        )
        if deadline <= now:
            self.counters.reject("deadline")
            self.queue.rejected_total += 1
            raise AdmissionRejectedError(
                "deadline", tenant=tenant, detail="dead on arrival"
            )
        # Inline fast path: nothing queued, nothing executing, and the
        # batcher says the loop is keeping up — serve right here on the
        # loop thread.  This is what makes low-load p50
        # indistinguishable from a direct agent submit (no future, no
        # hop, no window).  Once utilisation crosses the pass-through
        # threshold, requests go through the queue instead, keeping the
        # event loop free to admit arrivals while batches execute on
        # the serving thread.
        if (
            not self._busy
            and len(self.queue) == 0
            and self.batcher.window() == 0.0
        ):
            self.batcher.note_arrival(now)
            return self._serve_inline(handle, request)
        request.future = self._loop.create_future()
        try:
            if len(self.queue) >= self.config.queue_capacity:
                # Shed already-expired queued requests (their futures
                # fail with reason="deadline") before refusing live
                # work — they could never be served usefully anyway.
                self._shed(now)
            self.queue.offer(request, now)
        except AdmissionRejectedError as exc:
            self.counters.reject(exc.reason)
            if self.observer is not None and self.observer.enabled:
                self.observer.inc(
                    "gateway_rejected_total", reason=exc.reason, tenant=tenant
                )
            raise
        self.batcher.note_arrival(now)
        self._wake.set()
        return await request.future

    async def submit_many(
        self,
        statements,
        tenant: str = "default",
        deadline: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> List[GatewayAnswer]:
        """Submit a burst concurrently; returns answers in input order.

        Rejected members surface as raised exceptions from the gather,
        mirroring ``asyncio.gather`` semantics with
        ``return_exceptions=False``.
        """
        return await asyncio.gather(
            *(
                self.submit(s, tenant=tenant, deadline=deadline, timeout=timeout)
                for s in statements
            )
        )

    # Serving ----------------------------------------------------------------
    def _serve_inline(
        self, handle: TenantHandle, request: Request
    ) -> GatewayAnswer:
        """Pass-through: execute one request synchronously on the loop."""
        self._busy = True
        try:
            started = time.perf_counter()
            records = handle.serve([request])
            host = time.perf_counter() - started
        finally:
            self._busy = False
        self.batcher.note_batch(1, host)
        self.counters.inline_total += 1
        answer = self._answer(request, records[0], 1, 0.0, host)
        self._note_served([request], 1, host, inline=True)
        return answer

    async def _serve_loop(self) -> None:
        """The single consumer: shed, pick, coalesce, execute, resolve."""
        while True:
            await self._wake.wait()
            if len(self.queue) == 0:
                if self._closing:
                    return
                self._wake.clear()
                continue
            now = self._time()
            self._shed(now)
            window = self.batcher.window()
            if (
                window > 0.0
                and not self._closing
                and len(self.queue) < self.batcher.target_batch()
            ):
                await asyncio.sleep(window)
                now = self._time()
                self._shed(now)
            picked = self._pick(now)
            if picked is None:
                if len(self.queue) == 0 and not self._closing:
                    self._wake.clear()
                continue
            tenant, budget = picked
            requests = self.queue.take(
                tenant,
                min(budget, self.config.max_batch),
                now,
                # Feasibility-check the dispatch against the batcher's
                # measured per-query service: members whose deadline
                # the batch cannot meet become fast typed rejections
                # instead of late answers.
                service=self.batcher.service_seconds,
            )
            self.drr.charge(tenant, len(requests))
            if not requests:
                continue
            handle = self._handles[tenant]

            def timed_serve(handle=handle, requests=requests):
                # Timed on the serving thread itself so the batcher's
                # service estimate reflects the work, not the loop ->
                # thread handoff (which amortises away with batch size
                # and must not masquerade as saturation).
                t0 = time.perf_counter()
                records = handle.serve(requests)
                return records, time.perf_counter() - t0

            self._busy = True
            try:
                if len(requests) == 1 and self.batcher.window() == 0.0:
                    # Pass-through regime: a lone request that queued
                    # only because it arrived mid-serve.  Serving it on
                    # the loop thread skips the executor handoff, so a
                    # queued pass-through costs the same as the inline
                    # fast path — the E24 low-rate p50 gate measures
                    # exactly this.  Batches (or any nonzero window)
                    # still go to the serving thread to keep the loop
                    # admitting arrivals during long scans.
                    records, host = timed_serve()
                else:
                    records, host = await self._loop.run_in_executor(
                        self._serving_pool(), timed_serve
                    )
            except Exception as exc:  # engine failure -> every waiter
                for request in requests:
                    self._fail(request, exc)
                continue
            finally:
                self._busy = False
            self.batcher.note_batch(len(requests), host)
            done = self._time()
            size = len(requests)
            for request, record in zip(requests, records):
                if request.future is not None and not request.future.done():
                    request.future.set_result(
                        self._answer(
                            request,
                            record,
                            size,
                            max(0.0, done - request.arrival - host),
                            host,
                        )
                    )
            self._note_served(requests, size, host, inline=False)

    def _pick(self, now: float):
        """Choose the next tenant to serve and its dispatch budget.

        The starvation guard overrides DRR: any request queued longer
        than the guard promotes its tenant to the front regardless of
        deficits, bounding worst-case queue wait for every client.
        """
        if self.queue.oldest_wait(now) >= self.config.starvation_guard:
            oldest_tenant, oldest_arrival = None, None
            for name in self.queue.tenants_with_work():
                heap = self.queue._heaps.get(name, ())
                for _, _, request in heap:
                    if not request.dead and (
                        oldest_arrival is None or request.arrival < oldest_arrival
                    ):
                        oldest_tenant, oldest_arrival = name, request.arrival
            if oldest_tenant is not None:
                return oldest_tenant, self.config.max_batch
        pending = {
            name: self.queue.pending(name)
            for name in self.queue.tenants_with_work()
        }
        return self.drr.select(pending)

    def _shed(self, now: float) -> None:
        for request in self.queue.shed_expired(now):
            self.counters.reject("deadline")
            if self.observer is not None and self.observer.enabled:
                self.observer.inc(
                    "gateway_rejected_total",
                    reason="deadline",
                    tenant=request.tenant,
                )
            self.queue._reject_deadline(request, now)

    def _answer(
        self,
        request: Request,
        record,
        batch_size: int,
        queued_sec: float,
        host_sec: float,
    ) -> GatewayAnswer:
        return GatewayAnswer(
            query=record.query,
            value=record.answer,
            mode=record.mode,
            cost=record.cost,
            tenant=request.tenant,
            batched=batch_size > 1,
            batch_size=batch_size,
            queued_sec=queued_sec,
            service_sec=host_sec / batch_size,
            profile=record.profile,
        )

    def _note_served(
        self, requests: List[Request], size: int, host: float, inline: bool
    ) -> None:
        self.counters.served_total += size
        self.counters.batches_total += 1
        if size > 1:
            self.counters.coalesced_total += size
        else:
            self.counters.passthrough_total += 1
        observer = self.observer
        if observer is None or not observer.enabled:
            return
        tenant = requests[0].tenant
        observer.inc("gateway_requests_total", size, tenant=tenant)
        observer.observe("gateway_batch_size", float(size))
        observer.observe("gateway_batch_host_seconds", host)
        observer.set_gauge("gateway_queue_depth", float(len(self.queue)))
        observer.set_gauge(
            "gateway_batch_window_seconds", self.batcher.window()
        )
        observer.record_span(
            "gateway:inline" if inline else "gateway:batch",
            observer.now,
            host,
            category="gateway",
            track="gateway",
            tenant=tenant,
            batch=size,
        )

    @staticmethod
    def _fail(request: Request, exc: BaseException) -> None:
        if request.future is not None and not request.future.done():
            request.future.set_exception(exc)

    def _serving_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="sea-gateway"
            )
        return self._pool

    # Introspection ----------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Gateway counters, batcher estimates and per-tenant stats."""
        return {
            "served_total": self.counters.served_total,
            "inline_total": self.counters.inline_total,
            "passthrough_total": self.counters.passthrough_total,
            "coalesced_total": self.counters.coalesced_total,
            "batches_total": self.counters.batches_total,
            "rejected": dict(self.counters.rejected),
            "queue_depth": len(self.queue),
            "queue_admitted_total": self.queue.admitted_total,
            "queue_shed_total": self.queue.shed_total,
            "queue_rejected_total": self.queue.rejected_total,
            "batcher": self.batcher.snapshot(),
            "drr_deficits": self.drr.deficits(),
            "tenants": {
                name: handle.stats() for name, handle in self._handles.items()
            },
        }
