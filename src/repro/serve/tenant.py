"""Per-tenant serving handles and cross-tenant fair scheduling.

Multi-tenancy in the gateway is *agent-level*: every tenant gets its own
:class:`~repro.core.SEAAgent` — its own predictors, learning history,
and (crucially) its own :class:`~repro.core.AnswerCache` partition — all
sharing one exact engine over one :class:`DistributedStore`.  The data
is shared; the learned serving state and cache are not, so one tenant's
drift resets or cache churn can never pollute another's answers, and a
tenant's answer stream is byte-identical to a dedicated sequential
session serving the same queries in the same order.

Fairness across tenants is deficit round-robin (*DRR*) over coalesced
batches: each visit grants a tenant ``quantum`` credits, a dispatched
batch spends one credit per request, and unused credit carries over only
while the tenant stays backlogged.  A tenant flooding the gateway gets
throughput proportional to its share of visits — not of arrivals.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from repro.common.validation import require
from repro.core.agent import AgentConfig, SEAAgent, ServedQuery


class TenantHandle:
    """One tenant's serving state over the gateway's shared engine."""

    def __init__(
        self, name: str, engine, config: Optional[AgentConfig] = None
    ) -> None:
        self.name = name
        # Each handle owns a *copy* of the config: freezing one tenant's
        # learning (or resizing its cache budget) must not leak into the
        # others through a shared mutable dataclass.
        self.config = replace(config) if config is not None else AgentConfig()
        self.agent = SEAAgent(engine, self.config)
        #: Queries in the order this tenant's agent actually served them
        #: — the replay log the byte-identity contract is checked against
        #: (gateway answers == a fresh sequential session fed this list).
        self.served_queries: List = []
        self.served_total = 0
        self.batches_total = 0

    def serve(self, requests) -> List[ServedQuery]:
        """Serve one coalesced batch (size 1 = the pass-through path).

        Runs on the gateway's single serving thread; a singleton batch
        uses the agent's direct ``submit`` (no batch bookkeeping at all)
        and larger batches the PR-2 ``submit_batch`` path — both are
        byte-identical to sequential submits in this order.
        """
        queries = [request.query for request in requests]
        self.served_queries.extend(queries)
        self.served_total += len(queries)
        self.batches_total += 1
        if len(queries) == 1:
            return [self.agent.submit(queries[0])]
        return self.agent.submit_batch(queries)

    def stats(self) -> Dict[str, float]:
        stats = {
            "served": float(self.served_total),
            "batches": float(self.batches_total),
        }
        for key, value in self.agent.stats().items():
            stats[key] = value
        return stats


class DeficitRoundRobin:
    """DRR picker over tenants with pending work.

    ``select`` returns ``(tenant, budget)`` — the next backlogged tenant
    in ring order and how many requests its accumulated deficit allows —
    or ``None`` when nothing is pending.  ``charge`` spends the credit a
    dispatch actually used.  Tenants drained empty lose their carryover
    (classic DRR: credit only accumulates while backlogged).
    """

    def __init__(self, quantum: int = 32) -> None:
        require(quantum >= 1, "quantum must be >= 1")
        self.quantum = quantum
        self._ring: Deque[str] = deque()
        self._known: set = set()
        self._deficit: Dict[str, float] = {}

    def observe(self, tenant: str) -> None:
        """Ensure ``tenant`` has a slot in the ring (idempotent)."""
        if tenant not in self._known:
            self._known.add(tenant)
            self._ring.append(tenant)
            self._deficit[tenant] = 0.0

    def select(self, pending: Mapping[str, int]) -> Optional[Tuple[str, int]]:
        for _ in range(len(self._ring)):
            tenant = self._ring[0]
            self._ring.rotate(-1)
            backlog = pending.get(tenant, 0)
            if backlog <= 0:
                self._deficit[tenant] = 0.0
                continue
            self._deficit[tenant] += self.quantum
            budget = int(min(backlog, self._deficit[tenant]))
            if budget >= 1:
                return tenant, budget
        return None

    def charge(self, tenant: str, served: int) -> None:
        if tenant in self._deficit:
            self._deficit[tenant] = max(0.0, self._deficit[tenant] - served)

    def deficits(self) -> Dict[str, float]:
        return dict(self._deficit)
