"""Async multi-tenant serving gateway (DESIGN §14).

One asyncio front door over one :class:`~repro.session.SEASession`:
bounded typed admission, deadline-ordered DRR scheduling with a
starvation guard, adaptive micro-batching that collapses to pure
pass-through at low load, and per-tenant agents (own predictors, own
answer-cache partition) over the shared engine — with every answer
byte-identical to a sequential session serving the same queries in the
gateway's serving order.
"""

from repro.common.errors import AdmissionRejectedError, GatewayClosedError
from repro.serve.admission import AdmissionQueue, Request
from repro.serve.batcher import AdaptiveBatcher
from repro.serve.gateway import GatewayAnswer, GatewayConfig, ServingGateway
from repro.serve.tenant import DeficitRoundRobin, TenantHandle

__all__ = [
    "AdmissionQueue",
    "AdmissionRejectedError",
    "AdaptiveBatcher",
    "DeficitRoundRobin",
    "GatewayAnswer",
    "GatewayClosedError",
    "GatewayConfig",
    "Request",
    "ServingGateway",
    "TenantHandle",
]
