"""Online tuning of the gateway's micro-batching window.

Coalescing concurrent requests into one ``submit_batch`` call is how the
gateway converts PR-2's batched-serving speedup into open-loop goodput —
but a *fixed* batching window is the classic latency foot-gun: at low
load it adds pure waiting to every request, at high load it may be too
short to amortise anything.  :class:`AdaptiveBatcher` tunes the window
online from two windowed-median estimates:

* the **arrival rate** ``lambda`` — arrivals over the *time span* of
  the last ``history`` admitted timestamps, and
* the **per-query service time** ``s`` — median over the last
  ``history`` completed dispatches of host seconds / batch size.

Both estimators are chosen for robustness against the two ways a
single-threaded gateway lies to itself.  Rate over a span, not from
inter-arrival gaps: whenever the event loop stalls (a long inline
serve, a GC pause), pending arrivals wake *clustered* with microsecond
gaps between them, and any gap-based estimate explodes by orders of
magnitude — a feedback loop where the stall convinces the controller
it is overloaded, which causes batching delay, which causes more
clustering.  The window's span is unchanged by how arrivals bunch
inside it.  Median service, not mean: the serving path's service
distribution is wildly bimodal (a predicted answer is ~100x cheaper
than an exact fallback scan), and a single fallback spike must not
masquerade as saturation.

Their product ``rho = lambda * s`` is the offered utilisation of the
single serving loop.  The policy:

* ``rho <= passthrough_rho`` — the loop can keep up serving requests
  one at a time; the window collapses to **zero** and requests pass
  straight through (p50 is never worse than a direct submit, the E24
  low-rate gate);
* above that, the window is the expected time to accumulate a target
  batch of ``ceil(headroom * rho)`` requests at the observed rate,
  clamped to ``[0, max_window]`` — heavier overload grows the batch
  (more amortisation per call) while the clamp bounds the queueing
  delay batching itself can add.

An arrival after more than ``max_gap`` of silence resets the rate
window (a new burst episode, not a continuation), so one idle night
does not poison the estimate for the first burst after it.  Estimates
are recomputed lazily (at most once per ``refresh`` observations) so
they sit off the per-request hot path.
"""

from __future__ import annotations

import math
import statistics
from collections import deque
from typing import Deque

from repro.common.validation import require


class AdaptiveBatcher:
    """Windowed-median batching controller for the serve loop."""

    def __init__(
        self,
        max_window: float = 0.02,
        passthrough_rho: float = 0.75,
        headroom: float = 2.0,
        history: int = 32,
        refresh: int = 8,
        max_gap: float = 1.0,
    ) -> None:
        require(max_window >= 0.0, "max_window must be >= 0")
        require(0.0 < passthrough_rho, "passthrough_rho must be positive")
        require(headroom >= 1.0, "headroom must be >= 1")
        require(history >= 2, "history must be >= 2")
        require(refresh >= 1, "refresh must be >= 1")
        self.max_window = max_window
        self.passthrough_rho = passthrough_rho
        self.headroom = headroom
        self.max_gap = max_gap
        self._arrivals: Deque[float] = deque(maxlen=history)
        self._services: Deque[float] = deque(maxlen=history)
        self._refresh = refresh
        self._notes_since_refresh = 0
        self._rate = 0.0
        self._service = 0.0
        self.n_arrivals = 0
        self.n_batches = 0

    # Online observations ----------------------------------------------------
    def note_arrival(self, now: float) -> None:
        """Feed one admitted arrival timestamp into the rate window."""
        self.n_arrivals += 1
        if self._arrivals and now - self._arrivals[-1] > self.max_gap:
            self._arrivals.clear()  # new burst episode after idleness
        self._arrivals.append(now)
        self._note()

    def note_batch(self, size: int, host_seconds: float) -> None:
        """Feed one completed dispatch's per-query service time."""
        if size <= 0:
            return
        self.n_batches += 1
        self._services.append(max(host_seconds, 0.0) / size)
        self._note()

    def _note(self) -> None:
        self._notes_since_refresh += 1
        if self._notes_since_refresh >= self._refresh:
            self._recompute()

    def _recompute(self) -> None:
        self._notes_since_refresh = 0
        if len(self._arrivals) >= 2:
            span = max(self._arrivals[-1] - self._arrivals[0], 1e-9)
            self._rate = (len(self._arrivals) - 1) / span
        if self._services:
            self._service = statistics.median(self._services)

    # Estimates --------------------------------------------------------------
    @property
    def arrival_rate(self) -> float:
        """Requests/second (0.0 until two arrivals have been seen)."""
        return self._rate

    @property
    def service_seconds(self) -> float:
        """Median per-query service time (0.0 until a dispatch completed)."""
        return self._service

    @property
    def rho(self) -> float:
        """Offered utilisation of the serving loop (rate x service)."""
        return self._rate * self._service

    def target_batch(self) -> int:
        """How many requests one dispatch should try to coalesce."""
        rho = self.rho
        if rho <= self.passthrough_rho:
            return 1
        return max(1, int(math.ceil(self.headroom * rho)))

    def window(self) -> float:
        """Seconds the serve loop should wait to let a batch form.

        Zero (pure pass-through) whenever the loop is keeping up; at
        overload, the expected accumulation time of the target batch,
        clamped so batching never adds more than ``max_window`` of
        deliberate delay.
        """
        target = self.target_batch()
        if target <= 1:
            return 0.0
        if self._rate <= 0.0:
            return 0.0
        return min(self.max_window, (target - 1) / self._rate)

    def snapshot(self) -> dict:
        self._recompute()
        return {
            "arrival_rate": self.arrival_rate,
            "service_seconds": self.service_seconds,
            "rho": self.rho,
            "window": self.window(),
            "target_batch": self.target_batch(),
            "n_arrivals": self.n_arrivals,
            "n_batches": self.n_batches,
        }
