"""Failover policy: retry with capped exponential backoff, then fail over.

The recovery protocol every engine threads its metered reads through when
a :class:`~repro.faults.injector.FaultInjector` is attached to the store:

1. order the partition's replicas by *preference* — the primary first for
   scan-style reads (matching the no-fault read path), or purely by
   least-served-bytes for point reads (matching ``pick_replica``'s load
   balancing);
2. every *down* replica ahead of the first live one costs a timed-out
   liveness probe (a small metered message from the requesting node plus
   ``detect_timeout_sec`` of latency) — dead nodes are discovered, not
   known for free;
3. on the serving replica, a :class:`TransientReadError` is retried up to
   ``max_attempts`` times with capped exponential backoff; the failed
   attempt's scan bytes stay charged (that *is* the retry overhead) and
   the backoff waits extend the task's latency;
4. a replica that exhausts its attempts is abandoned for the next live
   candidate — a *failover hop*, charged as a re-dispatched request and
   counted in ``fault_failovers_total``;
5. when no live replica remains (or every one exhausted its retries) the
   read raises :class:`~repro.common.errors.PartitionLostError`.

Every hop and retry is charged to the caller's
:class:`~repro.common.CostMeter` and surfaced through :mod:`repro.obs`
as ``fault_*`` counters, ``failover`` decision events, and retry spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.common.accounting import CostMeter
from repro.common.errors import (
    NodeUnavailableError,
    PartitionLostError,
    TransientReadError,
)
from repro.common.validation import require
from repro.obs.observer import NULL_OBSERVER, Observer

#: Payload of a liveness probe / re-dispatched read request.
_PROBE_BYTES = 64

#: Replica preference orders.
PREFER_PRIMARY = "primary"
PREFER_BALANCED = "balanced"


@dataclass(frozen=True)
class FailoverPolicy:
    """Tunable retry/backoff/failover knobs (shared by all engines)."""

    max_attempts: int = 3  # read attempts per replica (1 + retries)
    backoff_base_sec: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap_sec: float = 1.0
    detect_timeout_sec: float = 0.25  # latency of discovering a dead node

    def __post_init__(self) -> None:
        require(self.max_attempts >= 1, "max_attempts must be >= 1")
        require(self.backoff_base_sec >= 0.0, "backoff_base_sec must be >= 0")
        require(self.backoff_factor >= 1.0, "backoff_factor must be >= 1")
        require(self.backoff_cap_sec >= 0.0, "backoff_cap_sec must be >= 0")
        require(self.detect_timeout_sec >= 0.0, "detect_timeout_sec must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Wait before retry number ``attempt`` (0-based), capped."""
        return min(
            self.backoff_cap_sec,
            self.backoff_base_sec * self.backoff_factor**attempt,
        )

    # Replica ordering ------------------------------------------------------
    def preference(self, store, partition, prefer: str = PREFER_PRIMARY) -> List[str]:
        """All replicas (live or not) in the order reads would try them.

        ``primary``: the primary first (the no-fault scan target), then
        the replicas least-loaded first.  ``balanced``: every replica by
        served-bytes load, ties in placement order — element 0 is exactly
        what ``pick_replica`` returns when everything is up.
        """
        nodes = partition.all_nodes
        if prefer == PREFER_PRIMARY:
            replicas = sorted(nodes[1:], key=store.served_bytes)
            return [nodes[0]] + replicas
        return sorted(nodes, key=store.served_bytes)

    # Failure-aware reads ---------------------------------------------------
    def read_partition(
        self,
        store,
        partition,
        meter: CostMeter,
        requester: Optional[str] = None,
        obs: Observer = NULL_OBSERVER,
        prefer: str = PREFER_PRIMARY,
        columns=None,
    ):
        """Scan ``partition`` from the best live replica.

        Returns ``(data, serving_node, extra_seconds)`` where
        ``extra_seconds`` is the fault-handling latency (probe timeouts,
        backoff waits, re-dispatch transfers) the caller adds to the
        task's critical-path time.  Raises :class:`PartitionLostError`
        when no replica can serve.  With ``columns`` the read is a
        column-pruned encoded scan (``store.read_columns``) instead of a
        full partition read — same probe/retry/failover protocol, only
        the projected columns' encoded bytes are charged.
        """
        if columns is not None:
            attempt_fn = lambda node: store.read_columns(  # noqa: E731
                partition, columns, meter, node_id=node
            )
        else:
            attempt_fn = lambda node: store.read_partition(  # noqa: E731
                partition, meter, node_id=node
            )
        return self._read(
            store, partition, meter, requester, obs, prefer, attempt_fn
        )

    def read_rows(
        self,
        store,
        partition,
        row_indices,
        meter: CostMeter,
        requester: Optional[str] = None,
        obs: Observer = NULL_OBSERVER,
        prefer: str = PREFER_BALANCED,
        materialize: bool = True,
    ):
        """Point-read ``row_indices`` of ``partition`` with failover.

        Returns ``(rows_or_None, serving_node, extra_seconds)``; the rows
        are ``None`` when ``materialize=False`` (batched fetches that
        replay charges against a shared read).
        """
        idx = np.asarray(row_indices, dtype=int)
        return self._read(
            store,
            partition,
            meter,
            requester,
            obs,
            prefer,
            lambda node: store.read_rows(
                partition, idx, meter, node_id=node, materialize=materialize
            ),
        )

    # Core protocol ---------------------------------------------------------
    def _read(self, store, partition, meter, requester, obs, prefer, attempt_fn):
        faults = store.faults
        if faults is None or not faults.active:
            # No injector: behave exactly like the direct read path.
            node = partition.primary_node if prefer == PREFER_PRIMARY else (
                store.pick_replica(partition)
            )
            return attempt_fn(node), node, 0.0

        order = self.preference(store, partition, prefer)
        extra = 0.0
        # Dead preferred replicas are *discovered*: each costs one timed-out
        # probe from the requester before the read lands on a live node.
        first_live = None
        for node in order:
            if not faults.is_down(node):
                first_live = node
                break
            extra += self._charge_probe(store, meter, requester, node, obs)
        if first_live is None:
            self._note_lost(obs, partition, order)
            raise PartitionLostError(partition.partition_id, tried=order)

        live = [n for n in order if not faults.is_down(n)]
        for position, node in enumerate(live):
            if position > 0:
                # Failover hop: re-dispatch the read request to the next
                # candidate after the previous replica exhausted retries.
                extra += self._charge_probe(store, meter, requester, node, obs)
            for attempt in range(self.max_attempts):
                try:
                    result = attempt_fn(node)
                except TransientReadError:
                    wait = self.backoff(attempt)
                    extra += wait
                    if obs.enabled:
                        obs.inc("fault_retries_total", node=node)
                        obs.profile_note("retry", node=node)
                        obs.record_span(
                            f"retry:{partition.partition_id}",
                            obs.now,
                            wait,
                            category="fault",
                            track=node,
                            attempt=attempt + 1,
                        )
                    continue
                except NodeUnavailableError:
                    # Crashed between liveness listing and the read.
                    extra += self.detect_timeout_sec
                    break
                if node != order[0] and obs.enabled:
                    obs.inc("fault_failovers_total", node=node)
                    obs.profile_note("failover", serving=node)
                    obs.event(
                        "failover",
                        partition=partition.partition_id,
                        preferred=order[0],
                        serving=node,
                        attempts=attempt + 1,
                    )
                return result, node, extra
        self._note_lost(obs, partition, order)
        raise PartitionLostError(partition.partition_id, tried=order)

    def _charge_probe(self, store, meter, requester, node, obs) -> float:
        """One timed-out probe / re-dispatch toward ``node``; returns latency."""
        seconds = self.detect_timeout_sec
        if requester is not None:
            seconds += meter.charge_transfer(
                requester,
                node,
                _PROBE_BYTES,
                wan=store.topology.is_wan(requester, node),
            )
        if obs.enabled:
            obs.inc("fault_probes_total", node=node)
            obs.profile_note("probe", node=node)
        return seconds

    @staticmethod
    def _note_lost(obs: Observer, partition, order) -> None:
        if obs.enabled:
            obs.inc("fault_partitions_lost_total")
            obs.profile_note("lost", partition=partition.partition_id)
            obs.event(
                "partition_lost",
                partition=partition.partition_id,
                replicas=list(order),
            )
