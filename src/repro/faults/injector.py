"""The fault injector: a seeded, clocked interpreter of a fault schedule.

One :class:`FaultInjector` attaches to a
:class:`~repro.cluster.storage.DistributedStore` via ``attach_faults``.
From then on every metered read consults it:

* a read routed to a *down* node raises
  :class:`~repro.common.errors.NodeUnavailableError` **before** any cost
  is charged (a dead node refuses the connection — it serves no bytes,
  which is what keeps failover byte-identical to the no-fault run);
* a read served by a *flaky* node draws from the injector's seeded RNG
  **after** the charge and raises
  :class:`~repro.common.errors.TransientReadError` with the node's
  configured probability (the failed attempt's bytes are the visible
  retry overhead);
* a *straggler* node reports a slowdown multiplier engines apply to
  their disk-time term.

The injector owns its own simulated clock (independent of any one
query's :class:`~repro.common.CostMeter`, which restarts per execution):
``advance`` moves time forward and fires crash/recover events for every
schedule window boundary crossed.  ``crash``/``recover`` override the
schedule manually — an explicit ``recover`` cancels even an open-ended
scheduled window.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set

from repro.common.errors import NodeUnavailableError, TransientReadError
from repro.common.rng import SeedLike, make_rng
from repro.common.validation import require
from repro.faults.schedule import FaultSchedule
from repro.obs.observer import NULL_OBSERVER, Observer


class FaultInjector:
    """Deterministic interpreter of one :class:`FaultSchedule`."""

    def __init__(
        self,
        schedule: Optional[FaultSchedule] = None,
        seed: SeedLike = 0,
        observer: Optional[Observer] = None,
    ) -> None:
        self.schedule = schedule or FaultSchedule()
        self._rng = make_rng(seed)
        self.observer = observer or NULL_OBSERVER
        self.now = 0.0
        # Manual overrides win over the schedule.
        self._forced_down: Set[str] = set()
        self._forced_up: Set[str] = set()
        # Counters (also mirrored to the observer as fault_* metrics).
        self.n_unavailable = 0
        self.n_transient = 0
        # Reentrant: advance/crash/recover call is_down/_note_* internally.
        # Guards the clock, the forced sets, the RNG stream, and the
        # counters so concurrent readers (repro.parallel keeps injector
        # hooks on the calling thread, but a shared injector may still be
        # consulted from several sessions) never tear state or split an
        # RNG draw.
        self._lock = threading.RLock()

    def attach_observer(self, observer: Observer) -> None:
        """Emit crash/recover events and fault counters on ``observer``."""
        self.observer = observer

    # Clock -----------------------------------------------------------------
    def advance(self, seconds: float) -> float:
        """Advance the injector clock, firing window-boundary events."""
        require(seconds >= 0.0, f"cannot advance time by {seconds}")
        with self._lock:
            before = self.now
            self.now = before + seconds
            if self.observer.enabled:
                for window in self.schedule.crashes:
                    if before < window.start <= self.now:
                        self._note_down(window.node_id, at=window.start)
                    if before < window.end <= self.now:
                        self._note_up(window.node_id, at=window.end)
            return self.now

    def set_time(self, at: float) -> float:
        """Jump the clock to ``at`` (forward only)."""
        with self._lock:
            require(at >= self.now, f"clock cannot go back ({self.now} -> {at})")
            return self.advance(at - self.now)

    # Manual control --------------------------------------------------------
    def crash(self, node_id: str) -> None:
        """Force ``node_id`` down now, regardless of the schedule."""
        with self._lock:
            self._forced_up.discard(node_id)
            if node_id not in self._forced_down:
                self._forced_down.add(node_id)
                self._note_down(node_id, at=self.now)

    def recover(self, node_id: str) -> None:
        """Force ``node_id`` up now, cancelling any open crash window."""
        with self._lock:
            self._forced_down.discard(node_id)
            if self.is_down(node_id):
                self._forced_up.add(node_id)
                self._note_up(node_id, at=self.now)
            else:
                self._forced_up.add(node_id)

    # State queries ---------------------------------------------------------
    def is_down(self, node_id: str) -> bool:
        with self._lock:
            if node_id in self._forced_down:
                return True
            if node_id in self._forced_up:
                return False
            return self.schedule.down_at(node_id, self.now)

    def down_nodes(self, node_ids) -> List[str]:
        """The subset of ``node_ids`` currently down (input order)."""
        return [n for n in node_ids if self.is_down(n)]

    def slowdown(self, node_id: str) -> float:
        """Disk-time multiplier for ``node_id`` (1.0 when healthy)."""
        return self.schedule.slowdowns.get(node_id, 1.0)

    @property
    def active(self) -> bool:
        """True iff the injector can currently affect any read."""
        return bool(self._forced_down) or self.schedule.touches

    # Read-path hooks (called by DistributedStore) --------------------------
    def check_available(self, node_id: str, partition_id: str = "") -> None:
        """Raise :class:`NodeUnavailableError` if ``node_id`` is down."""
        with self._lock:
            if not self.is_down(node_id):
                return
            self.n_unavailable += 1
            if self.observer.enabled:
                self.observer.inc("fault_unavailable_reads_total", node=node_id)
        raise NodeUnavailableError(node_id, partition_id)

    def maybe_fail_read(self, node_id: str, partition_id: str = "") -> None:
        """Draw one seeded transient failure for a served read attempt."""
        rate = self.schedule.error_rates.get(node_id)
        if not rate:
            return
        with self._lock:
            failed = self._rng.random() < rate
            if failed:
                self.n_transient += 1
                if self.observer.enabled:
                    self.observer.inc(
                        "fault_transient_errors_total", node=node_id
                    )
        if failed:
            raise TransientReadError(node_id, partition_id)

    # Internals -------------------------------------------------------------
    def _note_down(self, node_id: str, at: float) -> None:
        if self.observer.enabled:
            self.observer.inc("fault_node_crashes_total", node=node_id)
            self.observer.event("node_crash", node=node_id, at=at)

    def _note_up(self, node_id: str, at: float) -> None:
        if self.observer.enabled:
            self.observer.inc("fault_node_recoveries_total", node=node_id)
            self.observer.event("node_recover", node=node_id, at=at)
