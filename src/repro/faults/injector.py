"""The fault injector: a seeded, clocked interpreter of a fault schedule.

One :class:`FaultInjector` attaches to a
:class:`~repro.cluster.storage.DistributedStore` via ``attach_faults``.
From then on every metered read consults it:

* a read routed to a *down* node raises
  :class:`~repro.common.errors.NodeUnavailableError` **before** any cost
  is charged (a dead node refuses the connection — it serves no bytes,
  which is what keeps failover byte-identical to the no-fault run);
* a read served by a *flaky* node draws from the injector's seeded RNG
  **after** the charge and raises
  :class:`~repro.common.errors.TransientReadError` with the node's
  configured probability (the failed attempt's bytes are the visible
  retry overhead);
* a *straggler* node reports a slowdown multiplier engines apply to
  their disk-time term.

The injector owns its own simulated clock (independent of any one
query's :class:`~repro.common.CostMeter`, which restarts per execution):
``advance`` moves time forward and fires crash/recover events for every
schedule window boundary crossed.  ``crash``/``recover`` override the
schedule manually — an explicit ``recover`` cancels even an open-ended
scheduled window.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set

from repro.common.errors import (
    NodeUnavailableError,
    TransientReadError,
    WriteCrashError,
    WriteError,
)
from repro.common.rng import SeedLike, make_rng
from repro.common.validation import require
from repro.faults.schedule import FaultSchedule
from repro.obs.observer import NULL_OBSERVER, Observer


class FaultInjector:
    """Deterministic interpreter of one :class:`FaultSchedule`."""

    def __init__(
        self,
        schedule: Optional[FaultSchedule] = None,
        seed: SeedLike = 0,
        observer: Optional[Observer] = None,
    ) -> None:
        self.schedule = schedule or FaultSchedule()
        self._rng = make_rng(seed)
        self.observer = observer or NULL_OBSERVER
        self.now = 0.0
        # Manual overrides win over the schedule.
        self._forced_down: Set[str] = set()
        self._forced_up: Set[str] = set()
        # Counters (also mirrored to the observer as fault_* metrics).
        self.n_unavailable = 0
        self.n_transient = 0
        # Write-path fault arming: crash windows fire once at the Nth
        # hit of a named point; transient write faults fail the next
        # ``count`` hits of a point and then clear.
        self._write_crashes: Dict[str, int] = {}
        self._write_faults: Dict[str, int] = {}
        self.n_write_faults = 0
        self.n_write_crashes = 0
        # Reentrant: advance/crash/recover call is_down/_note_* internally.
        # Guards the clock, the forced sets, the RNG stream, and the
        # counters so concurrent readers (repro.parallel keeps injector
        # hooks on the calling thread, but a shared injector may still be
        # consulted from several sessions) never tear state or split an
        # RNG draw.
        self._lock = threading.RLock()

    def attach_observer(self, observer: Observer) -> None:
        """Emit crash/recover events and fault counters on ``observer``."""
        self.observer = observer

    # Clock -----------------------------------------------------------------
    def advance(self, seconds: float) -> float:
        """Advance the injector clock, firing window-boundary events."""
        require(seconds >= 0.0, f"cannot advance time by {seconds}")
        with self._lock:
            before = self.now
            self.now = before + seconds
            if self.observer.enabled:
                for window in self.schedule.crashes:
                    if before < window.start <= self.now:
                        self._note_down(window.node_id, at=window.start)
                    if before < window.end <= self.now:
                        self._note_up(window.node_id, at=window.end)
            return self.now

    def set_time(self, at: float) -> float:
        """Jump the clock to ``at`` (forward only)."""
        with self._lock:
            require(at >= self.now, f"clock cannot go back ({self.now} -> {at})")
            return self.advance(at - self.now)

    # Manual control --------------------------------------------------------
    def crash(self, node_id: str) -> None:
        """Force ``node_id`` down now, regardless of the schedule."""
        with self._lock:
            self._forced_up.discard(node_id)
            if node_id not in self._forced_down:
                self._forced_down.add(node_id)
                self._note_down(node_id, at=self.now)

    def recover(self, node_id: str) -> None:
        """Force ``node_id`` up now, cancelling any open crash window."""
        with self._lock:
            self._forced_down.discard(node_id)
            if self.is_down(node_id):
                self._forced_up.add(node_id)
                self._note_up(node_id, at=self.now)
            else:
                self._forced_up.add(node_id)

    # State queries ---------------------------------------------------------
    def is_down(self, node_id: str) -> bool:
        with self._lock:
            if node_id in self._forced_down:
                return True
            if node_id in self._forced_up:
                return False
            return self.schedule.down_at(node_id, self.now)

    def down_nodes(self, node_ids) -> List[str]:
        """The subset of ``node_ids`` currently down (input order)."""
        return [n for n in node_ids if self.is_down(n)]

    def slowdown(self, node_id: str) -> float:
        """Disk-time multiplier for ``node_id`` (1.0 when healthy)."""
        return self.schedule.slowdowns.get(node_id, 1.0)

    @property
    def active(self) -> bool:
        """True iff the injector can currently affect any read."""
        return bool(self._forced_down) or self.schedule.touches

    # Read-path hooks (called by DistributedStore) --------------------------
    def check_available(self, node_id: str, partition_id: str = "") -> None:
        """Raise :class:`NodeUnavailableError` if ``node_id`` is down."""
        with self._lock:
            if not self.is_down(node_id):
                return
            self.n_unavailable += 1
            if self.observer.enabled:
                self.observer.inc("fault_unavailable_reads_total", node=node_id)
        raise NodeUnavailableError(node_id, partition_id)

    def maybe_fail_read(self, node_id: str, partition_id: str = "") -> None:
        """Draw one seeded transient failure for a served read attempt."""
        rate = self.schedule.error_rates.get(node_id)
        if not rate:
            return
        with self._lock:
            failed = self._rng.random() < rate
            if failed:
                self.n_transient += 1
                if self.observer.enabled:
                    self.observer.inc(
                        "fault_transient_errors_total", node=node_id
                    )
        if failed:
            raise TransientReadError(node_id, partition_id)

    # Write-path hooks (called by the ingest pipeline) ----------------------
    def arm_write_crash(self, point: str, hits: int = 1) -> None:
        """Crash the simulated process at the ``hits``-th hit of ``point``.

        Known points: ``"wal_record"`` (mid-WAL-record), ``"delta_append"``
        (mid-append, after logging but before the delta apply completes)
        and ``"compaction"`` (mid-compaction, between per-partition
        checkpoint writes).  One-shot: the window disarms when it fires.
        """
        require(hits >= 1, f"crash window needs hits >= 1, got {hits}")
        with self._lock:
            self._write_crashes[point] = hits

    def inject_write_faults(self, point: str, count: int = 1) -> None:
        """Fail the next ``count`` hits of ``point`` with a transient
        :class:`WriteError` (the compactor's retry loop absorbs these)."""
        require(count >= 1, f"fault count must be >= 1, got {count}")
        with self._lock:
            self._write_faults[point] = count

    def check_write(self, point: str, detail: str = "") -> None:
        """One write-path fault-point hit: crash, fail transiently, or pass."""
        with self._lock:
            hits = self._write_crashes.get(point)
            if hits is not None:
                if hits <= 1:
                    del self._write_crashes[point]
                    self.n_write_crashes += 1
                    if self.observer.enabled:
                        self.observer.inc(
                            "fault_write_crashes_total", point=point
                        )
                        self.observer.event(
                            "write_crash", point=point, at=self.now
                        )
                    raise WriteCrashError(point, detail)
                self._write_crashes[point] = hits - 1
            remaining = self._write_faults.get(point, 0)
            if remaining > 0:
                if remaining == 1:
                    del self._write_faults[point]
                else:
                    self._write_faults[point] = remaining - 1
                self.n_write_faults += 1
                if self.observer.enabled:
                    self.observer.inc("fault_write_faults_total", point=point)
                raise WriteError(point, detail)

    def torn_cut(self, n_bytes: int) -> int:
        """Seeded length of the torn fragment of an in-flight WAL record.

        Strictly inside ``[1, n_bytes - 1]`` so a crash mid-record always
        leaves a detectable partial frame (never a clean boundary, never
        nothing) — the shape torn-tail detection exists to discard.
        """
        require(n_bytes >= 2, f"record too small to tear ({n_bytes} bytes)")
        with self._lock:
            return int(self._rng.integers(1, n_bytes))

    @property
    def write_faults_armed(self) -> bool:
        """True iff any write-path crash window or transient fault is armed."""
        with self._lock:
            return bool(self._write_crashes) or bool(self._write_faults)

    # Internals -------------------------------------------------------------
    def _note_down(self, node_id: str, at: float) -> None:
        if self.observer.enabled:
            self.observer.inc("fault_node_crashes_total", node=node_id)
            self.observer.event("node_crash", node=node_id, at=at)

    def _note_up(self, node_id: str, at: float) -> None:
        if self.observer.enabled:
            self.observer.inc("fault_node_recoveries_total", node=node_id)
            self.observer.event("node_recover", node=node_id, at=at)
