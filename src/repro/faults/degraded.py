"""Degraded answers: serve from survivors, bound what the dead could add.

When every replica of a partition is down, ``degrade`` mode answers from
the surviving replicas plus the *zone-map synopses* of the lost
partitions.  The result is a :class:`DegradedAnswer`:

* ``value`` — the aggregate merged over everything still reachable
  (surviving partitions, plus lost partitions whose contribution the
  synopsis recovers *exactly* — provably disjoint from the selection, or
  fully covered by a box-exact selection with a decomposable aggregate);
* ``coverage`` — the exact fraction of the table's rows whose
  contribution is fully accounted for (``1 - unknown_rows / n_rows``);
* ``lower``/``upper`` — deterministic bounds on the true answer, derived
  from each unknown partition's row count and per-column min/max clipped
  to the selection's bounding box.  The bounds are sound, not
  statistical: the true (no-fault) answer always lies inside them.

Bound derivations per aggregate, with ``v`` the merged survivor value
and each unknown chunk holding ``n`` rows with aggregate-column values
in ``[mn, mx]`` (clipped to the selection box — every selected row lies
inside the box, so the clip is loss-free):

* ``count``  — unknown chunks match between 0 and ``n`` rows each:
  ``[v, v + Σ n_i]``.
* ``sum``    — each chunk adds between ``min(0, n·mn)`` and
  ``max(0, n·mx)``: summed per chunk.  A chunk whose clipped interval is
  empty cannot contribute (bounds collapse to 0).
* ``mean``   — the combined mean is a convex mix of ``v`` and unknown
  values: ``[min(v, min_i mn_i), max(v, max_i mx_i)]``.
* ``min``/``max`` — unknown rows can only pull the extremum one way:
  ``[min(v, mn_all), v]`` and ``[v, max(v, mx_all)]``.
* everything else (std/var, holistic, cross-column) — no sound bound
  from zone maps alone: ``bounded=False`` with infinite bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.queries.aggregates import Aggregate, Count, Max, Mean, Min, Sum
from repro.queries.selections import Selection

_INF = math.inf


@dataclass(frozen=True)
class UnknownChunk:
    """What is still known about rows whose values are unreachable."""

    n_rows: int
    #: column -> (min, max) over the chunk's rows (zone-map statistics).
    stats: Mapping[str, Tuple[float, float]]

    @classmethod
    def from_synopsis(cls, synopsis) -> "UnknownChunk":
        return cls(
            n_rows=synopsis.n_rows,
            stats={
                name: (s.minimum, s.maximum)
                for name, s in synopsis.columns.items()
            },
        )

    def column_range(
        self, column: str, selection: Optional[Selection]
    ) -> Tuple[float, float]:
        """The chunk's value range for ``column``, clipped to the box."""
        mn, mx = self.stats.get(column, (-_INF, _INF))
        if selection is not None and column in selection.columns:
            lows, highs = selection.box()
            i = selection.columns.index(column)
            mn = max(mn, float(lows[i]))
            mx = min(mx, float(highs[i]))
        return mn, mx


@dataclass(frozen=True)
class DegradedAnswer:
    """An answer assembled under partition loss, with exact provenance."""

    value: Any
    coverage: float  # exact fraction of table rows fully accounted for
    lower: float
    upper: float
    bounded: bool  # True iff lower/upper are finite sound bounds
    lost_partitions: Tuple[int, ...]  # every partition with no live replica
    unknown_partitions: Tuple[int, ...]  # the subset not recovered exactly
    unknown_rows: int

    @property
    def degraded(self) -> bool:
        return bool(self.lost_partitions)

    @property
    def margin(self) -> float:
        """Half-width of the bound interval (inf when unbounded)."""
        return (self.upper - self.lower) / 2.0

    def contains(self, true_value: float) -> bool:
        """Whether the no-fault answer lies inside the bounds."""
        return self.lower <= float(true_value) <= self.upper

    def __repr__(self) -> str:
        return (
            f"DegradedAnswer(value={self.value!r}, coverage={self.coverage:.4f}, "
            f"bounds=[{self.lower:.6g}, {self.upper:.6g}], "
            f"lost={list(self.lost_partitions)})"
        )


def degraded_bounds(
    aggregate: Aggregate,
    selection: Optional[Selection],
    value: Any,
    chunks: Sequence[UnknownChunk],
) -> Tuple[float, float, bool]:
    """Sound ``(lower, upper, bounded)`` for ``value`` + unknown ``chunks``."""
    if not chunks:
        v = _as_float(value)
        if v is None:
            return -_INF, _INF, False
        return v, v, True
    kind = type(aggregate)
    v = _as_float(value)
    if v is None:
        return -_INF, _INF, False
    if kind is Count:
        return v, v + float(sum(c.n_rows for c in chunks)), True
    column = getattr(aggregate, "column", None)
    if column is None:
        return -_INF, _INF, False
    ranges = [c.column_range(column, selection) for c in chunks]
    if kind is Sum:
        lo, hi = v, v
        for (mn, mx), chunk in zip(ranges, chunks):
            if mn > mx:  # clipped empty: no row of this chunk can match
                continue
            lo += min(0.0, chunk.n_rows * mn)
            hi += max(0.0, chunk.n_rows * mx)
        return lo, hi, math.isfinite(lo) and math.isfinite(hi)
    feasible = [(mn, mx) for mn, mx in ranges if mn <= mx]
    mn_all = min((mn for mn, _ in feasible), default=_INF)
    mx_all = max((mx for _, mx in feasible), default=-_INF)
    if kind is Mean:
        lo, hi = min(v, mn_all), max(v, mx_all)
        return lo, hi, math.isfinite(lo) and math.isfinite(hi)
    if kind is Min:
        lo = min(v, mn_all)
        return lo, v, math.isfinite(lo) and math.isfinite(v)
    if kind is Max:
        hi = max(v, mx_all)
        return v, hi, math.isfinite(v) and math.isfinite(hi)
    return -_INF, _INF, False


def build_degraded_answer(
    aggregate: Aggregate,
    selection: Optional[Selection],
    value: Any,
    chunks: Sequence[UnknownChunk],
    lost_partitions: Sequence[int],
    unknown_partitions: Sequence[int],
    total_rows: int,
) -> DegradedAnswer:
    """Assemble a :class:`DegradedAnswer` with exact coverage accounting."""
    unknown_rows = int(sum(c.n_rows for c in chunks))
    coverage = 1.0 - (unknown_rows / total_rows if total_rows > 0 else 0.0)
    lower, upper, bounded = degraded_bounds(aggregate, selection, value, chunks)
    return DegradedAnswer(
        value=value,
        coverage=coverage,
        lower=lower,
        upper=upper,
        bounded=bounded,
        lost_partitions=tuple(sorted(lost_partitions)),
        unknown_partitions=tuple(sorted(unknown_partitions)),
        unknown_rows=unknown_rows,
    )


def _as_float(value: Any) -> Optional[float]:
    try:
        return float(value)
    except (TypeError, ValueError):
        return None
