"""Declarative fault schedules: *what* goes wrong, *when*, on *which* node.

A :class:`FaultSchedule` (alias :data:`InjectionPlan`) is pure data — no
clock, no randomness.  It lists:

* :class:`CrashWindow` entries — ``[start, end)`` intervals of the
  simulated clock during which a node is down (``end=inf`` means the node
  never recovers on its own);
* per-node *slowdown multipliers* — stragglers whose disk reads take
  ``factor`` times longer than the cost model's nominal rate;
* per-node *transient read-error rates* — the probability that any one
  read attempt served by the node fails after the bytes were charged.

The schedule is interpreted by a :class:`~repro.faults.injector.FaultInjector`,
which owns the clock and the seeded randomness; the same schedule + the
same seed + the same call sequence always reproduces the same faults.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.common.validation import require

INFINITY = math.inf


@dataclass(frozen=True)
class CrashWindow:
    """One node-down interval ``[start, end)`` on the simulated clock."""

    node_id: str
    start: float = 0.0
    end: float = INFINITY

    def __post_init__(self) -> None:
        require(self.start >= 0.0, f"crash start must be >= 0, got {self.start}")
        require(
            self.end > self.start,
            f"crash window must end after it starts ({self.start} .. {self.end})",
        )

    def covers(self, at: float) -> bool:
        return self.start <= at < self.end


@dataclass
class FaultSchedule:
    """A full injection plan: crash windows, stragglers, flaky readers."""

    crashes: List[CrashWindow] = field(default_factory=list)
    slowdowns: Dict[str, float] = field(default_factory=dict)
    error_rates: Dict[str, float] = field(default_factory=dict)

    # Builders --------------------------------------------------------------
    def crash(
        self, node_id: str, at: float = 0.0, until: float = INFINITY
    ) -> "FaultSchedule":
        """Schedule ``node_id`` down during ``[at, until)``; chainable."""
        self.crashes.append(CrashWindow(node_id, at, until))
        return self

    def slow(self, node_id: str, factor: float) -> "FaultSchedule":
        """Make ``node_id`` a straggler: disk reads take ``factor``× longer."""
        require(factor >= 1.0, f"slowdown factor must be >= 1, got {factor}")
        self.slowdowns[node_id] = float(factor)
        return self

    def flaky(self, node_id: str, rate: float) -> "FaultSchedule":
        """Give ``node_id`` a per-attempt transient read-error probability."""
        require(0.0 <= rate < 1.0, f"error rate must be in [0, 1), got {rate}")
        self.error_rates[node_id] = float(rate)
        return self

    # Queries ---------------------------------------------------------------
    def down_at(self, node_id: str, at: float) -> bool:
        """True iff some crash window of ``node_id`` covers time ``at``."""
        return any(
            w.node_id == node_id and w.covers(at) for w in self.crashes
        )

    def nodes_down_at(self, at: float) -> List[str]:
        """Distinct node ids down at time ``at`` (schedule order)."""
        seen: Dict[str, None] = {}
        for w in self.crashes:
            if w.covers(at):
                seen.setdefault(w.node_id, None)
        return list(seen)

    @property
    def touches(self) -> bool:
        """True iff the schedule injects anything at all."""
        return bool(self.crashes or self.slowdowns or self.error_rates)

    @staticmethod
    def crash_fraction(
        node_ids: Sequence[str], fraction: float, at: float = 0.0
    ) -> "FaultSchedule":
        """A schedule crashing the first ``floor(fraction * N)`` nodes.

        Deterministic given the node order — benchmark sweeps pass the
        topology's node list (already shuffled by placement seeds).
        """
        require(0.0 <= fraction <= 1.0, f"fraction must be in [0, 1], got {fraction}")
        schedule = FaultSchedule()
        for node_id in list(node_ids)[: int(fraction * len(node_ids))]:
            schedule.crash(node_id, at=at)
        return schedule


#: The name the paper-facing docs use for a fault schedule.
InjectionPlan = FaultSchedule
