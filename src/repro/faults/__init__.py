"""Deterministic fault injection for the simulated SEA cluster.

The paper's availability claim (Sec. III.B) — a data-less agent keeps
answering when base data is unreachable — needs a failure model to be
measurable.  This package provides one, threaded through the whole stack:

* :class:`~repro.faults.schedule.FaultSchedule` (alias ``InjectionPlan``)
  — declarative crash windows, straggler slowdowns, transient-error
  rates;
* :class:`~repro.faults.injector.FaultInjector` — the seeded, clocked
  interpreter a :class:`~repro.cluster.DistributedStore` consults on
  every metered read (``store.attach_faults(injector)``);
* :class:`~repro.faults.policy.FailoverPolicy` — retry with capped
  exponential backoff, then replica failover honoring ``pick_replica``
  load balancing, every hop charged to the
  :class:`~repro.common.CostMeter`;
* :class:`~repro.faults.degraded.DegradedAnswer` — what ``degrade`` mode
  engines return when partitions are truly lost: survivors' value, an
  exact coverage fraction, and deterministic error bounds from zone-map
  synopses.

Typed failures live in :mod:`repro.common.errors` —
``NodeUnavailableError`` (dead node, nothing charged),
``TransientReadError`` (failed attempt, bytes charged), and
``PartitionLostError`` (no replica can serve).
"""

from repro.common.errors import (
    FaultError,
    NodeUnavailableError,
    PartitionLostError,
    TransientReadError,
)
from repro.faults.degraded import (
    DegradedAnswer,
    UnknownChunk,
    build_degraded_answer,
    degraded_bounds,
)
from repro.faults.injector import FaultInjector
from repro.faults.policy import FailoverPolicy
from repro.faults.schedule import CrashWindow, FaultSchedule, InjectionPlan

__all__ = [
    "FaultError",
    "NodeUnavailableError",
    "TransientReadError",
    "PartitionLostError",
    "CrashWindow",
    "FaultSchedule",
    "InjectionPlan",
    "FaultInjector",
    "FailoverPolicy",
    "DegradedAnswer",
    "UnknownChunk",
    "build_degraded_answer",
    "degraded_bounds",
]
