"""Bounded LRU answer cache for the data-less serving path.

Repeated analytics queries are common — dashboards refresh the same
panels, many analysts probe the same hot subspace — and a predicted
answer is a pure function of the predictor's frozen state.  The cache
exploits that: it remembers *predicted-mode* answers keyed by the
query's canonical extent and hands them back without re-running the
model, as long as the predictor state that produced them is untouched.

Correctness contract (what keeps cached answers byte-identical to a
fresh prediction):

* Entries are stored only for queries served in ``predicted`` mode.
* Every learning step on a signature (``observe`` during fallback,
  drift resets, model-family swaps) invalidates that signature's whole
  extent index — any observation can move centroids, refit models, or
  shift error estimates.
* ``notify_data_update`` evicts exactly the entries whose quantum was
  invalidated, mirroring what :class:`~repro.core.maintenance.DataUpdateMonitor`
  does to the models themselves.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set, Tuple

import numpy as np

from repro.common.validation import require
from repro.core.predictor import Prediction
from repro.queries.query import AnalyticsQuery

CacheKey = Tuple[str, str, bytes]


@dataclass
class CachedAnswer:
    """One remembered predicted answer and its provenance.

    ``version`` is the producing quantum's
    :meth:`~repro.core.predictor.DatalessPredictor.version_of` at store
    time; a serve-time mismatch proves the quantum mutated after this
    entry was cached without the invalidation discipline evicting it.
    """

    answer: object
    prediction: Prediction
    quantum_id: int
    version: int = 0


def cache_key(query: AnalyticsQuery) -> CacheKey:
    """Canonical key: signature + selection shape + exact extent bytes.

    The selection class name disambiguates selections whose vector
    encodings happen to share a length (a 1-D range and a 1-D radius
    both encode as two floats).
    """
    vector = np.asarray(query.vector(), dtype=float)
    return (query.signature(), type(query.selection).__name__, vector.tobytes())


class AnswerCache:
    """LRU map from canonical query extents to predicted answers.

    Secondary indexes by signature and by (signature, quantum) make both
    invalidation paths O(affected entries) instead of O(capacity).
    """

    def __init__(self, capacity: int = 2048) -> None:
        require(capacity >= 1, "capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, CachedAnswer]" = OrderedDict()
        self._by_signature: Dict[str, Set[CacheKey]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        # Version-mismatched hits caught at serve time.  The invalidation
        # discipline (learning steps + per-epoch data-update evictions) is
        # supposed to make this impossible, so the counter's invariant is
        # "stays 0" — a nonzero value means a stale answer *would have*
        # been served and a cache-maintenance path has a hole.
        self.stale_rejected = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def lookup(self, query: AnalyticsQuery) -> Optional[CachedAnswer]:
        """Return the cached answer for an identical query, if still valid."""
        key = cache_key(query)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def peek(self, query: AnalyticsQuery) -> Optional[CachedAnswer]:
        """Non-mutating :meth:`lookup`: no counters, no LRU promotion.

        Plan-only inspection (``EXPLAIN``) uses this so asking "would
        this hit?" never perturbs the hit/miss statistics or the
        eviction order a later real lookup would see.
        """
        return self._entries.get(cache_key(query))

    def reject_stale(self, query: AnalyticsQuery, entry: CachedAnswer) -> None:
        """Drop one version-mismatched entry a lookup just surfaced.

        Called by the agent when :class:`CachedAnswer.version` no longer
        matches the producing quantum's live version: the entry is
        removed (so the query falls through to a fresh prediction) and
        the miss counted in ``stale_rejected`` — the counter tests pin
        at zero.
        """
        key = cache_key(query)
        if self._entries.get(key) is entry:
            del self._entries[key]
            self._unindex(key)
        self.stale_rejected += 1
        # The lookup already counted a hit; correct it to a miss so the
        # hit rate reflects what was actually served from cache.
        self.hits -= 1
        self.misses += 1

    def store(
        self,
        query: AnalyticsQuery,
        prediction: Prediction,
        answer,
        version: int = 0,
    ) -> None:
        """Remember a predicted-mode answer under the query's extent."""
        key = cache_key(query)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = CachedAnswer(
            answer=answer,
            prediction=prediction,
            quantum_id=prediction.quantum_id,
            version=version,
        )
        self._by_signature.setdefault(key[0], set()).add(key)
        while len(self._entries) > self.capacity:
            old_key, _ = self._entries.popitem(last=False)
            self._unindex(old_key)
            self.evictions += 1

    def invalidate_signature(self, signature: str) -> int:
        """Drop every entry for one (table, aggregate) signature."""
        keys = self._by_signature.pop(signature, None)
        if not keys:
            return 0
        for key in keys:
            self._entries.pop(key, None)
        self.invalidations += len(keys)
        return len(keys)

    def evict_quanta(self, signature: str, quantum_ids: Iterable[int]) -> int:
        """Drop exactly the signature's entries served by the given quanta."""
        wanted = set(quantum_ids)
        if not wanted:
            return 0
        keys = self._by_signature.get(signature)
        if not keys:
            return 0
        stale = [k for k in keys if self._entries[k].quantum_id in wanted]
        for key in stale:
            del self._entries[key]
            keys.discard(key)
        if not keys:
            del self._by_signature[signature]
        self.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()
        self._by_signature.clear()

    def stats(self) -> Dict[str, float]:
        return {
            "answer_cache_size": float(len(self._entries)),
            "answer_cache_hits": float(self.hits),
            "answer_cache_misses": float(self.misses),
            "answer_cache_hit_rate": self.hit_rate,
            "answer_cache_evictions": float(self.evictions),
            "answer_cache_invalidations": float(self.invalidations),
            "answer_cache_stale_rejected": float(self.stale_rejected),
        }

    def _unindex(self, key: CacheKey) -> None:
        keys = self._by_signature.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_signature[key[0]]
