"""Error estimation for predicted answers (RT1.3).

"Develop error estimation techniques, in order to accompany predicted
answers with (accurate) error estimations so that the system (or analyst)
can choose to proceed with the predicted answer or to obtain an exact
answer by accessing the base data."

The estimator is *prequential* (test-then-train): when a training pair
arrives, the current model first predicts it, the absolute (relative)
residual is recorded, and only then does the pair update the model.  The
error estimate for a future query in the same quantum is a high quantile
of that quantum's recent residuals — a split-conformal-style guarantee
without distributional assumptions.  Residual windows are bounded, so the
estimator also adapts when drift makes old residuals unrepresentative.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

import numpy as np

from repro.common.validation import require, require_in_range


class PrequentialErrorEstimator:
    """Per-quantum windows of prequential residuals with quantile readout."""

    def __init__(
        self,
        quantile: float = 0.9,
        window: int = 64,
        min_observations: int = 5,
        relative_floor: float = 1.0,
    ) -> None:
        require_in_range(quantile, "quantile", 0.5, 1.0)
        require(window >= 4, "window must be >= 4")
        require(min_observations >= 1, "min_observations must be >= 1")
        self.quantile = quantile
        self.window = window
        self.min_observations = min_observations
        self.relative_floor = relative_floor
        self._residuals: Dict[int, Deque[float]] = {}

    def record(self, quantum_id: int, predicted, actual) -> float:
        """Record one prequential residual; returns the relative error."""
        pred = np.atleast_1d(np.asarray(predicted, dtype=float))
        act = np.atleast_1d(np.asarray(actual, dtype=float))
        denom = max(float(np.linalg.norm(act)), self.relative_floor)
        rel = float(np.linalg.norm(act - pred)) / denom
        bucket = self._residuals.setdefault(
            quantum_id, deque(maxlen=self.window)
        )
        bucket.append(rel)
        return rel

    def estimate(self, quantum_id: int) -> Optional[float]:
        """Estimated relative error for a new query in this quantum.

        Returns ``None`` while the quantum has too few residuals for the
        quantile to mean anything — callers must then treat the prediction
        as unreliable (the agent falls back to exact execution).
        """
        bucket = self._residuals.get(quantum_id)
        if bucket is None or len(bucket) < self.min_observations:
            return None
        return float(np.quantile(np.asarray(bucket), self.quantile))

    def n_observations(self, quantum_id: int) -> int:
        bucket = self._residuals.get(quantum_id)
        return len(bucket) if bucket else 0

    def recent_mean(self, quantum_id: int, last: int = 8) -> Optional[float]:
        """Mean of the most recent residuals (drift detection input)."""
        bucket = self._residuals.get(quantum_id)
        if not bucket:
            return None
        values = list(bucket)[-last:]
        return float(np.mean(values))

    def historical_mean(self, quantum_id: int) -> Optional[float]:
        bucket = self._residuals.get(quantum_id)
        if not bucket:
            return None
        return float(np.mean(bucket))

    def forget(self, quantum_id: int) -> None:
        """Drop a quantum's residual history (model was reset/purged)."""
        self._residuals.pop(quantum_id, None)

    def state_bytes(self) -> int:
        return sum(8 * len(bucket) for bucket in self._residuals.values())
