"""Multi-system (polystore) data-less analytics (RT1.5).

"Instead of migrating large volumes of data between constituent systems,
either: (i) only approximate results of performing operators on the local
data are sent, or (ii) the models themselves are migrated."

A :class:`Polystore` federates several constituent systems, each with its
own store and SEA agent.  A federated query (same schema across systems,
union semantics — e.g. a fleet of per-region NoSQL stores) can be executed
three ways:

* ``migrate``  — the classical path: every remote system ships its *base
  table* to the querying system, which then scans the union (Fig. 1 at
  polystore scale);
* ``partials`` — each system computes its exact local answer and ships
  only the aggregate partial (decomposable aggregates);
* ``models``   — each system's agent predicts its local answer from its
  models; only scalars cross system boundaries, and no system touches its
  base data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.errors import ConfigurationError, QueryError
from repro.common.validation import require
from repro.core.agent import SEAAgent
from repro.queries.query import AnalyticsQuery, Answer

_PARTIAL_BYTES = 64
_MODEL_ANSWER_BYTES = 16


@dataclass
class PolystoreSystem:
    """One constituent system of the polystore."""

    name: str
    agent: SEAAgent
    gateway_node: str  # the node that speaks to other systems (WAN)

    @property
    def store(self):
        return self.agent.engine.store


class Polystore:
    """A federation of constituent systems with per-system SEA agents."""

    def __init__(self, systems: List[PolystoreSystem]) -> None:
        require(len(systems) >= 2, "a polystore needs at least two systems")
        names = [s.name for s in systems]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate system names: {names}")
        self.systems = {s.name: s for s in systems}

    def execute_union(
        self, query: AnalyticsQuery, strategy: str = "models", home: Optional[str] = None
    ) -> Tuple[Answer, CostReport]:
        """Federated union-semantics aggregate across all systems."""
        require(
            strategy in ("migrate", "partials", "models"),
            f"unknown strategy {strategy!r}",
        )
        home_system = self.systems[home] if home else next(iter(self.systems.values()))
        if strategy == "migrate":
            return self._run_migrate(query, home_system)
        if strategy == "partials":
            return self._run_partials(query, home_system)
        return self._run_models(query, home_system)

    # Strategies -------------------------------------------------------------
    def _run_migrate(
        self, query: AnalyticsQuery, home: PolystoreSystem
    ) -> Tuple[Answer, CostReport]:
        """Ship every remote base table to the home system, then aggregate."""
        meter = CostMeter()
        partials = []
        slowest = 0.0
        for system in self.systems.values():
            stored = system.store.table(query.table_name)
            seconds = 0.0
            for partition in stored.partitions:
                data = system.store.read_partition(partition, meter)
                if system.name != home.name:
                    seconds += meter.charge_transfer(
                        system.gateway_node,
                        home.gateway_node,
                        data.n_bytes,
                        wan=True,
                    )
                selected = data.select(query.selection.mask(data))
                seconds += meter.charge_cpu(home.gateway_node, data.n_bytes)
                partials.append(query.aggregate.partial(selected))
            slowest = max(slowest, seconds)
        meter.advance(slowest)
        return query.aggregate.merge(partials), meter.freeze()

    def _run_partials(
        self, query: AnalyticsQuery, home: PolystoreSystem
    ) -> Tuple[Answer, CostReport]:
        """Each system answers exactly on local data; partials cross the WAN."""
        if not query.aggregate.decomposable:
            raise QueryError(
                f"{query.aggregate.name} is holistic; partials strategy "
                "requires a decomposable aggregate"
            )
        meter = CostMeter()
        partials = []
        reports = []
        for system in self.systems.values():
            answer, report = system.agent.engine.execute(query)
            # Re-derive the partial from the exact local answer path.
            stored = system.store.table(query.table_name)
            local = []
            for partition in stored.partitions:
                selected = partition.data.select(query.selection.mask(partition.data))
                local.append(query.aggregate.partial(selected))
            partials.extend(local)
            reports.append(report)
            if system.name != home.name:
                meter.charge_transfer(
                    system.gateway_node, home.gateway_node, _PARTIAL_BYTES, wan=True
                )
        combined = CostMeter.total(reports, parallel=True).merged_parallel(
            meter.freeze()
        )
        return query.aggregate.merge(partials), combined

    def _run_models(
        self, query: AnalyticsQuery, home: PolystoreSystem
    ) -> Tuple[Answer, CostReport]:
        """Each system's agent answers locally (Fig. 2); scalars cross the WAN.

        Falls back per-system: a system whose agent cannot yet serve the
        query data-lessly contributes its exact local partial instead.
        """
        meter = CostMeter()
        values = []
        reports = []
        for system in self.systems.values():
            record = system.agent.submit(query)
            reports.append(record.cost)
            values.append(record.answer)
            if system.name != home.name:
                meter.charge_transfer(
                    system.gateway_node,
                    home.gateway_node,
                    _MODEL_ANSWER_BYTES * query.answer_dim,
                    wan=True,
                )
        combined = CostMeter.total(reports, parallel=True).merged_parallel(
            meter.freeze()
        )
        return self._combine_model_answers(query, values), combined

    @staticmethod
    def _combine_model_answers(query: AnalyticsQuery, values: List[Answer]) -> Answer:
        """Union-combine per-system answers for the supported aggregates."""
        name = query.aggregate.name
        if name.startswith(("count", "sum")):
            return float(np.sum(values))
        # mean/std/correlation/regression: per-system sizes are unknown to
        # the model path, so use the unweighted combination — adequate when
        # systems hold comparably sized shards (documented limitation).
        arr = np.asarray(values, dtype=float)
        return float(arr.mean()) if arr.ndim == 1 else arr.mean(axis=0)
