"""The SEA agent: data-less analytics serving (Sec. III.B, Fig. 2).

"The key idea is to develop an intelligent agent and insert it between
user queries and the system. ... An initial subset of these queries are
sent to the system as before ... treated as 'training' queries.  Once the
models are trained, all future queries need not access any base data and
all answers are provided by the agent outside the BDAS."

:class:`SEAAgent` implements exactly this lifecycle:

1. *training phase* — the first ``training_budget`` queries pass through to
   the exact engine; the agent intercepts (query, answer) pairs and trains
   one :class:`~repro.core.predictor.DatalessPredictor` per
   (table, aggregate) signature;
2. *serving phase* — a query is answered from the models when the
   prediction is reliable and the estimated error is within
   ``error_threshold``; otherwise it falls back to the exact engine (and
   keeps learning from the exact answer).

Every served query carries a :class:`~repro.common.CostReport`, so
experiments can compare nodes touched, bytes scanned and latency between
the two paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.errors import NotTrainedError, PartitionLostError
from repro.common.validation import require, require_in_range
from repro.core.answer_cache import AnswerCache
from repro.core.answer_models import AnswerModelFactory
from repro.core.error import PrequentialErrorEstimator
from repro.core.maintenance import DriftDetector, DataUpdateMonitor
from repro.core.predictor import DatalessPredictor, Prediction
from repro.core.quantization import QuerySpaceQuantizer
from repro.faults.degraded import DegradedAnswer
from repro.obs.anomaly import AccuracyDriftMonitor
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.profile import QueryProfile
from repro.queries.query import AnalyticsQuery, Answer

AGENT_NODE = "sea-agent"


@dataclass
class AgentConfig:
    """Tunable policy of the agent (ablated in experiment E14)."""

    training_budget: int = 200
    error_threshold: float = 0.10
    model_family: str = "quadratic"
    n_quanta: int = 8
    max_quanta: int = 32
    grow_threshold: float = 2.0
    warmup: int = 32
    error_quantile: float = 0.8
    novelty_limit: float = 3.0
    keep_learning_on_fallback: bool = True
    drift_detection: bool = True
    answer_cache_size: int = 2048  # 0 disables the answer cache

    def __post_init__(self) -> None:
        require(self.training_budget >= 0, "training_budget must be >= 0")
        require_in_range(self.error_threshold, "error_threshold", 0.0, 1.0)
        require(self.answer_cache_size >= 0, "answer_cache_size must be >= 0")


@dataclass
class ServedQuery:
    """Record of how one query was served.

    ``profile`` is the query's flight record (EXPLAIN ANALYZE tree);
    populated only while an observer is attached.
    """

    query: AnalyticsQuery
    answer: Answer
    mode: str  # "train" | "predicted" | "fallback"
    cost: CostReport
    prediction: Optional[Prediction] = None
    profile: Optional[QueryProfile] = None

    @property
    def used_base_data(self) -> bool:
        return self.mode != "predicted"


class SEAAgent:
    """Intercepting agent between analysts and the exact engine."""

    def __init__(
        self,
        exact_engine,
        config: Optional[AgentConfig] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        self.engine = exact_engine
        self.config = config or AgentConfig()
        self.observer = observer or NULL_OBSERVER
        self._predictors: Dict[str, DatalessPredictor] = {}
        self._drift: Dict[str, DriftDetector] = {}
        self.anomaly = AccuracyDriftMonitor()
        self.updates = DataUpdateMonitor()
        self.history: List[ServedQuery] = []
        self.n_queries = 0
        self.cache: Optional[AnswerCache] = (
            AnswerCache(self.config.answer_cache_size)
            if self.config.answer_cache_size > 0
            else None
        )

    def attach_observer(self, observer: Observer) -> None:
        """Record traces/metrics/events on ``observer`` (engine included)."""
        self.observer = observer
        hook = getattr(self.engine, "attach_observer", None)
        if callable(hook):
            hook(observer)

    # Serving ---------------------------------------------------------------
    def submit(self, query: AnalyticsQuery) -> ServedQuery:
        """Serve one analyst query through the Fig. 2 lifecycle."""
        self.n_queries += 1
        obs = self.observer
        if obs.enabled:
            obs.profile_begin(query)
            with obs.span(
                "query", category="query", signature=query.signature()
            ):
                record = self._serve(query)
            obs.inc("sea_queries_total", mode=record.mode)
            obs.observe("sea_query_latency_seconds", record.cost.elapsed_sec)
            error = (
                record.prediction.error_estimate
                if record.prediction is not None
                else None
            )
            obs.event(
                record.mode,  # "train" | "predicted" | "fallback"
                signature=query.signature(),
                error_estimate=error,
                elapsed_sec=record.cost.elapsed_sec,
                bytes_scanned=record.cost.bytes_scanned,
                nodes_touched=record.cost.nodes_touched,
            )
            record.profile = obs.profile_end(
                query,
                mode=record.mode,
                cost=record.cost,
                answer=record.answer,
                prediction=record.prediction,
                error_threshold=self.config.error_threshold,
            )
        else:
            record = self._serve(query)
        self.history.append(record)
        return record

    # Batched serving ---------------------------------------------------------
    def submit_batch(self, queries) -> List[ServedQuery]:
        """Serve many queries at once; equivalent to N :meth:`submit` calls.

        Every answer, mode, and per-query cost report is identical to the
        sequential path — only the real (wall-clock) work is amortised:

        * training-phase and learning-free fallback queries execute as a
          shared-scan group through ``engine.execute_many``;
        * serving-phase predictions evaluate vectorized per signature
          (:meth:`DatalessPredictor.predict_batch`), recomputed only for a
          signature whose state a learning fallback just changed;
        * the answer cache is consulted/filled in the same per-query order
          as sequential serving, so hit/miss/eviction sequences match.
        """
        queries = list(queries)
        obs = self.observer
        if obs.enabled:
            for query in queries:
                obs.profile_begin(query)
            with obs.span("batch", category="batch", n=len(queries)):
                records = self._submit_batch_inner(queries)
            obs.observe("sea_batch_size", float(len(queries)))
        else:
            records = self._submit_batch_inner(queries)
        for record in records:
            if obs.enabled:
                obs.inc("sea_queries_total", mode=record.mode)
                obs.observe(
                    "sea_query_latency_seconds", record.cost.elapsed_sec
                )
                error = (
                    record.prediction.error_estimate
                    if record.prediction is not None
                    else None
                )
                obs.event(
                    record.mode,
                    signature=record.query.signature(),
                    error_estimate=error,
                    elapsed_sec=record.cost.elapsed_sec,
                    bytes_scanned=record.cost.bytes_scanned,
                    nodes_touched=record.cost.nodes_touched,
                )
                record.profile = obs.profile_end(
                    record.query,
                    mode=record.mode,
                    cost=record.cost,
                    answer=record.answer,
                    prediction=record.prediction,
                    error_threshold=self.config.error_threshold,
                )
            self.history.append(record)
        return records

    def _submit_batch_inner(self, queries: List[AnalyticsQuery]) -> List[ServedQuery]:
        n_train = max(
            0, min(len(queries), self.config.training_budget - self.n_queries)
        )
        records: List[Optional[ServedQuery]] = [None] * len(queries)
        if n_train:
            self._train_group(queries[:n_train], records, 0)
        if n_train < len(queries):
            self._serve_group(queries, records, n_train)
        return records  # type: ignore[return-value]

    def _train_group(
        self,
        group: List[AnalyticsQuery],
        records: List[Optional[ServedQuery]],
        offset: int,
    ) -> None:
        """Execute a training prefix as one shared-scan group, then learn.

        Exact execution never reads learned state, so running the scans
        first and replaying the observes in query order reproduces the
        sequential interleaving exactly.
        """
        results = self._execute_group(group)
        for position, (query, (answer, cost)) in enumerate(zip(group, results)):
            self.n_queries += 1
            predictor = self._predictor_for(query)
            learn, target = self._learn_target(answer)
            if learn:
                self._learn_from(query, predictor, target)
            records[offset + position] = ServedQuery(
                query=query, answer=answer, mode="train", cost=cost
            )

    def _serve_group(
        self,
        queries: List[AnalyticsQuery],
        records: List[Optional[ServedQuery]],
        start: int,
    ) -> None:
        """Serve queries[start:] (all past the training budget) in order."""
        indices = list(range(start, len(queries)))
        signatures = {i: queries[i].signature() for i in indices}
        vectors = {i: queries[i].vector() for i in indices}
        predictions: Dict[int, Optional[Prediction]] = {}
        computed: set = set()
        deferred: List[int] = []  # learning-free fallbacks, grouped at the end
        # Eager lookahead per signature: doubles while predictions survive,
        # resets after a learning event invalidates them — so a stable
        # serving run amortizes to a handful of matrix calls while a
        # learning-heavy run wastes at most CHUNK_MIN predictions per
        # fallback (prediction values are chunking-invariant either way).
        CHUNK_MIN, CHUNK_MAX = 1, 1024
        chunk_size: Dict[str, int] = {}
        obs = self.observer
        for position, i in enumerate(indices):
            query = queries[i]
            self.n_queries += 1
            predictor = self._predictor_for(query)
            if self.cache is not None:
                entry = self._cache_lookup(query, predictor)
                if entry is not None:
                    records[i] = ServedQuery(
                        query=query,
                        answer=entry.answer,
                        mode="predicted",
                        cost=self._agent_cost(),
                        prediction=entry.prediction,
                    )
                    continue
            if i not in computed:
                # Vectorize over the next not-yet-served queries of this
                # signature; the predictor is frozen until its next
                # learning event, so these match sequential predicts.
                chunk = chunk_size.get(signatures[i], CHUNK_MIN)
                peers = []
                for j in indices[position:]:
                    if signatures[j] == signatures[i] and j not in computed:
                        peers.append(j)
                        if len(peers) >= chunk:
                            break
                chunk_size[signatures[i]] = min(chunk * 2, CHUNK_MAX)
                batch = predictor.predict_batch(
                    np.stack([vectors[j] for j in peers])
                )
                for j, prediction in zip(peers, batch):
                    predictions[j] = prediction
                    computed.add(j)
            prediction = predictions.pop(i)
            if prediction is not None:
                acceptable = (
                    prediction.reliable
                    and prediction.error_estimate <= self.config.error_threshold
                    and not self._quantum_flagged(query, prediction.quantum_id)
                )
                if acceptable:
                    answer = (
                        prediction.scalar
                        if query.answer_dim == 1
                        else prediction.value
                    )
                    if self.cache is not None:
                        self.cache.store(
                            query,
                            prediction,
                            answer,
                            version=predictor.version_of(prediction.quantum_id),
                        )
                    records[i] = ServedQuery(
                        query=query,
                        answer=answer,
                        mode="predicted",
                        cost=self._agent_cost(),
                        prediction=prediction,
                    )
                    continue
            # Fallback. Without learning it has no state effects, so the
            # exact job can join the shared scan at the end of the batch;
            # with learning it must run now, and this signature's
            # outstanding predictions go stale.
            if not self.config.keep_learning_on_fallback:
                records[i] = ServedQuery(
                    query=query,
                    answer=None,
                    mode="fallback",
                    cost=None,  # filled by the shared scan below
                    prediction=prediction,
                )
                deferred.append(i)
                continue
            records[i] = self._execute_and_learn(
                query, predictor, mode="fallback", prediction=prediction
            )
            stale = [
                j for j in computed if signatures[j] == signatures[i]
            ]
            for j in stale:
                computed.discard(j)
                predictions.pop(j, None)
            chunk_size[signatures[i]] = CHUNK_MIN
        if deferred:
            try:
                results = self._execute_group([queries[i] for i in deferred])
            except PartitionLostError:
                # The shared scan hit a lost partition: re-run per query so
                # only the genuinely lost ones serve their predictions.
                results = [self._try_execute(queries[i]) for i in deferred]
            for i, result in zip(deferred, results):
                if isinstance(result, PartitionLostError):
                    records[i] = self._predicted_despite_loss(
                        queries[i], records[i].prediction, result
                    )
                    continue
                answer, cost = result
                records[i].answer = answer
                records[i].cost = cost

    def _cache_lookup(self, query: AnalyticsQuery, predictor: DatalessPredictor):
        """Version-validated answer-cache lookup (both serving paths).

        A hit is served only when the producing quantum's live version
        still matches the version stamped at store time.  A mismatch
        means a learning step, drift reset, or data-update invalidation
        mutated the quantum without its cache entries being evicted —
        the entry is dropped, ``cache_stale_served_total`` counts what
        *would* have been served stale, and the query falls through to a
        fresh prediction.  The invalidation discipline is supposed to
        make this branch dead code; tests pin the counter at zero.
        """
        entry = self.cache.lookup(query)
        if entry is not None and entry.version != predictor.version_of(
            entry.quantum_id
        ):
            self.cache.reject_stale(query, entry)
            if self.observer.enabled:
                self.observer.inc("cache_stale_served_total")
                self.observer.event(
                    "cache_stale_rejected",
                    signature=query.signature(),
                    quantum_id=entry.quantum_id,
                    cached_version=entry.version,
                    live_version=predictor.version_of(entry.quantum_id),
                )
            entry = None
        if self.observer.enabled:
            self.observer.inc(
                "sea_answer_cache_hits_total"
                if entry is not None
                else "sea_answer_cache_misses_total"
            )
            self.observer.profile_note("cache", query=query, hit=entry is not None)
        return entry

    def _try_execute(self, query: AnalyticsQuery):
        """One exact execution; a lost partition is returned, not raised."""
        try:
            return self.engine.execute(query)
        except PartitionLostError as error:
            return error

    def _execute_group(self, group: List[AnalyticsQuery]):
        """(answer, cost) per query, shared-scan when the engine supports it."""
        many = getattr(self.engine, "execute_many", None)
        if callable(many) and len(group) > 1:
            return many(group)
        return [self.engine.execute(query) for query in group]

    def _serve(self, query: AnalyticsQuery) -> ServedQuery:
        predictor = self._predictor_for(query)
        if self.n_queries <= self.config.training_budget:
            return self._execute_and_learn(query, predictor, mode="train")
        return self._serve_trained(query, predictor)

    def _serve_trained(
        self, query: AnalyticsQuery, predictor: DatalessPredictor
    ) -> ServedQuery:
        if self.cache is not None:
            entry = self._cache_lookup(query, predictor)
            if entry is not None:
                return ServedQuery(
                    query=query,
                    answer=entry.answer,
                    mode="predicted",
                    cost=self._agent_cost(),
                    prediction=entry.prediction,
                )
        vector = query.vector()
        try:
            prediction = predictor.predict(vector)
        except NotTrainedError:
            return self._execute_and_learn(query, predictor, mode="fallback")
        acceptable = (
            prediction.reliable
            and prediction.error_estimate <= self.config.error_threshold
            and not self._quantum_flagged(query, prediction.quantum_id)
        )
        if not acceptable:
            record = self._execute_and_learn(
                query, predictor, mode="fallback", prediction=prediction
            )
            return record
        answer = (
            prediction.scalar if query.answer_dim == 1 else prediction.value
        )
        if self.cache is not None:
            self.cache.store(
                query,
                prediction,
                answer,
                version=predictor.version_of(prediction.quantum_id),
            )
        return ServedQuery(
            query=query,
            answer=answer,
            mode="predicted",
            cost=self._agent_cost(),
            prediction=prediction,
        )

    def _execute_and_learn(
        self,
        query: AnalyticsQuery,
        predictor: DatalessPredictor,
        mode: str,
        prediction: Optional[Prediction] = None,
    ) -> ServedQuery:
        try:
            answer, cost = self.engine.execute(query)
        except PartitionLostError as error:
            if mode == "fallback":
                # The exact fallback lost its base data; the model is the
                # best — and only — remaining source of an answer (the
                # paper's availability claim).  Without even a prediction
                # (untrained signature) the loss propagates.
                return self._predicted_despite_loss(query, prediction, error)
            raise
        learn = mode == "train" or self.config.keep_learning_on_fallback
        if learn:
            learn, target = self._learn_target(answer)
            if learn:
                if prediction is not None:
                    self._observe_residual(query, prediction, target)
                self._learn_from(query, predictor, target)
        return ServedQuery(
            query=query, answer=answer, mode=mode, cost=cost, prediction=prediction
        )

    def _observe_residual(
        self,
        query: AnalyticsQuery,
        prediction: Prediction,
        target: Answer,
    ) -> None:
        """Feed one predicted-vs-exact residual to the drift monitor.

        A learning fallback is the one place both sides exist: the
        prediction the agent declined to serve and the exact answer that
        replaced it.  Residuals are relative (scaled by the exact
        answer's magnitude) so the z-score window is comparable across
        query extents; anomalies surface on the decision log.
        """
        try:
            predicted = np.asarray(prediction.value, dtype=float).ravel()
            actual = np.asarray(target, dtype=float).ravel()
        except (TypeError, ValueError):
            return
        if predicted.shape != actual.shape or predicted.size == 0:
            return
        scale = max(float(np.linalg.norm(actual)), 1e-9)
        if predicted.size == 1:
            residual = float(predicted[0] - actual[0]) / scale
        else:
            residual = float(np.linalg.norm(predicted - actual)) / scale
        if not np.isfinite(residual):
            return
        event = self.anomaly.observe(
            query.signature(), prediction.quantum_id, residual
        )
        if event is not None and self.observer.enabled:
            self.observer.inc("sea_accuracy_anomalies_total")
            self.observer.event(
                "accuracy_anomaly",
                signature=event.signature,
                quantum_id=event.quantum_id,
                residual=round(event.residual, 9),
                zscore=round(event.zscore, 9),
                window_mean=round(event.mean, 9),
                window_std=round(event.std, 9),
                window_n=event.n,
            )

    def _predicted_despite_loss(
        self,
        query: AnalyticsQuery,
        prediction: Optional[Prediction],
        error: PartitionLostError,
    ) -> ServedQuery:
        """Serve the model's prediction when exact fallback lost its data."""
        if prediction is None:
            raise error
        if self.observer.enabled:
            self.observer.inc("sea_served_despite_loss_total")
            self.observer.event(
                "served_despite_loss",
                signature=query.signature(),
                partition=error.partition_id,
            )
            self.observer.profile_note("served_despite_loss", query=query)
        answer = prediction.scalar if query.answer_dim == 1 else prediction.value
        return ServedQuery(
            query=query,
            answer=answer,
            mode="predicted",
            cost=self._agent_cost(),
            prediction=prediction,
        )

    def _learn_target(self, answer: Answer):
        """(should_learn, target) for one exact-engine answer.

        A :class:`~repro.faults.DegradedAnswer` at full coverage is an
        exactly recovered value — safe to learn from.  Below full
        coverage the value is missing lost partitions' contributions;
        observing it would poison the predictor, so the agent serves it
        to the caller but learns nothing.
        """
        if isinstance(answer, DegradedAnswer):
            if answer.coverage < 1.0:
                if self.observer.enabled:
                    self.observer.inc("sea_degraded_observations_skipped_total")
                return False, answer.value
            return True, answer.value
        return True, answer

    def _learn_from(
        self, query: AnalyticsQuery, predictor: DatalessPredictor, answer: Answer
    ) -> None:
        """One learning step; any observation can shift the predictor's
        quanta, models, or error estimates, so the signature's cached
        answers can no longer be trusted to match a fresh prediction."""
        quantum_id = predictor.observe(query.vector(), answer)
        if self.config.drift_detection:
            self._drift_check(query, predictor, quantum_id)
        if self.cache is not None:
            self.cache.invalidate_signature(query.signature())

    # Data-update notifications (RT1.4-ii) ------------------------------------
    def notify_data_update(self, table_name: str, lows, highs) -> int:
        """Tell the agent base data changed inside the given bounding box.

        Every quantum of every predictor for ``table_name`` whose centroid
        subspace overlaps the box is invalidated (its model resets; its
        next queries fall back to exact and retrain).  Returns the number
        of invalidated quanta.
        """
        invalidated = 0
        for signature, predictor in self._predictors.items():
            if not signature.startswith(f"{table_name}:"):
                continue
            quantum_ids = self.updates.invalidate_overlapping_ids(
                predictor, np.asarray(lows, float), np.asarray(highs, float)
            )
            invalidated += len(quantum_ids)
            if self.cache is not None and quantum_ids:
                self.cache.evict_quanta(signature, quantum_ids)
        if self.observer.enabled:
            self.observer.inc("sea_quanta_invalidated_total", invalidated)
            self.observer.event(
                "data_update", table=table_name, invalidated_quanta=invalidated
            )
        return invalidated

    # Introspection ---------------------------------------------------------
    def preview(self, query: AnalyticsQuery):
        """``(expected_mode, prediction, cache_hit)`` without serving.

        The plan-only half of ``EXPLAIN``: reproduces the serving
        decision the next :meth:`submit` of this query would make, while
        mutating *nothing* — no counters move, the cache is peeked (not
        promoted), and no predictor is created for an unseen signature.
        ``cache_hit`` is None when the cache is disabled.
        """
        if self.n_queries < self.config.training_budget:
            return "train", None, None
        cache_hit = None
        if self.cache is not None:
            entry = self.cache.peek(query)
            if entry is not None:
                return "predicted", entry.prediction, True
            cache_hit = False
        predictor = self._predictors.get(query.signature())
        if predictor is None:
            return "fallback", None, cache_hit
        try:
            prediction = predictor.predict(query.vector())
        except NotTrainedError:
            return "fallback", None, cache_hit
        acceptable = (
            prediction.reliable
            and prediction.error_estimate <= self.config.error_threshold
            and not self._quantum_flagged(query, prediction.quantum_id)
        )
        mode = "predicted" if acceptable else "fallback"
        return mode, prediction, cache_hit

    def state_bytes(self) -> int:
        """Total learned-state footprint across predictors (experiment E4)."""
        return sum(p.state_bytes() for p in self._predictors.values())

    def predictor(self, query: AnalyticsQuery) -> DatalessPredictor:
        """The predictor serving this query's (table, aggregate) signature."""
        return self._predictor_for(query)

    def adopt_predictor(
        self, signature: str, predictor: DatalessPredictor
    ) -> None:
        """Install an externally built/restored predictor for a signature.

        Used by persistence (restored state) and by federation-style model
        hand-offs; the matching drift detector is (re)created fresh.
        """
        self._predictors[signature] = predictor
        self._drift[signature] = DriftDetector()
        if self.cache is not None:
            self.cache.invalidate_signature(signature)

    def stats(self) -> Dict[str, float]:
        """Aggregate serving statistics over the agent's history."""
        total = len(self.history)
        predicted = sum(1 for r in self.history if r.mode == "predicted")
        fallback = sum(1 for r in self.history if r.mode == "fallback")
        stats = {
            "queries": float(total),
            "predicted": float(predicted),
            "fallback": float(fallback),
            "trained": float(total - predicted - fallback),
            "dataless_fraction": predicted / total if total else 0.0,
            "state_bytes": float(self.state_bytes()),
        }
        if self.cache is not None:
            stats.update(self.cache.stats())
        stats.update(self.anomaly.summary())
        return stats

    # Internals ---------------------------------------------------------------
    def _predictor_for(self, query: AnalyticsQuery) -> DatalessPredictor:
        signature = query.signature()
        if signature not in self._predictors:
            config = self.config
            self._predictors[signature] = DatalessPredictor(
                answer_dim=query.answer_dim,
                quantizer=QuerySpaceQuantizer(
                    n_quanta=config.n_quanta,
                    grow_threshold=config.grow_threshold,
                    max_quanta=config.max_quanta,
                    warmup=config.warmup,
                ),
                factory=AnswerModelFactory(config.model_family),
                error_estimator=PrequentialErrorEstimator(
                    quantile=config.error_quantile
                ),
                novelty_limit=config.novelty_limit,
            )
            self._drift[signature] = DriftDetector()
        return self._predictors[signature]

    def _drift_check(
        self, query: AnalyticsQuery, predictor: DatalessPredictor, quantum_id: int
    ) -> None:
        detector = self._drift[query.signature()]
        if detector.check(predictor.errors, quantum_id):
            predictor.reset_quantum(quantum_id)
            if self.observer.enabled:
                self.observer.inc("sea_drift_detections_total")
                self.observer.event(
                    "drift",
                    signature=query.signature(),
                    quantum_id=quantum_id,
                    action="reset_quantum",
                )

    def _quantum_flagged(self, query: AnalyticsQuery, quantum_id: int) -> bool:
        detector = self._drift.get(query.signature())
        return detector.is_flagged(quantum_id) if detector else False

    def _agent_cost(self) -> CostReport:
        """Cost of a model-served answer: agent-local compute only.

        The query crosses the thin agent interface and never reaches the
        BDAS: no scans, no shuffles, no data nodes.  One millisecond of
        client<->agent dispatch plus model inference — in line with the
        "de facto insensitive to data sizes" claim of Sec. III.B.
        """
        obs = self.observer
        meter = CostMeter(observer=obs if obs.enabled else None)
        with obs.span("agent_inference", meter=meter, category="agent"):
            meter.charge_cpu(AGENT_NODE, 4096)  # model inference
            meter.advance(1e-3)
        return meter.freeze()
