"""The SEA agent: data-less analytics serving (Sec. III.B, Fig. 2).

"The key idea is to develop an intelligent agent and insert it between
user queries and the system. ... An initial subset of these queries are
sent to the system as before ... treated as 'training' queries.  Once the
models are trained, all future queries need not access any base data and
all answers are provided by the agent outside the BDAS."

:class:`SEAAgent` implements exactly this lifecycle:

1. *training phase* — the first ``training_budget`` queries pass through to
   the exact engine; the agent intercepts (query, answer) pairs and trains
   one :class:`~repro.core.predictor.DatalessPredictor` per
   (table, aggregate) signature;
2. *serving phase* — a query is answered from the models when the
   prediction is reliable and the estimated error is within
   ``error_threshold``; otherwise it falls back to the exact engine (and
   keeps learning from the exact answer).

Every served query carries a :class:`~repro.common.CostReport`, so
experiments can compare nodes touched, bytes scanned and latency between
the two paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.common.accounting import CostMeter, CostReport
from repro.common.errors import NotTrainedError
from repro.common.validation import require, require_in_range
from repro.core.answer_models import AnswerModelFactory
from repro.core.error import PrequentialErrorEstimator
from repro.core.maintenance import DriftDetector, DataUpdateMonitor
from repro.core.predictor import DatalessPredictor, Prediction
from repro.core.quantization import QuerySpaceQuantizer
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.queries.query import AnalyticsQuery, Answer

AGENT_NODE = "sea-agent"


@dataclass
class AgentConfig:
    """Tunable policy of the agent (ablated in experiment E14)."""

    training_budget: int = 200
    error_threshold: float = 0.10
    model_family: str = "quadratic"
    n_quanta: int = 8
    max_quanta: int = 32
    grow_threshold: float = 2.0
    warmup: int = 32
    error_quantile: float = 0.8
    novelty_limit: float = 3.0
    keep_learning_on_fallback: bool = True
    drift_detection: bool = True

    def __post_init__(self) -> None:
        require(self.training_budget >= 0, "training_budget must be >= 0")
        require_in_range(self.error_threshold, "error_threshold", 0.0, 1.0)


@dataclass
class ServedQuery:
    """Record of how one query was served."""

    query: AnalyticsQuery
    answer: Answer
    mode: str  # "train" | "predicted" | "fallback"
    cost: CostReport
    prediction: Optional[Prediction] = None

    @property
    def used_base_data(self) -> bool:
        return self.mode != "predicted"


class SEAAgent:
    """Intercepting agent between analysts and the exact engine."""

    def __init__(
        self,
        exact_engine,
        config: Optional[AgentConfig] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        self.engine = exact_engine
        self.config = config or AgentConfig()
        self.observer = observer or NULL_OBSERVER
        self._predictors: Dict[str, DatalessPredictor] = {}
        self._drift: Dict[str, DriftDetector] = {}
        self.updates = DataUpdateMonitor()
        self.history: List[ServedQuery] = []
        self.n_queries = 0

    def attach_observer(self, observer: Observer) -> None:
        """Record traces/metrics/events on ``observer`` (engine included)."""
        self.observer = observer
        hook = getattr(self.engine, "attach_observer", None)
        if callable(hook):
            hook(observer)

    # Serving ---------------------------------------------------------------
    def submit(self, query: AnalyticsQuery) -> ServedQuery:
        """Serve one analyst query through the Fig. 2 lifecycle."""
        self.n_queries += 1
        obs = self.observer
        if obs.enabled:
            with obs.span(
                "query", category="query", signature=query.signature()
            ):
                record = self._serve(query)
            obs.inc("sea_queries_total", mode=record.mode)
            obs.observe("sea_query_latency_seconds", record.cost.elapsed_sec)
            error = (
                record.prediction.error_estimate
                if record.prediction is not None
                else None
            )
            obs.event(
                record.mode,  # "train" | "predicted" | "fallback"
                signature=query.signature(),
                error_estimate=error,
                elapsed_sec=record.cost.elapsed_sec,
                bytes_scanned=record.cost.bytes_scanned,
                nodes_touched=record.cost.nodes_touched,
            )
        else:
            record = self._serve(query)
        self.history.append(record)
        return record

    def _serve(self, query: AnalyticsQuery) -> ServedQuery:
        predictor = self._predictor_for(query)
        if self.n_queries <= self.config.training_budget:
            return self._execute_and_learn(query, predictor, mode="train")
        return self._serve_trained(query, predictor)

    def _serve_trained(
        self, query: AnalyticsQuery, predictor: DatalessPredictor
    ) -> ServedQuery:
        vector = query.vector()
        try:
            prediction = predictor.predict(vector)
        except NotTrainedError:
            return self._execute_and_learn(query, predictor, mode="fallback")
        acceptable = (
            prediction.reliable
            and prediction.error_estimate <= self.config.error_threshold
            and not self._quantum_flagged(query, prediction.quantum_id)
        )
        if not acceptable:
            record = self._execute_and_learn(
                query, predictor, mode="fallback", prediction=prediction
            )
            return record
        answer = (
            prediction.scalar if query.answer_dim == 1 else prediction.value
        )
        return ServedQuery(
            query=query,
            answer=answer,
            mode="predicted",
            cost=self._agent_cost(),
            prediction=prediction,
        )

    def _execute_and_learn(
        self,
        query: AnalyticsQuery,
        predictor: DatalessPredictor,
        mode: str,
        prediction: Optional[Prediction] = None,
    ) -> ServedQuery:
        answer, cost = self.engine.execute(query)
        learn = mode == "train" or self.config.keep_learning_on_fallback
        if learn:
            quantum_id = predictor.observe(query.vector(), answer)
            if self.config.drift_detection:
                self._drift_check(query, predictor, quantum_id)
        return ServedQuery(
            query=query, answer=answer, mode=mode, cost=cost, prediction=prediction
        )

    # Data-update notifications (RT1.4-ii) ------------------------------------
    def notify_data_update(self, table_name: str, lows, highs) -> int:
        """Tell the agent base data changed inside the given bounding box.

        Every quantum of every predictor for ``table_name`` whose centroid
        subspace overlaps the box is invalidated (its model resets; its
        next queries fall back to exact and retrain).  Returns the number
        of invalidated quanta.
        """
        invalidated = 0
        for signature, predictor in self._predictors.items():
            if not signature.startswith(f"{table_name}:"):
                continue
            invalidated += self.updates.invalidate_overlapping(
                predictor, np.asarray(lows, float), np.asarray(highs, float)
            )
        if self.observer.enabled:
            self.observer.inc("sea_quanta_invalidated_total", invalidated)
            self.observer.event(
                "data_update", table=table_name, invalidated_quanta=invalidated
            )
        return invalidated

    # Introspection ---------------------------------------------------------
    def state_bytes(self) -> int:
        """Total learned-state footprint across predictors (experiment E4)."""
        return sum(p.state_bytes() for p in self._predictors.values())

    def predictor(self, query: AnalyticsQuery) -> DatalessPredictor:
        """The predictor serving this query's (table, aggregate) signature."""
        return self._predictor_for(query)

    def adopt_predictor(
        self, signature: str, predictor: DatalessPredictor
    ) -> None:
        """Install an externally built/restored predictor for a signature.

        Used by persistence (restored state) and by federation-style model
        hand-offs; the matching drift detector is (re)created fresh.
        """
        self._predictors[signature] = predictor
        self._drift[signature] = DriftDetector()

    def stats(self) -> Dict[str, float]:
        """Aggregate serving statistics over the agent's history."""
        total = len(self.history)
        predicted = sum(1 for r in self.history if r.mode == "predicted")
        fallback = sum(1 for r in self.history if r.mode == "fallback")
        return {
            "queries": float(total),
            "predicted": float(predicted),
            "fallback": float(fallback),
            "trained": float(total - predicted - fallback),
            "dataless_fraction": predicted / total if total else 0.0,
            "state_bytes": float(self.state_bytes()),
        }

    # Internals ---------------------------------------------------------------
    def _predictor_for(self, query: AnalyticsQuery) -> DatalessPredictor:
        signature = query.signature()
        if signature not in self._predictors:
            config = self.config
            self._predictors[signature] = DatalessPredictor(
                answer_dim=query.answer_dim,
                quantizer=QuerySpaceQuantizer(
                    n_quanta=config.n_quanta,
                    grow_threshold=config.grow_threshold,
                    max_quanta=config.max_quanta,
                    warmup=config.warmup,
                ),
                factory=AnswerModelFactory(config.model_family),
                error_estimator=PrequentialErrorEstimator(
                    quantile=config.error_quantile
                ),
                novelty_limit=config.novelty_limit,
            )
            self._drift[signature] = DriftDetector()
        return self._predictors[signature]

    def _drift_check(
        self, query: AnalyticsQuery, predictor: DatalessPredictor, quantum_id: int
    ) -> None:
        detector = self._drift[query.signature()]
        if detector.check(predictor.errors, quantum_id):
            predictor.reset_quantum(quantum_id)
            if self.observer.enabled:
                self.observer.inc("sea_drift_detections_total")
                self.observer.event(
                    "drift",
                    signature=query.signature(),
                    quantum_id=quantum_id,
                    action="reset_quantum",
                )

    def _quantum_flagged(self, query: AnalyticsQuery, quantum_id: int) -> bool:
        detector = self._drift.get(query.signature())
        return detector.is_flagged(quantum_id) if detector else False

    def _agent_cost(self) -> CostReport:
        """Cost of a model-served answer: agent-local compute only.

        The query crosses the thin agent interface and never reaches the
        BDAS: no scans, no shuffles, no data nodes.  One millisecond of
        client<->agent dispatch plus model inference — in line with the
        "de facto insensitive to data sizes" claim of Sec. III.B.
        """
        obs = self.observer
        meter = CostMeter(observer=obs if obs.enabled else None)
        with obs.span("agent_inference", meter=meter, category="agent"):
            meter.charge_cpu(AGENT_NODE, 4096)  # model inference
            meter.advance(1e-3)
        return meter.freeze()
