"""Answer-space modelling (RT1.2, objective O2).

Per query-space quantum, a :class:`QuantumModel` learns the local mapping
from query parameters to answers from the (query, answer) pairs the agent
intercepted.  Several model families are supported — the "different models
have been found to be best for different data subspaces" observation of
RT3.3 — and the factory centralises their construction so the
model-selection machinery (:mod:`repro.optimizer.model_selection`) can
swap families per quantum.

Answers may be vectors (e.g. regression-coefficient queries); a vector
answer of dimension m is handled by m independent scalar models.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

import numpy as np

from repro.common.errors import ConfigurationError, NotTrainedError
from repro.common.validation import require
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.linear import RidgeRegression, polynomial_features

FAMILIES = ("mean", "linear", "quadratic", "gbm")


class _MeanModel:
    """Constant model: predicts the quantum's (weighted) mean answer."""

    def __init__(self) -> None:
        self._value: Optional[float] = None

    def fit(self, x, y, sample_weight=None) -> "_MeanModel":
        y = np.asarray(y, dtype=float).ravel()
        if sample_weight is not None:
            w = np.asarray(sample_weight, dtype=float).ravel()
            self._value = float(np.average(y, weights=w))
        else:
            self._value = float(y.mean())
        return self

    def predict(self, x) -> np.ndarray:
        if self._value is None:
            raise NotTrainedError("mean model not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return np.full(x.shape[0], self._value)

    @property
    def n_params(self) -> int:
        return 1


class _QuadraticModel:
    """Ridge on degree-2 polynomial features of the query vector."""

    def __init__(self, alpha: float = 1.0) -> None:
        self._ridge = RidgeRegression(alpha=alpha)

    def fit(self, x, y, sample_weight=None) -> "_QuadraticModel":
        self._ridge.fit(polynomial_features(x, degree=2), y, sample_weight)
        return self

    def predict(self, x) -> np.ndarray:
        return self._ridge.predict(polynomial_features(x, degree=2))

    @property
    def n_params(self) -> int:
        return self._ridge.n_params


class _GBMModel:
    """Small boosted ensemble; sample weights are unsupported and ignored."""

    def __init__(self, n_estimators: int = 25, max_depth: int = 2) -> None:
        self._gbm = GradientBoostingRegressor(
            n_estimators=n_estimators, max_depth=max_depth, seed=0
        )

    def fit(self, x, y, sample_weight=None) -> "_GBMModel":
        self._gbm.fit(x, y)
        return self

    def predict(self, x) -> np.ndarray:
        return self._gbm.predict(x)

    @property
    def n_params(self) -> int:
        # ~3 numbers per tree node (feature, threshold, value).
        return sum(3 * t.n_nodes for t in self._gbm._trees) + 1


class AnswerModelFactory:
    """Builds per-quantum scalar models of a given family."""

    def __init__(self, family: str = "linear", ridge_alpha: float = 1.0) -> None:
        if family not in FAMILIES:
            raise ConfigurationError(
                f"unknown model family {family!r}; choose from {FAMILIES}"
            )
        self.family = family
        self.ridge_alpha = ridge_alpha

    def build(self):
        if self.family == "mean":
            return _MeanModel()
        if self.family == "linear":
            return RidgeRegression(alpha=self.ridge_alpha)
        if self.family == "quadratic":
            return _QuadraticModel(alpha=self.ridge_alpha)
        return _GBMModel()

    def min_samples(self) -> int:
        """Fewest training pairs before a family produces a sane fit."""
        return {"mean": 1, "linear": 3, "quadratic": 6, "gbm": 8}[self.family]


class QuantumModel:
    """The trained answer model of one query-space quantum.

    Holds the quantum's training buffer and a fitted model per answer
    dimension.  Refits lazily: ``add`` marks the model dirty and ``predict``
    refits when dirty, so bursts of training queries cost one fit.

    Sample ages are tracked so maintenance can apply exponential
    time-decay weights when data or interest changes (RT1.4).
    """

    def __init__(
        self,
        factory: AnswerModelFactory,
        answer_dim: int = 1,
        max_buffer: int = 512,
    ) -> None:
        require(answer_dim >= 1, "answer_dim must be >= 1")
        require(max_buffer >= 8, "max_buffer must be >= 8")
        self.factory = factory
        self.answer_dim = answer_dim
        self.max_buffer = max_buffer
        self._x: List[np.ndarray] = []
        self._y: List[np.ndarray] = []
        self._ages: List[int] = []
        self._clock = 0
        self._models: Optional[list] = None
        self._dirty = True
        self.decay_rate: float = 0.0  # 0 = no aging; set by maintenance

    @property
    def n_samples(self) -> int:
        return len(self._x)

    @property
    def is_trained(self) -> bool:
        return self.n_samples >= self.factory.min_samples()

    def add(self, vector, answer) -> None:
        """Add one (query vector, answer) training pair."""
        v = np.asarray(vector, dtype=float).ravel()
        a = np.atleast_1d(np.asarray(answer, dtype=float))
        require(
            a.shape[0] == self.answer_dim,
            f"answer dim {a.shape[0]} != expected {self.answer_dim}",
        )
        self._clock += 1
        self._x.append(v)
        self._y.append(a)
        self._ages.append(self._clock)
        if len(self._x) > self.max_buffer:
            # Drop the oldest pair: bounded state is a P2 selling point.
            self._x.pop(0)
            self._y.pop(0)
            self._ages.pop(0)
        self._dirty = True

    def predict(self, vector) -> np.ndarray:
        """Predicted answer (shape ``(answer_dim,)``) for one query vector."""
        if not self.is_trained:
            raise NotTrainedError(
                f"quantum model has {self.n_samples} samples, needs "
                f"{self.factory.min_samples()}"
            )
        if self._dirty:
            self._refit()
        v = np.asarray(vector, dtype=float).reshape(1, -1)
        return np.array([model.predict(v)[0] for model in self._models])

    def predict_batch(self, vectors) -> np.ndarray:
        """Predicted answers (shape ``(n, answer_dim)``) for ``n`` vectors.

        One fitted-model call per answer dimension serves the whole batch;
        every model family's ``predict`` is row-stable, so row ``i`` equals
        ``predict(vectors[i])`` bit for bit.
        """
        if not self.is_trained:
            raise NotTrainedError(
                f"quantum model has {self.n_samples} samples, needs "
                f"{self.factory.min_samples()}"
            )
        if self._dirty:
            self._refit()
        x = np.atleast_2d(np.asarray(vectors, dtype=float))
        return np.stack([model.predict(x) for model in self._models], axis=1)

    def reset(self) -> None:
        """Discard everything (maintenance: invalidated by data updates)."""
        self._x = []
        self._y = []
        self._ages = []
        self._models = None
        self._dirty = True

    def state_bytes(self) -> int:
        """Approximate footprint: buffer + fitted parameters."""
        buffer_bytes = sum(v.nbytes for v in self._x) + sum(
            a.nbytes for a in self._y
        )
        model_params = 0
        if self._models is not None:
            model_params = sum(m.n_params for m in self._models)
        return buffer_bytes + 8 * model_params

    def _refit(self) -> None:
        x = np.asarray(self._x)
        y = np.asarray(self._y)
        weights = None
        if self.decay_rate > 0:
            ages = self._clock - np.asarray(self._ages, dtype=float)
            weights = np.exp(-self.decay_rate * ages)
        self._models = []
        for dim in range(self.answer_dim):
            model = self.factory.build()
            model.fit(x, y[:, dim], sample_weight=weights)
            self._models.append(model)
        self._dirty = False
