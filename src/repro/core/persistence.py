"""Persistence of learned state: save and restore trained predictors.

Two production needs drive this module:

* an operator wants the agent's models to survive restarts without
  re-intercepting hundreds of training queries;
* the geo-distributed deployment ships model state between sites (RT5.2)
  — what crosses the wire is exactly what these functions serialize.

The format is a plain pickled payload wrapped with a magic header and a
schema version, so stale files fail loudly instead of deserialising into
silently incompatible objects.
"""

from __future__ import annotations

import io
import pickle
from typing import BinaryIO, Union

from repro.common.errors import ConfigurationError
from repro.core.agent import SEAAgent
from repro.core.predictor import DatalessPredictor

_MAGIC = b"SEA-MODEL"
_VERSION = 1

PathOrFile = Union[str, BinaryIO]


def save_predictor(predictor: DatalessPredictor, target: PathOrFile) -> int:
    """Serialize one predictor; returns the payload size in bytes."""
    return _write(("predictor", predictor), target)


def load_predictor(source: PathOrFile) -> DatalessPredictor:
    """Restore a predictor saved by :func:`save_predictor`."""
    kind, payload = _read(source)
    if kind != "predictor":
        raise ConfigurationError(f"file holds a {kind!r}, not a predictor")
    return payload


def save_agent_models(agent: SEAAgent, target: PathOrFile) -> int:
    """Serialize every predictor of an agent (keyed by query signature).

    The engine/cluster wiring is *not* saved — models are portable across
    deployments; reattach them to any agent fronting the same tables.
    """
    return _write(("agent-models", dict(agent._predictors)), target)


def load_agent_models(agent: SEAAgent, source: PathOrFile) -> int:
    """Install saved predictors into ``agent``; returns how many loaded."""
    kind, payload = _read(source)
    if kind != "agent-models":
        raise ConfigurationError(f"file holds a {kind!r}, not agent models")
    for signature, predictor in payload.items():
        agent.adopt_predictor(signature, predictor)
    return len(payload)


def _write(payload, target: PathOrFile) -> int:
    blob = _MAGIC + bytes([_VERSION]) + pickle.dumps(payload, protocol=4)
    if isinstance(target, str):
        with open(target, "wb") as handle:
            handle.write(blob)
    else:
        target.write(blob)
    return len(blob)


def _read(source: PathOrFile):
    if isinstance(source, str):
        with open(source, "rb") as handle:
            blob = handle.read()
    else:
        blob = source.read()
    if not blob.startswith(_MAGIC):
        raise ConfigurationError("not a SEA model file (bad magic header)")
    version = blob[len(_MAGIC)]
    if version != _VERSION:
        raise ConfigurationError(
            f"unsupported model-file version {version} (expected {_VERSION})"
        )
    return pickle.loads(blob[len(_MAGIC) + 1 :])
