"""The paper's primary contribution: data-less big data analytics (P2, RT1).

An intelligent agent sits between analysts and the BDAS (Fig. 2).  It

1. *quantizes the query space* — learns where analyst queries concentrate
   (:mod:`repro.core.quantization`, objective O1);
2. *models the answer space* — learns, per query-space quantum, how answers
   depend on query parameters (:mod:`repro.core.answer_models`, O2);
3. *associates* the two to predict answers for unseen queries with
   calibrated error estimates (:mod:`repro.core.predictor` and
   :mod:`repro.core.error`, O3 / RT1.3);
4. *maintains* the models under query-interest drift and base-data updates
   (:mod:`repro.core.maintenance`, RT1.4);
5. serves analysts *without touching base data* whenever the estimated
   error is acceptable, falling back to the exact engine otherwise
   (:class:`repro.core.agent.SEAAgent`);
6. extends to polystores by exchanging models instead of data
   (:mod:`repro.core.polystore`, RT1.5).
"""

from repro.core.quantization import QuerySpaceQuantizer
from repro.core.answer_cache import AnswerCache, CachedAnswer
from repro.core.answer_models import AnswerModelFactory, QuantumModel
from repro.core.error import PrequentialErrorEstimator
from repro.core.predictor import DatalessPredictor, Prediction
from repro.core.agent import SEAAgent, AgentConfig, ServedQuery
from repro.core.maintenance import DriftDetector, DataUpdateMonitor
from repro.core.polystore import Polystore, PolystoreSystem
from repro.core.persistence import (
    save_predictor,
    load_predictor,
    save_agent_models,
    load_agent_models,
)

__all__ = [
    "AnswerCache",
    "CachedAnswer",
    "QuerySpaceQuantizer",
    "AnswerModelFactory",
    "QuantumModel",
    "PrequentialErrorEstimator",
    "DatalessPredictor",
    "Prediction",
    "SEAAgent",
    "AgentConfig",
    "ServedQuery",
    "DriftDetector",
    "DataUpdateMonitor",
    "Polystore",
    "PolystoreSystem",
    "save_predictor",
    "load_predictor",
    "save_agent_models",
    "load_agent_models",
]
