"""Query-space quantization (RT1.1, objective O1).

"Derive novel algorithms and models, to efficiently and scalably learn the
structure of the query space, identifying analysts' current interests."

The quantizer consumes query vectors (centre + extent encodings from
:mod:`repro.queries.selections`) and maintains a growing/adapting set of
*quanta* — centroids in query space — via online k-means.  Because raw
coordinates mix very different scales (a position in [0, 100] next to a
radius in [0, 10]), vectors are standardised with statistics estimated
from a warm-up buffer before the online phase begins.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.common.errors import NotTrainedError
from repro.common.validation import require
from repro.ml.kmeans import OnlineKMeans
from repro.ml.scaling import StandardScaler


class QuerySpaceQuantizer:
    """Online vector quantizer over analyst query vectors.

    Parameters
    ----------
    n_quanta:
        Initial capacity: the first ``n_quanta`` sufficiently distinct
        queries seed the codebook.
    grow_threshold:
        Distance (in standardised units) beyond which a query spawns a new
        quantum instead of being absorbed, up to ``max_quanta``.  Roughly:
        1.0 means "more than one workload standard deviation from every
        known interest region".
    warmup:
        Number of queries buffered to estimate scaling statistics before
        the online codebook starts.
    decay:
        Forgetting factor for centroid counts; < 1.0 keeps centroids
        tracking drifting interest (RT1.4).
    """

    def __init__(
        self,
        n_quanta: int = 16,
        grow_threshold: float = 1.0,
        max_quanta: int = 64,
        warmup: int = 32,
        decay: float = 1.0,
    ) -> None:
        require(n_quanta >= 1, "n_quanta must be >= 1")
        require(max_quanta >= n_quanta, "max_quanta must be >= n_quanta")
        require(warmup >= 2, "warmup must be >= 2")
        require(grow_threshold > 0, "grow_threshold must be positive")
        self.warmup = warmup
        self._buffer: List[np.ndarray] = []
        self._scaler: Optional[StandardScaler] = None
        self._codebook = OnlineKMeans(
            n_clusters=n_quanta,
            grow_threshold=grow_threshold,
            max_clusters=max_quanta,
            decay=decay,
        )

    @property
    def is_warm(self) -> bool:
        return self._scaler is not None

    @property
    def n_quanta(self) -> int:
        """Number of quanta discovered so far (0 during warm-up)."""
        return self._codebook.n_active if self.is_warm else 0

    @property
    def centroids(self) -> np.ndarray:
        """Quantum centroids in the original (unscaled) query space."""
        if not self.is_warm:
            raise NotTrainedError("quantizer still warming up")
        return self._scaler.inverse_transform(self._codebook.cluster_centers_)

    def observe(self, vector) -> int:
        """Absorb one query vector; returns its quantum id.

        During warm-up, vectors are buffered and the returned id is the
        provisional assignment after the codebook is (re)seeded; warm-up
        completes automatically at the ``warmup``-th observation.
        """
        v = np.asarray(vector, dtype=float).ravel()
        if not self.is_warm:
            self._buffer.append(v)
            if len(self._buffer) >= self.warmup:
                self._finish_warmup()
                return self._codebook.assign(self._scale(v))
            return 0
        return self._codebook.partial_fit(self._scale(v))

    def assign(self, vector) -> int:
        """Quantum id of a vector without updating the codebook."""
        v = np.asarray(vector, dtype=float).ravel()
        if not self.is_warm:
            return 0
        return self._codebook.assign(self._scale(v))

    def assign_batch(self, vectors) -> np.ndarray:
        """Quantum ids for ``n`` vectors without updating the codebook.

        Row ``i`` equals ``assign(vectors[i])`` exactly: scaling is
        elementwise and the batched distance matrix is row-stable.
        """
        x = np.atleast_2d(np.asarray(vectors, dtype=float))
        if not self.is_warm:
            return np.zeros(x.shape[0], dtype=int)
        return self._codebook.assign_batch(self._scaler.transform(x))

    def assign_novelty_batch(self, vectors) -> Tuple[np.ndarray, np.ndarray]:
        """(quantum ids, novelty distances) for ``n`` vectors in one pass.

        Scaling and assignment run once and feed both outputs; row ``i``
        equals ``(assign(vectors[i]), novelty(vectors[i]))`` exactly — the
        distance is recomputed with the same 1-D norm :meth:`novelty` uses
        so every value is bitwise identical to the sequential calls.
        """
        x = np.atleast_2d(np.asarray(vectors, dtype=float))
        if not self.is_warm:
            return (
                np.zeros(x.shape[0], dtype=int),
                np.full(x.shape[0], float("inf")),
            )
        scaled = self._scaler.transform(x)
        assigned = self._codebook.assign_batch(scaled)
        novelty = np.array(
            [
                self._codebook.distance_to(row, int(quantum))
                for row, quantum in zip(scaled, assigned)
            ]
        )
        return assigned, novelty

    def novelty_batch(self, vectors) -> np.ndarray:
        """Standardised nearest-quantum distance per vector (batched)."""
        return self.assign_novelty_batch(vectors)[1]

    def novelty(self, vector) -> float:
        """Standardised distance from the vector to its nearest quantum.

        Large values mean the query probes a subspace no training query
        covered — the predictor inflates its error estimate accordingly.
        """
        v = np.asarray(vector, dtype=float).ravel()
        if not self.is_warm:
            return float("inf")
        scaled = self._scale(v)
        quantum = self._codebook.assign(scaled)
        return self._codebook.distance_to(scaled, quantum)

    def remove_quantum(self, quantum_id: int) -> None:
        """Purge a quantum whose subspace is no longer of interest."""
        self._codebook.remove(quantum_id)

    def state_bytes(self) -> int:
        """Approximate in-memory footprint of the codebook (for E4)."""
        if not self.is_warm:
            return sum(v.nbytes for v in self._buffer)
        centers = self._codebook.cluster_centers_
        return int(centers.nbytes) + 8 * len(self._codebook.counts)

    # Internals -------------------------------------------------------------
    def _finish_warmup(self) -> None:
        stacked = np.asarray(self._buffer)
        self._scaler = StandardScaler().fit(stacked)
        for row in self._scaler.transform(stacked):
            self._codebook.partial_fit(row)
        self._buffer = []

    def _scale(self, v: np.ndarray) -> np.ndarray:
        return self._scaler.transform(v.reshape(1, -1))[0]
