"""Model maintenance (RT1.4): query-pattern drift and base-data updates.

Two mechanisms:

* :class:`DriftDetector` — watches each quantum's prequential residual
  stream.  When the recent mean residual exceeds the historical mean by a
  multiplicative factor (plus an absolute floor, to ignore noise around
  zero), the quantum is flagged; the agent then resets its model so the
  next queries retrain it from fresh exact answers.  A flagged quantum is
  un-flagged once it has re-accumulated enough fresh residuals.

* :class:`DataUpdateMonitor` — when base data changes inside a bounding
  box, every quantum whose *queried subspace* overlaps the box is
  invalidated.  A quantum's subspace is reconstructed from its centroid in
  query space using the centre+extent vector convention of
  :mod:`repro.queries.selections`.
"""

from __future__ import annotations

from typing import Dict, List, Set

import numpy as np

from repro.common.validation import require
from repro.core.error import PrequentialErrorEstimator
from repro.core.predictor import DatalessPredictor


class DriftDetector:
    """Flags quanta whose predictive error has degraded."""

    def __init__(
        self,
        factor: float = 2.5,
        absolute_floor: float = 0.05,
        recent_window: int = 6,
        min_history: int = 12,
        recovery_observations: int = 6,
    ) -> None:
        require(factor > 1.0, "factor must exceed 1.0")
        require(recent_window >= 2, "recent_window must be >= 2")
        require(min_history > recent_window, "min_history must exceed recent_window")
        self.factor = factor
        self.absolute_floor = absolute_floor
        self.recent_window = recent_window
        self.min_history = min_history
        self.recovery_observations = recovery_observations
        self._flagged: Dict[int, int] = {}  # quantum -> observations since flag

    def check(self, errors: PrequentialErrorEstimator, quantum_id: int) -> bool:
        """Update flag state after a new residual; True if newly flagged.

        Call after each prequential record for the quantum.
        """
        if quantum_id in self._flagged:
            self._flagged[quantum_id] += 1
            if self._flagged[quantum_id] >= self.recovery_observations:
                del self._flagged[quantum_id]
            return False
        if errors.n_observations(quantum_id) < self.min_history:
            return False
        recent = errors.recent_mean(quantum_id, last=self.recent_window)
        historical = errors.historical_mean(quantum_id)
        if recent is None or historical is None:
            return False
        threshold = max(self.factor * historical, self.absolute_floor)
        if recent > threshold:
            self._flagged[quantum_id] = 0
            return True
        return False

    def is_flagged(self, quantum_id: int) -> bool:
        return quantum_id in self._flagged

    @property
    def flagged_quanta(self) -> Set[int]:
        return set(self._flagged)


class DataUpdateMonitor:
    """Invalidates learned state overlapped by base-data changes."""

    def invalidate_overlapping(
        self, predictor: DatalessPredictor, lows: np.ndarray, highs: np.ndarray
    ) -> int:
        """Reset every quantum whose subspace box intersects [lows, highs].

        Returns the number of quanta invalidated.  The quantum's subspace
        box is decoded from its centroid under the (centre..., extent...)
        query-vector convention; for radius queries the single trailing
        extent applies to every dimension.
        """
        return len(self.invalidate_overlapping_ids(predictor, lows, highs))

    def invalidate_overlapping_ids(
        self, predictor: DatalessPredictor, lows: np.ndarray, highs: np.ndarray
    ) -> List[int]:
        """Like :meth:`invalidate_overlapping`, returning the quantum ids.

        The id list lets callers cascade the invalidation to derived
        state — notably evicting exactly these quanta's entries from the
        agent's answer cache.
        """
        if not predictor.quantizer.is_warm:
            # Nothing learned yet: be conservative and reset any buffers.
            predictor.reset_all()
            return list(predictor.quantum_ids())
        lows = np.asarray(lows, dtype=float).ravel()
        highs = np.asarray(highs, dtype=float).ravel()
        d = lows.shape[0]
        invalidated: List[int] = []
        centroids = predictor.quantizer.centroids
        for quantum_id in predictor.quantum_ids():
            if quantum_id >= len(centroids):
                continue
            box_lo, box_hi = self._quantum_box(centroids[quantum_id], d)
            if np.all(box_hi >= lows) and np.all(box_lo <= highs):
                predictor.reset_quantum(quantum_id)
                invalidated.append(quantum_id)
        return invalidated

    @staticmethod
    def _quantum_box(centroid: np.ndarray, d: int):
        """(lows, highs) of the subspace a quantum centroid describes."""
        center = centroid[:d]
        extents = centroid[d:]
        if extents.shape[0] == d:  # range queries: per-dimension half-widths
            half = np.abs(extents)
        elif extents.shape[0] == 1:  # radius queries: one radius
            half = np.full(d, abs(float(extents[0])))
        else:  # kNN or unknown encoding: be conservative
            half = np.full(d, np.inf)
        return center - half, center + half
