"""The associative predictor (objective O3, RT1.3).

Unifies query-space quantization (O1) and answer-space models (O2):
"associating specific query space quanta with methods, models, and answers
used to predict results for future queries, depending on their position in
the query space."

:class:`DatalessPredictor` is the pure learning component — it never
touches base data or cost meters.  The :class:`~repro.core.agent.SEAAgent`
wires it to an exact engine and a cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.common.errors import NotTrainedError
from repro.common.validation import require
from repro.core.answer_models import AnswerModelFactory, QuantumModel
from repro.core.error import PrequentialErrorEstimator
from repro.core.quantization import QuerySpaceQuantizer


@dataclass
class Prediction:
    """A predicted answer with its provenance and reliability estimate."""

    value: np.ndarray
    quantum_id: int
    error_estimate: Optional[float]
    novelty: float
    reliable: bool

    @property
    def scalar(self) -> float:
        """Convenience for 1-d answers."""
        return float(self.value[0])


class DatalessPredictor:
    """Query-driven learner mapping query vectors to answers."""

    def __init__(
        self,
        answer_dim: int = 1,
        quantizer: Optional[QuerySpaceQuantizer] = None,
        factory: Optional[AnswerModelFactory] = None,
        error_estimator: Optional[PrequentialErrorEstimator] = None,
        novelty_limit: float = 3.0,
    ) -> None:
        require(novelty_limit > 0, "novelty_limit must be positive")
        self.answer_dim = answer_dim
        self.quantizer = quantizer or QuerySpaceQuantizer()
        self.factory = factory or AnswerModelFactory("linear")
        self.errors = error_estimator or PrequentialErrorEstimator()
        self.novelty_limit = novelty_limit
        self._models: Dict[int, QuantumModel] = {}
        self.n_observed = 0
        # Per-quantum mutation counter: bumped whenever a quantum's model
        # state changes (observe, drift reset, data-update invalidation).
        # Cached answers stamp the version they were predicted under, so
        # a serve-time comparison can prove an entry is not stale.
        self._versions: Dict[int, int] = {}

    # Training ----------------------------------------------------------
    def observe(self, vector, answer) -> int:
        """Absorb one (query vector, true answer) pair; returns quantum id.

        Performs the prequential step: if the target quantum can already
        predict, its prediction error on this pair is recorded *before*
        the pair updates the model.
        """
        v = np.asarray(vector, dtype=float).ravel()
        quantum_id = self.quantizer.observe(v)
        model = self._models.setdefault(
            quantum_id, QuantumModel(self.factory, answer_dim=self.answer_dim)
        )
        if model.is_trained:
            self.errors.record(quantum_id, model.predict(v), answer)
        model.add(v, answer)
        self.n_observed += 1
        self._versions[quantum_id] = self._versions.get(quantum_id, 0) + 1
        return quantum_id

    # Inference -----------------------------------------------------------
    def predict(self, vector) -> Prediction:
        """Predict the answer for an unseen query vector.

        Raises :class:`NotTrainedError` if no quantum can serve the query
        at all.  ``reliable`` is False when the error estimate is missing
        or the query is far from every known quantum.
        """
        v = np.asarray(vector, dtype=float).ravel()
        assigned = self.quantizer.assign(v)
        quantum_id = assigned
        model = self._models.get(quantum_id)
        borrowed = False
        if model is None or not model.is_trained:
            model, quantum_id = self._nearest_trained(v, assigned)
            borrowed = True
        value = model.predict(v)
        error = self.errors.estimate(quantum_id)
        novelty = self.quantizer.novelty(v)
        # A *borrowed* model (the query's own quantum is untrained, e.g.
        # freshly invalidated) answers best-effort but must never be
        # treated as reliable: its error history describes a different
        # subspace, not this query's.
        reliable = (
            not borrowed
            and error is not None
            and novelty <= self.novelty_limit
        )
        return Prediction(
            value=value,
            quantum_id=quantum_id,
            error_estimate=error,
            novelty=novelty,
            reliable=reliable,
        )

    def predict_batch(self, vectors) -> List[Optional[Prediction]]:
        """Predict answers for ``n`` query vectors in vectorized calls.

        Equivalent to ``[predict(v) for v in vectors]`` bit for bit, but
        quantum assignment and novelty run as one broadcast each, and each
        quantum's answer model evaluates its whole row group in a single
        matrix call.  Rows no quantum can serve (where :meth:`predict`
        raises :class:`NotTrainedError`) come back as ``None`` instead, so
        one cold row does not poison the batch.
        """
        x = np.atleast_2d(np.asarray(vectors, dtype=float))
        n = x.shape[0]
        if n == 0:
            return []
        assigned, novelty = self.quantizer.assign_novelty_batch(x)
        # Resolve each row's effective (model, quantum) — borrowing from
        # the nearest trained quantum exactly as predict() does.
        effective: List[Optional[int]] = [None] * n
        borrowed_flags = np.zeros(n, dtype=bool)
        groups: Dict[int, List[int]] = {}
        for i in range(n):
            quantum_id = int(assigned[i])
            model = self._models.get(quantum_id)
            if model is None or not model.is_trained:
                try:
                    _, quantum_id = self._nearest_trained(x[i], quantum_id)
                except NotTrainedError:
                    continue
                borrowed_flags[i] = True
            effective[i] = quantum_id
            groups.setdefault(quantum_id, []).append(i)
        values = np.empty((n, self.answer_dim))
        for quantum_id, rows in groups.items():
            model = self._models[quantum_id]
            values[rows] = model.predict_batch(x[rows])
        # The estimator is read-only here, so one quantile per distinct
        # quantum covers every row routed to it.
        error_by_quantum = {
            quantum_id: self.errors.estimate(quantum_id) for quantum_id in groups
        }
        out: List[Optional[Prediction]] = []
        for i in range(n):
            quantum_id = effective[i]
            if quantum_id is None:
                out.append(None)
                continue
            error = error_by_quantum[quantum_id]
            reliable = (
                not borrowed_flags[i]
                and error is not None
                and novelty[i] <= self.novelty_limit
            )
            out.append(
                Prediction(
                    value=values[i],
                    quantum_id=quantum_id,
                    error_estimate=error,
                    novelty=float(novelty[i]),
                    reliable=reliable,
                )
            )
        return out

    def _nearest_trained(self, v: np.ndarray, preferred: int):
        """Fallback: serve from the nearest quantum that has a usable model."""
        trained = {
            qid: m for qid, m in self._models.items() if m.is_trained
        }
        if not trained:
            raise NotTrainedError(
                "no quantum has enough training queries to predict yet"
            )
        if preferred in trained:
            return trained[preferred], preferred
        centroids = self.quantizer.centroids
        best_qid = min(
            trained,
            key=lambda qid: float(np.linalg.norm(centroids[qid] - v))
            if qid < len(centroids)
            else float("inf"),
        )
        return trained[best_qid], best_qid

    # Maintenance hooks ---------------------------------------------------
    def model_for(self, quantum_id: int) -> Optional[QuantumModel]:
        return self._models.get(quantum_id)

    def reset_quantum(self, quantum_id: int) -> None:
        """Invalidate one quantum's model and error history."""
        model = self._models.get(quantum_id)
        if model is not None:
            model.reset()
        self.errors.forget(quantum_id)
        self._versions[quantum_id] = self._versions.get(quantum_id, 0) + 1

    def version_of(self, quantum_id: int) -> int:
        """Monotonic mutation counter for one quantum's learned state."""
        return self._versions.get(quantum_id, 0)

    def reset_all(self) -> None:
        for quantum_id in list(self._models):
            self.reset_quantum(quantum_id)

    def quantum_ids(self):
        return list(self._models)

    def set_decay(self, rate: float) -> None:
        """Enable exponential sample aging on every quantum model."""
        for model in self._models.values():
            model.decay_rate = rate

    # Introspection -------------------------------------------------------
    def state_bytes(self) -> int:
        """Total footprint of the learned state — the paper's storage claim.

        Compare with the base-data bytes a cache/sample-based baseline
        must keep: this is models + bounded buffers only.
        """
        return (
            self.quantizer.state_bytes()
            + self.errors.state_bytes()
            + sum(m.state_bytes() for m in self._models.values())
        )

    def centroid_of(self, quantum_id: int) -> np.ndarray:
        centroids = self.quantizer.centroids
        require(0 <= quantum_id < len(centroids), f"no quantum {quantum_id}")
        return centroids[quantum_id]
