"""Synthetic data sets.

The paper's motivating domains (earth science, genomics, finance) share
multi-dimensional, multi-modal numeric data.  The generators here produce:

* gaussian-mixture tables — clustered multi-dimensional data, the standard
  stand-in for real sensor/science data with density structure;
* uniform tables — the unstructured worst case;
* scored relations — (key, score) pairs with zipf-skewed scores for the
  rank-join experiments;
* tables with values missing completely at random, for the imputation
  experiments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.rng import SeedLike, make_rng
from repro.common.validation import require
from repro.data.tabular import Table


def gaussian_mixture_table(
    n_rows: int,
    dims: Sequence[str] = ("x0", "x1"),
    n_components: int = 4,
    value_column: str = "value",
    domain: Tuple[float, float] = (0.0, 100.0),
    spread: float = 6.0,
    seed: SeedLike = None,
    name: str = "data",
    value_bytes: int = 8,
) -> Table:
    """Clustered points in ``domain``^d plus a correlated value column.

    The ``value`` column is a smooth nonlinear function of the coordinates
    with additive noise, so dependence statistics (correlation, regression
    coefficients) vary across subspaces — which is what makes per-quantum
    answer models (RT1.2) non-trivial.
    """
    require(n_rows >= 1, "n_rows must be >= 1")
    require(n_components >= 1, "n_components must be >= 1")
    rng = make_rng(seed)
    d = len(dims)
    lo, hi = domain
    centers = rng.uniform(lo + spread, hi - spread, size=(n_components, d))
    assignment = rng.integers(n_components, size=n_rows)
    points = centers[assignment] + rng.normal(scale=spread, size=(n_rows, d))
    points = np.clip(points, lo, hi)
    columns: Dict[str, np.ndarray] = {
        dim: points[:, j] for j, dim in enumerate(dims)
    }
    weights = rng.uniform(-1.0, 1.0, size=d)
    scale = (hi - lo) / 4.0
    value = (
        np.sin(points @ weights / scale) * 10.0
        + points @ rng.uniform(0.0, 0.5, size=d)
        + rng.normal(scale=1.0, size=n_rows)
    )
    columns[value_column] = value
    return Table(columns, name=name, value_bytes=value_bytes)


def uniform_table(
    n_rows: int,
    dims: Sequence[str] = ("x0", "x1"),
    value_column: Optional[str] = "value",
    domain: Tuple[float, float] = (0.0, 100.0),
    seed: SeedLike = None,
    name: str = "uniform",
) -> Table:
    """Uniform points; the no-structure baseline data set."""
    require(n_rows >= 1, "n_rows must be >= 1")
    rng = make_rng(seed)
    lo, hi = domain
    columns: Dict[str, np.ndarray] = {
        dim: rng.uniform(lo, hi, size=n_rows) for dim in dims
    }
    if value_column is not None:
        columns[value_column] = rng.normal(size=n_rows)
    return Table(columns, name=name)


def scored_relation(
    n_rows: int,
    key_space: int,
    score_skew: float = 2.0,
    seed: SeedLike = None,
    name: str = "relation",
    value_bytes: int = 8,
) -> Table:
    """A (key, score) relation for rank-join.

    Keys are uniform over ``key_space`` — so the expected number of join
    matches per key is ``n_rows / key_space``, the selectivity knob of the
    crossover experiments.  Scores follow ``uniform**score_skew``: skewed
    toward 0 with a thin high tail, which is what makes sorted-access
    early termination effective (few rows hold the top scores).
    """
    require(n_rows >= 1, "n_rows must be >= 1")
    require(key_space >= 1, "key_space must be >= 1")
    require(score_skew > 0, "score_skew must be positive")
    rng = make_rng(seed)
    keys = rng.integers(key_space, size=n_rows)
    scores = rng.uniform(0.0, 1.0, size=n_rows) ** score_skew
    return Table(
        {"key": keys.astype(np.int64), "score": scores},
        name=name,
        value_bytes=value_bytes,
    )


def table_with_missing(
    base: Table,
    missing_columns: Sequence[str],
    missing_rate: float,
    seed: SeedLike = None,
    sentinel: float = np.nan,
) -> Tuple[Table, Dict[str, np.ndarray]]:
    """Knock out values completely at random; returns (table, truth).

    ``truth`` maps each affected column to the original values of the rows
    that were masked (indexed by the returned table's ``_missing_<col>``
    boolean columns are not added; callers use NaN positions).
    """
    require(0.0 < missing_rate < 1.0, "missing_rate must be in (0, 1)")
    rng = make_rng(seed)
    truth: Dict[str, np.ndarray] = {}
    out = base
    for column in missing_columns:
        values = out.column(column).astype(float).copy()
        mask = rng.uniform(size=values.shape[0]) < missing_rate
        truth[column] = values.copy()
        values[mask] = sentinel
        out = out.with_column(column, values)
    return out, truth
