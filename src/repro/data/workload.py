"""Analyst workload generation.

P2's viability "rests on leveraging known and widely accepted workload
characteristics, namely that queries define overlapping data subspaces
[17]-[20], [25]".  A :class:`WorkloadGenerator` models a population of
analysts whose interest concentrates around a small number of hotspots in
the data domain; queries are ranges or radii drawn around those hotspots.
Interest *drift* (RT1.4) is modelled by moving/replacing hotspots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.rng import SeedLike, make_rng
from repro.common.validation import require
from repro.queries.aggregates import Aggregate, Count
from repro.queries.query import AnalyticsQuery
from repro.queries.selections import RadiusSelection, RangeSelection


@dataclass
class InterestProfile:
    """Where analyst attention currently concentrates.

    ``hotspots`` is (h, d): h interest centres in d dimensions;
    ``hotspot_scale`` is how far query centres scatter around a hotspot;
    ``extent_range`` bounds the query half-width / radius draws.
    """

    hotspots: np.ndarray
    hotspot_scale: float = 4.0
    extent_range: Tuple[float, float] = (2.0, 10.0)

    def __post_init__(self) -> None:
        self.hotspots = np.atleast_2d(np.asarray(self.hotspots, dtype=float))
        require(self.hotspot_scale > 0, "hotspot_scale must be positive")
        lo, hi = self.extent_range
        require(0 < lo <= hi, "extent_range must satisfy 0 < lo <= hi")

    @classmethod
    def random(
        cls,
        n_hotspots: int,
        dim: int,
        domain: Tuple[float, float] = (0.0, 100.0),
        hotspot_scale: float = 4.0,
        extent_range: Tuple[float, float] = (2.0, 10.0),
        seed: SeedLike = None,
    ) -> "InterestProfile":
        rng = make_rng(seed)
        lo, hi = domain
        margin = (hi - lo) * 0.1
        hotspots = rng.uniform(lo + margin, hi - margin, size=(n_hotspots, dim))
        return cls(hotspots, hotspot_scale, extent_range)

    @classmethod
    def from_table(
        cls,
        table,
        columns: Sequence[str],
        n_hotspots: int,
        hotspot_scale: float = 4.0,
        extent_range: Tuple[float, float] = (2.0, 10.0),
        seed: SeedLike = None,
    ) -> "InterestProfile":
        """Hotspots located at random *data points* of ``table``.

        Analysts explore where data actually lives (the overlapping-
        subspace workload property of P2), so data-aligned hotspots are
        the realistic default for experiments.
        """
        rng = make_rng(seed)
        require(n_hotspots >= 1, "n_hotspots must be >= 1")
        idx = rng.choice(table.n_rows, size=n_hotspots, replace=False)
        points = table.matrix(columns)[idx]
        return cls(points, hotspot_scale, extent_range)

    def drifted(
        self, shift: float, seed: SeedLike = None, replace_fraction: float = 0.0
    ) -> "InterestProfile":
        """A new profile whose hotspots moved by ~``shift`` in each coordinate.

        ``replace_fraction`` of the hotspots jump to entirely new random
        locations (interest in old subspaces disappears, RT5.3).
        """
        rng = make_rng(seed)
        moved = self.hotspots + rng.normal(scale=shift, size=self.hotspots.shape)
        if replace_fraction > 0:
            n_replace = int(round(replace_fraction * len(moved)))
            if n_replace:
                lo = self.hotspots.min() - shift
                hi = self.hotspots.max() + shift
                idx = rng.choice(len(moved), size=n_replace, replace=False)
                moved[idx] = rng.uniform(lo, hi, size=(n_replace, moved.shape[1]))
        return InterestProfile(moved, self.hotspot_scale, self.extent_range)


class WorkloadGenerator:
    """Draws analyst queries concentrated around an interest profile."""

    def __init__(
        self,
        table_name: str,
        columns: Sequence[str],
        profile: InterestProfile,
        aggregate: Optional[Aggregate] = None,
        kind: str = "range",
        seed: SeedLike = None,
    ) -> None:
        require(kind in ("range", "radius"), f"unknown query kind {kind!r}")
        require(
            profile.hotspots.shape[1] == len(columns),
            "profile dimensionality must match columns",
        )
        self.table_name = table_name
        self.columns = tuple(columns)
        self.profile = profile
        self.aggregate = aggregate if aggregate is not None else Count()
        self.kind = kind
        self._rng = make_rng(seed)

    def next_query(self) -> AnalyticsQuery:
        """Draw one query near a random hotspot."""
        hotspot = self.profile.hotspots[
            int(self._rng.integers(len(self.profile.hotspots)))
        ]
        center = hotspot + self._rng.normal(
            scale=self.profile.hotspot_scale, size=hotspot.shape[0]
        )
        lo, hi = self.profile.extent_range
        if self.kind == "radius":
            radius = float(self._rng.uniform(lo, hi))
            selection = RadiusSelection(self.columns, center, radius)
        else:
            half = self._rng.uniform(lo, hi, size=hotspot.shape[0])
            selection = RangeSelection.around(self.columns, center, half)
        return AnalyticsQuery(self.table_name, selection, self.aggregate)

    def batch(self, n: int) -> List[AnalyticsQuery]:
        require(n >= 0, "n must be non-negative")
        return [self.next_query() for _ in range(n)]

    def stream(self) -> Iterator[AnalyticsQuery]:
        while True:
            yield self.next_query()

    def zoom_session(self, depth: int = 5, shrink: float = 0.6) -> List[AnalyticsQuery]:
        """A drill-down session: successive queries zoom into one region.

        This is the exploratory pattern of Sec. III.A (Penny redefining
        "the size of the queried data subspace to gain deeper
        understanding"): each step keeps the centre near the previous one
        and shrinks the extent by ``shrink``.  Such sessions are maximally
        overlapping — the best case for caches and learned models alike.
        """
        require(depth >= 1, "depth must be >= 1")
        require(0.0 < shrink < 1.0, "shrink must be in (0, 1)")
        first = self.next_query()
        session = [first]
        center = np.array(
            first.selection.center
            if hasattr(first.selection, "center")
            else first.selection.point,
            dtype=float,
        )
        if self.kind == "radius":
            extent = first.selection.radius
        else:
            extent = first.selection.half_widths.copy()
        for _ in range(depth - 1):
            center = center + self._rng.normal(
                scale=float(np.max(extent)) * 0.2, size=center.shape[0]
            )
            extent = extent * shrink
            if self.kind == "radius":
                selection = RadiusSelection(self.columns, center, float(extent))
            else:
                selection = RangeSelection.around(self.columns, center, extent)
            session.append(
                AnalyticsQuery(self.table_name, selection, self.aggregate)
            )
        return session

    def with_profile(self, profile: InterestProfile) -> "WorkloadGenerator":
        """Same generator parameters under a new (e.g. drifted) profile."""
        clone = WorkloadGenerator(
            self.table_name,
            self.columns,
            profile,
            aggregate=self.aggregate,
            kind=self.kind,
        )
        clone._rng = self._rng
        return clone


def train_test_split_queries(
    queries: Sequence[AnalyticsQuery], train_fraction: float, seed: SeedLike = None
) -> Tuple[List[AnalyticsQuery], List[AnalyticsQuery]]:
    """Shuffle and split a workload into training and evaluation queries."""
    require(0.0 < train_fraction < 1.0, "train_fraction must be in (0, 1)")
    rng = make_rng(seed)
    order = rng.permutation(len(queries))
    cut = int(round(train_fraction * len(queries)))
    train = [queries[i] for i in order[:cut]]
    test = [queries[i] for i in order[cut:]]
    return train, test
