"""Data sets and analyst workloads.

* :mod:`repro.data.tabular` — the in-memory columnar :class:`Table`.
* :mod:`repro.data.generators` — synthetic data sets (gaussian mixtures,
  uniform/zipf-scored relations, graphs with community structure).
* :mod:`repro.data.workload` — analyst workload generators with the
  property the SEA paradigm rests on: overlapping, locality-heavy query
  subspaces whose focus drifts over time (Sec. IV P2, RT1.4).
"""

from repro.data.tabular import Table
from repro.data.generators import (
    gaussian_mixture_table,
    uniform_table,
    scored_relation,
    table_with_missing,
)
from repro.data.workload import (
    InterestProfile,
    WorkloadGenerator,
    train_test_split_queries,
)

__all__ = [
    "Table",
    "gaussian_mixture_table",
    "uniform_table",
    "scored_relation",
    "table_with_missing",
    "InterestProfile",
    "WorkloadGenerator",
    "train_test_split_queries",
]
