"""In-memory columnar tables.

:class:`Table` is the base-data representation used throughout the
simulator: a named set of equally long numpy columns.  It supports the
minimum relational algebra the experiments need (mask selection,
projection, slicing, vertical stacking) and knows its serialized size so
the cost model can charge scans and transfers in bytes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.common.errors import QueryError
from repro.common.validation import require

_BYTES_PER_VALUE = 8  # float64 / int64 storage


class Table:
    """A named collection of equally long numpy columns.

    ``value_bytes`` sets the *serialized* width of one value for the cost
    model (default 8, the in-memory float64 width).  Real analytical
    records often carry wide payloads (strings, arrays) alongside the few
    numeric columns a query touches; a larger ``value_bytes`` models such
    tables without materialising the payload bytes in RAM.
    """

    def __init__(
        self,
        columns: Dict[str, np.ndarray],
        name: str = "table",
        value_bytes: int = _BYTES_PER_VALUE,
    ) -> None:
        require(len(columns) >= 1, "a table needs at least one column")
        require(value_bytes >= 1, "value_bytes must be >= 1")
        self.value_bytes = value_bytes
        arrays = {key: np.asarray(value) for key, value in columns.items()}
        lengths = {arr.shape[0] for arr in arrays.values()}
        require(
            len(lengths) == 1,
            f"all columns must have equal length, got lengths {sorted(lengths)}",
        )
        for key, arr in arrays.items():
            require(arr.ndim == 1, f"column {key!r} must be 1-dimensional")
            # Columns are immutable after construction (the zero-copy
            # paths — column()/engine kernels — hand out these arrays
            # directly), so store read-only views: an engine that tries
            # to mutate partition data in place fails loudly instead of
            # silently corrupting every later query.  Callers keep their
            # own writable reference to the original buffer.
            view = arr.view()
            view.flags.writeable = False
            arrays[key] = view
        self.name = name
        self._columns = arrays
        # Columns never change after construction, so the shape-derived
        # sizes are fixed; the cost model queries them on every charge.
        self._n_rows = lengths.pop()
        self._n_columns = len(arrays)

    @classmethod
    def from_arrays(
        cls,
        columns: Dict[str, np.ndarray],
        name: str = "table",
        value_bytes: int = _BYTES_PER_VALUE,
    ) -> "Table":
        """Trusted zero-validation construction from equal-length 1-D arrays.

        Internal fast path for hot materialization loops (the columnar
        store builds thousands of small tables per batched wave, where
        ``__init__``'s validation dominates).  Callers must hand over
        fresh arrays they will not touch again — they are marked
        read-only in place rather than defensively re-viewed.
        """
        self = cls.__new__(cls)
        self.value_bytes = value_bytes
        self.name = name
        n_rows = 0
        for arr in columns.values():
            arr.flags.writeable = False
            n_rows = arr.shape[0]
        self._columns = columns
        self._n_rows = n_rows
        self._n_columns = len(columns)
        return self

    # Basic properties ----------------------------------------------------
    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        return self._n_columns

    @property
    def n_bytes(self) -> int:
        """Serialized size used by the cost model."""
        return self.n_rows * self.n_columns * self.value_bytes

    @property
    def row_bytes(self) -> int:
        return self.n_columns * self.value_bytes

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise QueryError(
                f"table {self.name!r} has no column {name!r}; "
                f"available: {self.column_names}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, rows={self.n_rows}, "
            f"columns={self.column_names})"
        )

    # Relational operations -------------------------------------------------
    def matrix(self, columns: Optional[Sequence[str]] = None) -> np.ndarray:
        """Stack the named columns into an (n_rows, k) float matrix.

        Columns already stored as float64 feed ``column_stack`` directly —
        the stack itself copies, so the per-column ``astype`` would be a
        second, redundant copy on this hot path (radius/kNN masks,
        predictor featurization).
        """
        names = list(columns) if columns is not None else self.column_names
        parts = []
        for c in names:
            arr = self.column(c)
            if arr.dtype != np.float64:
                arr = arr.astype(float)
            parts.append(arr)
        return np.column_stack(parts)

    def select(self, mask: np.ndarray) -> "Table":
        """Rows where ``mask`` is true, as a new table."""
        mask = np.asarray(mask)
        require(
            mask.shape == (self.n_rows,),
            f"mask shape {mask.shape} does not match {self.n_rows} rows",
        )
        return Table(
            {key: arr[mask] for key, arr in self._columns.items()},
            name=self.name,
            value_bytes=self.value_bytes,
        )

    def take(self, indices) -> "Table":
        """Rows at the given integer positions, as a new table."""
        idx = np.asarray(indices, dtype=int)
        return Table(
            {key: arr[idx] for key, arr in self._columns.items()},
            name=self.name,
            value_bytes=self.value_bytes,
        )

    def project(self, columns: Sequence[str]) -> "Table":
        """Keep only the named columns."""
        return Table(
            {c: self.column(c) for c in columns},
            name=self.name,
            value_bytes=self.value_bytes,
        )

    def slice_rows(self, start: int, stop: int) -> "Table":
        """Rows in [start, stop), as a new table."""
        return Table(
            {key: arr[start:stop] for key, arr in self._columns.items()},
            name=self.name,
            value_bytes=self.value_bytes,
        )

    def with_column(self, name: str, values) -> "Table":
        """Copy of this table with one column added or replaced."""
        arr = np.asarray(values)
        require(
            arr.shape == (self.n_rows,),
            f"new column length {arr.shape} does not match {self.n_rows} rows",
        )
        columns = dict(self._columns)
        columns[name] = arr
        return Table(columns, name=self.name, value_bytes=self.value_bytes)

    @staticmethod
    def concat(tables: Iterable["Table"], name: Optional[str] = None) -> "Table":
        """Vertically stack tables with identical schemas."""
        parts = list(tables)
        require(len(parts) >= 1, "concat needs at least one table")
        schema = parts[0].column_names
        for t in parts[1:]:
            require(
                t.column_names == schema,
                f"schema mismatch: {t.column_names} vs {schema}",
            )
        return Table(
            {c: np.concatenate([t.column(c) for t in parts]) for c in schema},
            name=name if name is not None else parts[0].name,
            value_bytes=parts[0].value_bytes,
        )

    # I/O -----------------------------------------------------------------
    def to_csv(self, path: str, float_format: str = "%.10g") -> None:
        """Write the table as a header-first CSV file."""
        matrix = np.column_stack(
            [np.asarray(self._columns[c], dtype=float) for c in self.column_names]
        )
        np.savetxt(
            path,
            matrix,
            delimiter=",",
            header=",".join(self.column_names),
            comments="",
            fmt=float_format,
        )

    @classmethod
    def from_csv(
        cls, path: str, name: Optional[str] = None, value_bytes: int = _BYTES_PER_VALUE
    ) -> "Table":
        """Read a header-first numeric CSV file written by :meth:`to_csv`
        (or any numeric CSV with a header row)."""
        with open(path) as handle:
            header = handle.readline().strip()
        require(header, f"{path}: empty file")
        names = [c.strip() for c in header.split(",")]
        data = np.loadtxt(path, delimiter=",", skiprows=1, ndmin=2)
        require(
            data.shape[1] == len(names),
            f"{path}: {data.shape[1]} data columns vs {len(names)} headers",
        )
        columns = {c: data[:, i] for i, c in enumerate(names)}
        table_name = name if name is not None else path.rsplit("/", 1)[-1]
        return cls(columns, name=table_name, value_bytes=value_bytes)

    def split(self, n_parts: int) -> List["Table"]:
        """Split into ``n_parts`` contiguous row ranges (sizes differ by <=1)."""
        require(n_parts >= 1, "n_parts must be >= 1")
        bounds = np.linspace(0, self.n_rows, n_parts + 1).astype(int)
        return [self.slice_rows(bounds[i], bounds[i + 1]) for i in range(n_parts)]
