"""Deterministic randomness helpers.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`.  Centralising the coercion here keeps
experiments reproducible: the same seed always yields the same cluster
layout, data set, workload and model initialisation.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces a nondeterministic generator; an ``int`` produces a
    deterministic one; an existing generator is passed through untouched so
    callers can share a stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list:
    """Derive ``count`` independent generators from one seed.

    Uses numpy's ``spawn`` mechanism so the children are statistically
    independent streams, which matters when e.g. each simulated data node
    draws its own data.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = make_rng(seed)
    return list(parent.spawn(count))
