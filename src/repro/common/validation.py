"""Argument-validation helpers used across the library.

These raise :class:`repro.common.errors.ConfigurationError` with uniform
messages, keeping constructor bodies short and the failure mode consistent.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.common.errors import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(value: float, name: str) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def require_in_range(
    value: float, name: str, low: float, high: float, inclusive: bool = True
) -> None:
    """Require ``low <= value <= high`` (or strict if ``inclusive=False``)."""
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not ok:
        raise ConfigurationError(
            f"{name} must be in {'[' if inclusive else '('}{low}, {high}"
            f"{']' if inclusive else ')'}, got {value!r}"
        )


def require_matrix(
    array: Any, name: str, n_cols: Optional[int] = None
) -> np.ndarray:
    """Coerce ``array`` to a 2-d float ndarray, checking the column count.

    Returns the coerced array so callers can write
    ``x = require_matrix(x, "x", n_cols=self.dim)``.
    """
    arr = np.asarray(array, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ConfigurationError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if n_cols is not None and arr.shape[1] != n_cols:
        raise ConfigurationError(
            f"{name} must have {n_cols} columns, got {arr.shape[1]}"
        )
    return arr
