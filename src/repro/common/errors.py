"""Exception hierarchy for the SEA reproduction.

All library exceptions derive from :class:`ReproError` so callers can catch
one base class.  Subclasses signal *which layer* misbehaved rather than
encoding error details in string matching.
"""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class NotTrainedError(ReproError):
    """A learned model was asked to predict before being trained."""


class StorageError(ReproError):
    """A storage-layer operation failed (missing table, bad partition...)."""


class QueryError(ReproError):
    """A query was malformed or unsupported by the engine asked to run it."""


class FaultError(ReproError):
    """Base class for injected-fault conditions (see :mod:`repro.faults`)."""


class NodeUnavailableError(FaultError):
    """A read was routed to a node that is currently crashed.

    Raised *before* any cost is charged: a dead node refuses the
    connection, it does not serve bytes.
    """

    def __init__(self, node_id: str, partition_id: str = "") -> None:
        self.node_id = node_id
        self.partition_id = partition_id
        detail = f" serving {partition_id}" if partition_id else ""
        super().__init__(f"node {node_id} is down{detail}")


class TransientReadError(FaultError):
    """A read attempt failed after the node served (and charged) the bytes.

    Retryable: the next attempt draws fresh from the injector's seeded
    stream.  The failed attempt's scan bytes remain charged — that is the
    visible retry overhead.
    """

    def __init__(self, node_id: str, partition_id: str = "") -> None:
        self.node_id = node_id
        self.partition_id = partition_id
        detail = f" of {partition_id}" if partition_id else ""
        super().__init__(f"transient read error on {node_id}{detail}")


class PartitionLostError(FaultError):
    """Every replica of a partition is down (or exhausted its retries)."""

    def __init__(self, partition_id: str, tried=()) -> None:
        self.partition_id = partition_id
        self.tried = tuple(tried)
        detail = f" (tried {list(self.tried)})" if self.tried else ""
        super().__init__(f"all replicas of {partition_id} unavailable{detail}")


class WriteError(FaultError):
    """A write-path operation failed (WAL sync, delta apply, compaction).

    Carries the fault ``point`` that struck (``"wal_sync"``,
    ``"checkpoint"``, ...).  Transient: the compactor retries these with
    capped backoff; an exhausted retry budget re-raises the last one.
    """

    def __init__(self, point: str = "", detail: str = "") -> None:
        self.point = point
        self.detail = detail
        where = f" at {point!r}" if point else ""
        extra = f": {detail}" if detail else ""
        super().__init__(f"write-path fault{where}{extra}")


class WriteCrashError(WriteError):
    """An injected crash struck mid-write and killed the simulated process.

    Not retryable: volatile state (delta partitions, unsynced WAL tail)
    is lost and only the durable image survives.  The store refuses
    further writes until :meth:`DistributedStore.recover` replays the
    WAL back to a verified state.
    """

    def __init__(self, point: str = "", detail: str = "") -> None:
        WriteError.__init__(self, point, detail)
        where = f" at {point!r}" if point else ""
        extra = f" ({detail})" if detail else ""
        self.args = (
            f"simulated process crash mid-write{where}{extra}; "
            "recover() required before further writes",
        )


class RecoveryError(FaultError):
    """Crash-consistent recovery could not restore a verified state.

    Raised when :meth:`DistributedStore.recover` is called without
    durable ingest enabled, or when the rebuilt state fails the
    ``synopses_consistent``/``columnar_consistent`` verification.
    """


class WorkerCrashError(ReproError):
    """A process-pool scan worker died mid-batch.

    Recorded (not raised) by the process executor: the batch is
    recomputed inline on the caller, so answers are unaffected; the
    typed error preserves what happened for tests and diagnostics.
    """

    def __init__(self, label: str = "", detail: str = "") -> None:
        self.label = label
        self.detail = detail
        extra = f": {detail}" if detail else ""
        super().__init__(
            f"process-pool worker crashed during batch {label!r}{extra}; "
            "batch recomputed serially on the caller"
        )


class AdmissionRejectedError(ReproError):
    """The serving gateway refused to admit (or shed) a request.

    Typed backpressure: ``reason`` says which control fired —
    ``"queue_full"`` (the bounded admission queue is at capacity and no
    expired request could be shed), ``"tenant_quota"`` (the tenant's
    per-handle pending budget is exhausted), ``"deadline"`` (the request
    was shed because its deadline passed while it waited), or
    ``"closed"`` (the gateway is draining and admits nothing new).
    Clients are expected to back off and retry; the gateway never
    silently drops a request.
    """

    def __init__(
        self,
        reason: str,
        tenant: str = "",
        detail: str = "",
        queue_depth: int = 0,
    ) -> None:
        self.reason = reason
        self.tenant = tenant
        self.detail = detail
        self.queue_depth = queue_depth
        who = f" for tenant {tenant!r}" if tenant else ""
        extra = f": {detail}" if detail else ""
        super().__init__(f"admission rejected ({reason}){who}{extra}")


class GatewayClosedError(AdmissionRejectedError):
    """A request reached a gateway that has been closed (or is draining)."""

    def __init__(self, tenant: str = "", detail: str = "") -> None:
        AdmissionRejectedError.__init__(self, "closed", tenant, detail)


class RoutingError(ReproError):
    """A geo-distributed query could not be routed to any capable node."""


class OptimizationError(ReproError):
    """The optimizer could not produce an execution plan."""
