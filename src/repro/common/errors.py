"""Exception hierarchy for the SEA reproduction.

All library exceptions derive from :class:`ReproError` so callers can catch
one base class.  Subclasses signal *which layer* misbehaved rather than
encoding error details in string matching.
"""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class NotTrainedError(ReproError):
    """A learned model was asked to predict before being trained."""


class StorageError(ReproError):
    """A storage-layer operation failed (missing table, bad partition...)."""


class QueryError(ReproError):
    """A query was malformed or unsupported by the engine asked to run it."""


class RoutingError(ReproError):
    """A geo-distributed query could not be routed to any capable node."""


class OptimizationError(ReproError):
    """The optimizer could not produce an execution plan."""
