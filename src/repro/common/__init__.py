"""Shared utilities: errors, randomness, cost accounting, validation.

Everything in :mod:`repro` builds on these primitives.  They are deliberately
dependency-free (numpy only) so that every other subpackage can import them
without cycles.
"""

from repro.common.errors import (
    ReproError,
    ConfigurationError,
    NotTrainedError,
    StorageError,
    QueryError,
    FaultError,
    NodeUnavailableError,
    TransientReadError,
    PartitionLostError,
)
from repro.common.accounting import CostReport, CostMeter, CostRates
from repro.common.rng import make_rng, spawn_rngs
from repro.common.validation import (
    require,
    require_positive,
    require_in_range,
    require_matrix,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "NotTrainedError",
    "StorageError",
    "QueryError",
    "FaultError",
    "NodeUnavailableError",
    "TransientReadError",
    "PartitionLostError",
    "CostReport",
    "CostMeter",
    "CostRates",
    "make_rng",
    "spawn_rngs",
    "require",
    "require_positive",
    "require_in_range",
    "require_matrix",
]
