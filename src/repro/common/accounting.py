"""Cost accounting for the simulated distributed substrate.

The paper's claims (Sec. II.A) are architectural: traditional processing
"accesses large numbers of data server nodes ... crunching and transferring
large volumes of data".  We therefore meter exactly those quantities and
derive simulated wall time and money cost from them through a
:class:`CostRates` model, instead of relying on the wall clock of the host
machine (which would measure Python, not the architecture).

Rates default to round numbers in the ballpark of 2018 commodity clusters:
disk scan ~100 MB/s, LAN ~1 GB/s effective, WAN ~50 MB/s with 50 ms RTT,
task startup ~50 ms (a container launch), one stack layer ~2 ms of
dispatch/serialisation per node involved.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields
from typing import Dict, Iterable

from repro.common.validation import require_positive


@dataclass(frozen=True)
class CostRates:
    """Conversion rates from metered operations to seconds and dollars."""

    disk_bytes_per_sec: float = 100e6
    cpu_bytes_per_sec: float = 500e6
    lan_bytes_per_sec: float = 1e9
    wan_bytes_per_sec: float = 50e6
    lan_rtt_sec: float = 0.5e-3
    wan_rtt_sec: float = 50e-3
    task_startup_sec: float = 0.05
    layer_overhead_sec: float = 2e-3
    point_read_penalty: float = 10.0
    dollars_per_node_sec: float = 0.10 / 3600.0
    dollars_per_wan_gb: float = 0.08

    def __post_init__(self) -> None:
        for f in fields(self):
            require_positive(getattr(self, f.name), f.name)


@dataclass
class CostReport:
    """Immutable-ish snapshot of the resources one execution consumed.

    ``elapsed_sec`` is *critical-path* simulated time (parallel work on many
    nodes overlaps); ``node_sec`` is total occupancy (work summed over
    nodes), which drives the money cost.
    """

    elapsed_sec: float = 0.0
    node_sec: float = 0.0
    bytes_scanned: int = 0
    bytes_shipped_lan: int = 0
    bytes_shipped_wan: int = 0
    nodes_touched: int = 0
    tasks_launched: int = 0
    layers_crossed: int = 0
    rows_examined: int = 0
    messages: int = 0

    def dollars(self, rates: CostRates = CostRates()) -> float:
        """Money cost: node occupancy plus WAN egress."""
        return (
            self.node_sec * rates.dollars_per_node_sec
            + self.bytes_shipped_wan / 1e9 * rates.dollars_per_wan_gb
        )

    def merged_parallel(self, other: "CostReport") -> "CostReport":
        """Combine two reports for work that ran concurrently.

        Elapsed time is the max of the branches; all consumption totals add.
        """
        merged = self._added_totals(other)
        merged.elapsed_sec = max(self.elapsed_sec, other.elapsed_sec)
        return merged

    def merged_sequential(self, other: "CostReport") -> "CostReport":
        """Combine two reports for work that ran one after the other."""
        merged = self._added_totals(other)
        merged.elapsed_sec = self.elapsed_sec + other.elapsed_sec
        return merged

    def _added_totals(self, other: "CostReport") -> "CostReport":
        return CostReport(
            elapsed_sec=0.0,
            node_sec=self.node_sec + other.node_sec,
            bytes_scanned=self.bytes_scanned + other.bytes_scanned,
            bytes_shipped_lan=self.bytes_shipped_lan + other.bytes_shipped_lan,
            bytes_shipped_wan=self.bytes_shipped_wan + other.bytes_shipped_wan,
            nodes_touched=self.nodes_touched + other.nodes_touched,
            tasks_launched=self.tasks_launched + other.tasks_launched,
            layers_crossed=self.layers_crossed + other.layers_crossed,
            rows_examined=self.rows_examined + other.rows_examined,
            messages=self.messages + other.messages,
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view, convenient for tabulation in benchmarks."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class CostMeter:
    """Mutable accumulator used while simulating one execution.

    Engines create a meter, charge operations against it, then ``freeze`` it
    into a :class:`CostReport`.  The meter tracks the set of distinct nodes
    it has touched so ``nodes_touched`` counts unique nodes, matching the
    paper's "number of data server nodes accessed" notion.

    ``observer`` is an optional :class:`repro.obs.Observer`: when set, every
    charge is mirrored to ``observer.on_charge(kind, node, bytes, seconds)``
    and components downstream of the meter (the BDAS stack, engines) can
    reach the observer through :attr:`observer`.  The default ``None`` keeps
    the hot path to a single identity check — no allocations per charge.

    The meter is thread-safe: every charge mutates the report under one
    lock, so concurrent charging (e.g. a shared meter touched from
    worker threads) never loses or tears an update.  Note that while the
    *totals* are safe under concurrency, float ``node_sec``/``elapsed_sec``
    sums are only bit-reproducible when the charge order is — which is why
    :mod:`repro.parallel` keeps all charging on one thread.
    """

    def __init__(
        self, rates: CostRates = CostRates(), observer=None
    ) -> None:
        self.rates = rates
        self.observer = observer if (observer is not None and observer.enabled) else None
        self._report = CostReport()
        self._touched: set = set()
        self._lock = threading.Lock()

    @property
    def elapsed_sec(self) -> float:
        return self._report.elapsed_sec

    def charge_scan(self, node_id: str, num_bytes: int, rows: int = 0) -> float:
        """Charge a sequential disk scan of ``num_bytes`` on one node."""
        seconds = num_bytes / self.rates.disk_bytes_per_sec
        with self._lock:
            self._touched.add(node_id)
            self._report.bytes_scanned += num_bytes
            self._report.rows_examined += rows
            self._report.node_sec += seconds
        if self.observer is not None:
            self.observer.on_charge("scan", node_id, num_bytes, seconds)
        return seconds

    def charge_point_read(self, node_id: str, num_bytes: int, rows: int = 0) -> float:
        """Charge random (non-sequential) reads of ``num_bytes`` on one node.

        Point reads pay :attr:`CostRates.point_read_penalty` over the
        sequential scan rate — the reason full scans win once a selection
        covers most of a table (the P4 crossover).
        """
        seconds = (
            num_bytes * self.rates.point_read_penalty / self.rates.disk_bytes_per_sec
        )
        with self._lock:
            self._touched.add(node_id)
            self._report.bytes_scanned += num_bytes
            self._report.rows_examined += rows
            self._report.node_sec += seconds
        if self.observer is not None:
            self.observer.on_charge("point_read", node_id, num_bytes, seconds)
        return seconds

    def charge_cpu(self, node_id: str, num_bytes: int) -> float:
        """Charge CPU crunching of ``num_bytes`` on one node."""
        seconds = num_bytes / self.rates.cpu_bytes_per_sec
        with self._lock:
            self._touched.add(node_id)
            self._report.node_sec += seconds
        if self.observer is not None:
            self.observer.on_charge("cpu", node_id, num_bytes, seconds)
        return seconds

    def charge_transfer(
        self, src: str, dst: str, num_bytes: int, wan: bool = False
    ) -> float:
        """Charge a network transfer between two nodes; returns seconds."""
        if wan:
            seconds = self.rates.wan_rtt_sec + num_bytes / self.rates.wan_bytes_per_sec
        else:
            seconds = self.rates.lan_rtt_sec + num_bytes / self.rates.lan_bytes_per_sec
        with self._lock:
            if wan:
                self._report.bytes_shipped_wan += num_bytes
            else:
                self._report.bytes_shipped_lan += num_bytes
            self._touched.add(src)
            self._touched.add(dst)
            self._report.messages += 1
            self._report.node_sec += seconds
        if self.observer is not None:
            self.observer.on_charge(
                "transfer_wan" if wan else "transfer_lan", src, num_bytes, seconds
            )
        return seconds

    def charge_task_startup(self, node_id: str, count: int = 1) -> float:
        """Charge launching ``count`` task containers on one node."""
        seconds = count * self.rates.task_startup_sec
        with self._lock:
            self._touched.add(node_id)
            self._report.tasks_launched += count
            self._report.node_sec += seconds
        if self.observer is not None:
            self.observer.on_charge("task_startup", node_id, 0, seconds)
        return seconds

    def charge_layers(self, node_id: str, layers: int) -> float:
        """Charge crossing ``layers`` stack layers on one node."""
        seconds = layers * self.rates.layer_overhead_sec
        with self._lock:
            self._touched.add(node_id)
            self._report.layers_crossed += layers
            self._report.node_sec += seconds
        if self.observer is not None:
            self.observer.on_charge("layers", node_id, 0, seconds)
        return seconds

    def advance(self, seconds: float) -> None:
        """Advance critical-path (elapsed) time by ``seconds``."""
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds}")
        with self._lock:
            self._report.elapsed_sec += seconds

    def freeze(self) -> CostReport:
        """Snapshot the meter into an independent :class:`CostReport`."""
        with self._lock:
            snapshot = CostReport(**self._report.as_dict())
            snapshot.nodes_touched = len(self._touched)
        return snapshot

    def _touch(self, node_id: str) -> None:
        with self._lock:
            self._touched.add(node_id)

    @staticmethod
    def total(reports: Iterable[CostReport], parallel: bool = False) -> CostReport:
        """Fold many reports into one, sequentially or in parallel."""
        result = CostReport()
        for report in reports:
            if parallel:
                result = result.merged_parallel(report)
            else:
                result = result.merged_sequential(report)
        return result
