"""k-nearest-neighbour regression and classification.

RT2.2 calls out "kNN regression and kNN classification" as fundamental
operations.  These estimators back both the ad-hoc ML-on-subspace operators
and the missing-value imputation engine.  Search is k-d-tree-based with a
brute-force fallback for tiny data.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

import numpy as np

from repro.common.errors import NotTrainedError
from repro.common.validation import require, require_matrix
from repro.ml.kdtree import KDTree

_BRUTE_FORCE_LIMIT = 64


class _BaseKNN:
    def __init__(self, n_neighbors: int = 5, weights: str = "uniform") -> None:
        require(n_neighbors >= 1, "n_neighbors must be >= 1")
        require(weights in ("uniform", "distance"), f"unknown weights {weights!r}")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self._x: Optional[np.ndarray] = None
        self._tree: Optional[KDTree] = None

    def _fit_points(self, x) -> np.ndarray:
        x = require_matrix(x, "x")
        self._x = x
        self._tree = KDTree(x) if x.shape[0] > _BRUTE_FORCE_LIMIT else None
        return x

    def _neighbors(self, q: np.ndarray):
        """(distances, indices) of the nearest k stored points to ``q``."""
        k = min(self.n_neighbors, self._x.shape[0])
        if self._tree is not None:
            return self._tree.query(q, k=k)
        diff = self._x - q
        dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        idx = np.argsort(dist)[:k]
        return dist[idx], idx

    def _neighbor_weights(self, dists: np.ndarray) -> np.ndarray:
        if self.weights == "uniform":
            return np.ones_like(dists)
        # Inverse-distance weights; an exact match dominates entirely.
        if np.any(dists == 0.0):
            w = np.zeros_like(dists)
            w[dists == 0.0] = 1.0
            return w
        return 1.0 / dists


class KNeighborsRegressor(_BaseKNN):
    """Predict the (weighted) mean target of the k nearest training rows."""

    def fit(self, x, y) -> "KNeighborsRegressor":
        x = self._fit_points(x)
        y = np.asarray(y, dtype=float).ravel()
        require(x.shape[0] == y.shape[0], "x and y row counts differ")
        self._y = y
        return self

    def predict(self, x) -> np.ndarray:
        if self._x is None:
            raise NotTrainedError("KNeighborsRegressor.predict called before fit")
        x = require_matrix(x, "x", n_cols=self._x.shape[1])
        out = np.empty(x.shape[0])
        for i, q in enumerate(x):
            dists, idx = self._neighbors(q)
            w = self._neighbor_weights(dists)
            out[i] = float(np.average(self._y[idx], weights=w))
        return out


class KNeighborsClassifier(_BaseKNN):
    """Predict the (weighted) majority label of the k nearest training rows."""

    def fit(self, x, y) -> "KNeighborsClassifier":
        x = self._fit_points(x)
        labels = np.asarray(y).ravel()
        require(x.shape[0] == labels.shape[0], "x and y row counts differ")
        self._y = labels
        return self

    def predict(self, x) -> np.ndarray:
        if self._x is None:
            raise NotTrainedError("KNeighborsClassifier.predict called before fit")
        x = require_matrix(x, "x", n_cols=self._x.shape[1])
        out = []
        for q in x:
            dists, idx = self._neighbors(q)
            w = self._neighbor_weights(dists)
            votes: Counter = Counter()
            for label, weight in zip(self._y[idx], w):
                votes[label] += weight
            out.append(max(votes.items(), key=lambda item: item[1])[0])
        return np.asarray(out)
