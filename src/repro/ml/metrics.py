"""Error metrics used by models, tests and benchmarks.

All functions accept array-likes, coerce to float ndarrays and validate that
shapes agree, raising ``ValueError`` on mismatch (the numpy broadcast rules
would otherwise silently produce nonsense for e.g. (n,) vs (n,1) inputs).
"""

from __future__ import annotations

import numpy as np


def _paired(y_true, y_pred):
    true = np.asarray(y_true, dtype=float).ravel()
    pred = np.asarray(y_pred, dtype=float).ravel()
    if true.shape != pred.shape:
        raise ValueError(f"shape mismatch: {true.shape} vs {pred.shape}")
    if true.size == 0:
        raise ValueError("metrics are undefined for empty inputs")
    return true, pred


def mean_squared_error(y_true, y_pred) -> float:
    true, pred = _paired(y_true, y_pred)
    return float(np.mean((true - pred) ** 2))


def root_mean_squared_error(y_true, y_pred) -> float:
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true, y_pred) -> float:
    true, pred = _paired(y_true, y_pred)
    return float(np.mean(np.abs(true - pred)))


def median_absolute_error(y_true, y_pred) -> float:
    true, pred = _paired(y_true, y_pred)
    return float(np.median(np.abs(true - pred)))


def relative_error(y_true, y_pred, floor: float = 1.0) -> np.ndarray:
    """Per-query relative error ``|true - pred| / max(|true|, floor)``.

    The ``floor`` guards against division by (near-)zero true answers, the
    standard convention in the AQP literature where e.g. a count of 0 would
    otherwise make any prediction infinitely wrong.
    """
    true, pred = _paired(y_true, y_pred)
    denom = np.maximum(np.abs(true), floor)
    return np.abs(true - pred) / denom


def median_relative_error(y_true, y_pred, floor: float = 1.0) -> float:
    return float(np.median(relative_error(y_true, y_pred, floor=floor)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination; 1.0 is perfect, 0.0 matches the mean."""
    true, pred = _paired(y_true, y_pred)
    ss_res = np.sum((true - pred) ** 2)
    ss_tot = np.sum((true - np.mean(true)) ** 2)
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return float(1.0 - ss_res / ss_tot)


def accuracy_score(y_true, y_pred) -> float:
    true = np.asarray(y_true).ravel()
    pred = np.asarray(y_pred).ravel()
    if true.shape != pred.shape:
        raise ValueError(f"shape mismatch: {true.shape} vs {pred.shape}")
    if true.size == 0:
        raise ValueError("accuracy is undefined for empty inputs")
    return float(np.mean(true == pred))
