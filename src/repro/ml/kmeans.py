"""Batch and online k-means vector quantization.

RT1.1 ("Query-space Quantization") calls for models that "efficiently and
scalably learn the structure of the query space".  The online variant here
is the standard sequential k-means / competitive-learning rule: each new
query vector pulls its winning centroid toward it with a per-centroid
learning rate 1/n.  It supports *growing* (spawn a centroid when a query is
far from every existing quantum) and *decaying* (forget counts so quanta can
track drifting interest, RT1.4).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.errors import NotTrainedError
from repro.common.rng import SeedLike, make_rng
from repro.common.validation import require, require_matrix, require_positive


def _pairwise_sq_dist(x: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared euclidean distances, shape (len(x), len(centers))."""
    diff = x[:, None, :] - centers[None, :, :]
    return np.einsum("ijk,ijk->ij", diff, diff)


class KMeans:
    """Lloyd's algorithm with k-means++ initialisation."""

    def __init__(
        self,
        n_clusters: int = 8,
        max_iter: int = 100,
        tol: float = 1e-6,
        seed: SeedLike = None,
    ) -> None:
        require(n_clusters >= 1, f"n_clusters must be >= 1, got {n_clusters}")
        require_positive(max_iter, "max_iter")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self._rng = make_rng(seed)
        self.cluster_centers_: Optional[np.ndarray] = None
        self.inertia_: float = float("inf")
        self.n_iter_: int = 0

    def fit(self, x) -> "KMeans":
        x = require_matrix(x, "x")
        require(
            x.shape[0] >= self.n_clusters,
            f"need at least n_clusters={self.n_clusters} samples, got {x.shape[0]}",
        )
        centers = self._init_plus_plus(x)
        for iteration in range(self.max_iter):
            distances = _pairwise_sq_dist(x, centers)
            labels = distances.argmin(axis=1)
            new_centers = centers.copy()
            for cluster in range(self.n_clusters):
                members = x[labels == cluster]
                if len(members):
                    new_centers[cluster] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the worst-served point.
                    worst = distances.min(axis=1).argmax()
                    new_centers[cluster] = x[worst]
            shift = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            self.n_iter_ = iteration + 1
            if shift < self.tol:
                break
        self.cluster_centers_ = centers
        self.inertia_ = float(_pairwise_sq_dist(x, centers).min(axis=1).sum())
        return self

    def predict(self, x) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise NotTrainedError("KMeans.predict called before fit")
        x = require_matrix(x, "x", n_cols=self.cluster_centers_.shape[1])
        return _pairwise_sq_dist(x, self.cluster_centers_).argmin(axis=1)

    def fit_predict(self, x) -> np.ndarray:
        return self.fit(x).predict(x)

    def _init_plus_plus(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        centers = np.empty((self.n_clusters, x.shape[1]))
        first = int(self._rng.integers(n))
        centers[0] = x[first]
        closest = np.full(n, np.inf)
        for i in range(1, self.n_clusters):
            diff = x - centers[i - 1]
            closest = np.minimum(closest, np.einsum("ij,ij->i", diff, diff))
            total = closest.sum()
            if total <= 0:
                centers[i:] = x[int(self._rng.integers(n))]
                break
            probs = closest / total
            centers[i] = x[int(self._rng.choice(n, p=probs))]
        return centers


class OnlineKMeans:
    """Sequential k-means with optional growth and decay.

    Parameters
    ----------
    n_clusters:
        Target number of quanta.  With ``grow_threshold`` set, the model
        starts empty and spawns centroids on demand up to ``max_clusters``.
    grow_threshold:
        If a sample's distance to its nearest centroid exceeds this value
        (in the input's own units) a new centroid is spawned there, provided
        capacity remains.  ``None`` disables growth: the first
        ``n_clusters`` samples become the initial centroids.
    decay:
        Multiplicative forgetting factor in (0, 1] applied to per-centroid
        counts on each update; values < 1 let centroids keep adapting to a
        drifting stream instead of freezing as counts grow.
    """

    def __init__(
        self,
        n_clusters: int = 16,
        grow_threshold: Optional[float] = None,
        max_clusters: Optional[int] = None,
        decay: float = 1.0,
    ) -> None:
        require(n_clusters >= 1, f"n_clusters must be >= 1, got {n_clusters}")
        require(0.0 < decay <= 1.0, f"decay must be in (0, 1], got {decay}")
        self.n_clusters = n_clusters
        self.grow_threshold = grow_threshold
        self.max_clusters = max_clusters if max_clusters is not None else n_clusters
        require(
            self.max_clusters >= n_clusters or grow_threshold is not None,
            "max_clusters must be >= n_clusters",
        )
        self.decay = decay
        self.centers: list = []
        self.counts: list = []

    @property
    def n_active(self) -> int:
        """Number of centroids spawned so far."""
        return len(self.centers)

    @property
    def cluster_centers_(self) -> np.ndarray:
        if not self.centers:
            raise NotTrainedError("OnlineKMeans has seen no data yet")
        return np.asarray(self.centers)

    def partial_fit(self, vector) -> int:
        """Absorb one sample; returns the index of its (possibly new) quantum."""
        v = np.asarray(vector, dtype=float).ravel()
        if not self.centers:
            self.centers.append(v.copy())
            self.counts.append(1.0)
            return 0
        distances = np.linalg.norm(self.cluster_centers_ - v, axis=1)
        winner = int(distances.argmin())
        should_grow = (
            self.grow_threshold is not None
            and distances[winner] > self.grow_threshold
            and len(self.centers) < self.max_clusters
        )
        seed_capacity = (
            self.grow_threshold is None and len(self.centers) < self.n_clusters
        )
        if should_grow or seed_capacity:
            self.centers.append(v.copy())
            self.counts.append(1.0)
            return len(self.centers) - 1
        self.counts[winner] = self.counts[winner] * self.decay + 1.0
        rate = 1.0 / self.counts[winner]
        self.centers[winner] = self.centers[winner] + rate * (v - self.centers[winner])
        return winner

    def predict(self, x) -> np.ndarray:
        centers = self.cluster_centers_
        x = require_matrix(x, "x", n_cols=centers.shape[1])
        return _pairwise_sq_dist(x, centers).argmin(axis=1)

    def assign(self, vector) -> int:
        """Nearest-quantum index for one sample, without updating the model."""
        centers = self.cluster_centers_
        v = np.asarray(vector, dtype=float).ravel()
        return int(np.linalg.norm(centers - v, axis=1).argmin())

    def assign_batch(self, x) -> np.ndarray:
        """Nearest-quantum index per row of ``x``, without updating the model.

        Computes the full distance matrix in one broadcast; each row's
        norms (and therefore its argmin) are bitwise equal to what
        :meth:`assign` computes for that row alone.
        """
        centers = self.cluster_centers_
        x = require_matrix(x, "x", n_cols=centers.shape[1])
        distances = np.linalg.norm(x[:, None, :] - centers[None, :, :], axis=2)
        return distances.argmin(axis=1)

    def distance_to(self, vector, index: int) -> float:
        """Euclidean distance from ``vector`` to centroid ``index``."""
        centers = self.cluster_centers_
        v = np.asarray(vector, dtype=float).ravel()
        return float(np.linalg.norm(centers[index] - v))

    def remove(self, index: int) -> None:
        """Purge a quantum (used when interest in a subspace disappears)."""
        if not 0 <= index < len(self.centers):
            raise IndexError(f"no centroid {index}")
        del self.centers[index]
        del self.counts[index]
