"""Gradient-boosted regression trees.

RT3.3 observes that for different data subspaces "different regression base
models or boosting-based ensemble models [41], [42]" win; the model-selection
experiments (E10) therefore need a boosted ensemble to select between.  This
is classic least-squares gradient boosting [Friedman 2001]: fit shallow
trees to residuals with shrinkage.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.common.errors import NotTrainedError
from repro.common.validation import require, require_matrix
from repro.ml.tree import DecisionTreeRegressor


class GradientBoostingRegressor:
    """Least-squares boosting with shallow CART base learners."""

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        seed=None,
    ) -> None:
        require(n_estimators >= 1, "n_estimators must be >= 1")
        require(0.0 < learning_rate <= 1.0, "learning_rate must be in (0, 1]")
        require(0.0 < subsample <= 1.0, "subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self._rng = np.random.default_rng(seed)
        self._init: float = 0.0
        self._trees: List[DecisionTreeRegressor] = []

    def fit(self, x, y) -> "GradientBoostingRegressor":
        x = require_matrix(x, "x")
        y = np.asarray(y, dtype=float).ravel()
        require(x.shape[0] == y.shape[0], "x and y row counts differ")
        require(y.shape[0] >= 1, "cannot fit on zero samples")
        self._init = float(y.mean())
        self._trees = []
        prediction = np.full(y.shape[0], self._init)
        n_rows = y.shape[0]
        batch = max(1, int(round(self.subsample * n_rows)))
        for _ in range(self.n_estimators):
            residual = y - prediction
            if self.subsample < 1.0:
                idx = self._rng.choice(n_rows, size=batch, replace=False)
            else:
                idx = slice(None)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            )
            tree.fit(x[idx], residual[idx])
            prediction = prediction + self.learning_rate * tree.predict(x)
            self._trees.append(tree)
            if np.allclose(residual, 0.0):
                break
        return self

    def predict(self, x) -> np.ndarray:
        if not self._trees:
            raise NotTrainedError(
                "GradientBoostingRegressor.predict called before fit"
            )
        x = require_matrix(x, "x")
        out = np.full(x.shape[0], self._init)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(x)
        return out

    @property
    def n_trees(self) -> int:
        return len(self._trees)

    def staged_predict(self, x):
        """Yield predictions after each boosting stage (for early-stop eval)."""
        if not self._trees:
            raise NotTrainedError(
                "GradientBoostingRegressor.staged_predict called before fit"
            )
        x = require_matrix(x, "x")
        out = np.full(x.shape[0], self._init)
        for tree in self._trees:
            out = out + self.learning_rate * tree.predict(x)
            yield out.copy()
