"""From-scratch statistical machine-learning primitives on numpy.

The SEA vision rests on "statistical machine learning (SML) models"
(Sec. III.B).  No ML toolkit is available offline, so this package provides
the models the rest of the library needs:

* :mod:`repro.ml.linear` — ordinary least squares / ridge regression.
* :mod:`repro.ml.kmeans` — batch and online k-means vector quantization
  (the query-space quantizer of RT1.1 builds on the online variant).
* :mod:`repro.ml.tree` — CART decision trees for regression and
  classification (the learned optimizer of RT3 uses the classifier).
* :mod:`repro.ml.boosting` — gradient-boosted regression trees
  (the "boosting-based ensemble models [41], [42]" of RT3.3).
* :mod:`repro.ml.knn` — k-nearest-neighbour regression/classification.
* :mod:`repro.ml.kdtree` — an exact k-d tree used by kNN search and the
  big-data-less spatial indexes.
* :mod:`repro.ml.metrics` — error metrics shared by tests and benchmarks.
"""

from repro.ml.scaling import StandardScaler, MinMaxScaler
from repro.ml.linear import LinearRegression, RidgeRegression, polynomial_features
from repro.ml.kmeans import KMeans, OnlineKMeans
from repro.ml.tree import DecisionTreeRegressor, DecisionTreeClassifier
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.knn import KNeighborsRegressor, KNeighborsClassifier
from repro.ml.kdtree import KDTree
from repro.ml.sketches import CountMinSketch, DyadicCountMin, ReservoirSample
from repro.ml.metrics import (
    mean_squared_error,
    root_mean_squared_error,
    mean_absolute_error,
    median_absolute_error,
    relative_error,
    median_relative_error,
    r2_score,
    accuracy_score,
)

__all__ = [
    "StandardScaler",
    "MinMaxScaler",
    "LinearRegression",
    "RidgeRegression",
    "polynomial_features",
    "KMeans",
    "OnlineKMeans",
    "DecisionTreeRegressor",
    "DecisionTreeClassifier",
    "GradientBoostingRegressor",
    "KNeighborsRegressor",
    "KNeighborsClassifier",
    "KDTree",
    "CountMinSketch",
    "DyadicCountMin",
    "ReservoirSample",
    "mean_squared_error",
    "root_mean_squared_error",
    "mean_absolute_error",
    "median_absolute_error",
    "relative_error",
    "median_relative_error",
    "r2_score",
    "accuracy_score",
]
