"""CART decision trees (regression and classification).

The learned optimizer of RT3 trains a classifier over logged execution
features to pick MapReduce vs coordinator-cohort on the fly, and the
boosted ensembles of RT3.3 stack shallow regression trees.  Both are plain
CART with variance / Gini impurity and exhaustive threshold search over
(sub-sampled) split candidates — simple, deterministic, dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.common.errors import NotTrainedError
from repro.common.validation import require, require_matrix

_MAX_SPLIT_CANDIDATES = 64


@dataclass
class _Node:
    """One tree node; leaves have ``feature = -1``."""

    feature: int = -1
    threshold: float = 0.0
    value: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0

    def count(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + self.left.count() + self.right.count()


def _split_candidates(column: np.ndarray) -> np.ndarray:
    """Midpoints between consecutive distinct values, subsampled."""
    unique = np.unique(column)
    if unique.shape[0] < 2:
        return np.empty(0)
    midpoints = (unique[:-1] + unique[1:]) / 2.0
    if midpoints.shape[0] > _MAX_SPLIT_CANDIDATES:
        idx = np.linspace(0, midpoints.shape[0] - 1, _MAX_SPLIT_CANDIDATES)
        midpoints = midpoints[idx.astype(int)]
    return midpoints


class _BaseTree:
    def __init__(
        self, max_depth: int = 6, min_samples_leaf: int = 1, min_samples_split: int = 2
    ) -> None:
        require(max_depth >= 1, f"max_depth must be >= 1, got {max_depth}")
        require(min_samples_leaf >= 1, "min_samples_leaf must be >= 1")
        require(min_samples_split >= 2, "min_samples_split must be >= 2")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self._root: Optional[_Node] = None
        self._n_features = 0

    @property
    def n_nodes(self) -> int:
        if self._root is None:
            return 0
        return self._root.count()

    def _predict_values(self, x) -> np.ndarray:
        if self._root is None:
            raise NotTrainedError(f"{type(self).__name__}.predict called before fit")
        x = require_matrix(x, "x", n_cols=self._n_features)
        out = np.empty(x.shape[0])
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        leaf_value = self._leaf_value(y)
        if (
            depth >= self.max_depth
            or y.shape[0] < self.min_samples_split
            or self._is_pure(y)
        ):
            return _Node(value=leaf_value)
        best = self._best_split(x, y)
        if best is None:
            return _Node(value=leaf_value)
        feature, threshold = best
        mask = x[:, feature] <= threshold
        left = self._grow(x[mask], y[mask], depth + 1)
        right = self._grow(x[~mask], y[~mask], depth + 1)
        return _Node(feature=feature, threshold=threshold, value=leaf_value,
                     left=left, right=right)

    def _best_split(self, x: np.ndarray, y: np.ndarray):
        best_score = self._impurity(y) * y.shape[0]
        best = None
        for feature in range(x.shape[1]):
            column = x[:, feature]
            for threshold in _split_candidates(column):
                mask = column <= threshold
                n_left = int(mask.sum())
                n_right = y.shape[0] - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                score = (
                    self._impurity(y[mask]) * n_left
                    + self._impurity(y[~mask]) * n_right
                )
                if score < best_score - 1e-12:
                    best_score = score
                    best = (feature, float(threshold))
        return best

    # Subclass hooks -----------------------------------------------------
    def _impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _leaf_value(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _is_pure(self, y: np.ndarray) -> bool:
        raise NotImplementedError


class DecisionTreeRegressor(_BaseTree):
    """CART regression tree minimising within-leaf variance."""

    def fit(self, x, y) -> "DecisionTreeRegressor":
        x = require_matrix(x, "x")
        y = np.asarray(y, dtype=float).ravel()
        require(x.shape[0] == y.shape[0], "x and y row counts differ")
        require(y.shape[0] >= 1, "cannot fit a tree on zero samples")
        self._n_features = x.shape[1]
        self._root = self._grow(x, y, depth=0)
        return self

    def predict(self, x) -> np.ndarray:
        return self._predict_values(x)

    def _impurity(self, y: np.ndarray) -> float:
        return float(y.var()) if y.shape[0] else 0.0

    def _leaf_value(self, y: np.ndarray) -> float:
        return float(y.mean())

    def _is_pure(self, y: np.ndarray) -> bool:
        return bool(np.all(y == y[0]))


class DecisionTreeClassifier(_BaseTree):
    """CART classification tree minimising Gini impurity.

    Labels may be arbitrary hashables; they are mapped to integer codes
    internally and mapped back on prediction.
    """

    def __init__(
        self, max_depth: int = 6, min_samples_leaf: int = 1, min_samples_split: int = 2
    ) -> None:
        super().__init__(max_depth, min_samples_leaf, min_samples_split)
        self.classes_: Optional[np.ndarray] = None

    def fit(self, x, y) -> "DecisionTreeClassifier":
        x = require_matrix(x, "x")
        labels = np.asarray(y).ravel()
        require(x.shape[0] == labels.shape[0], "x and y row counts differ")
        require(labels.shape[0] >= 1, "cannot fit a tree on zero samples")
        self.classes_, codes = np.unique(labels, return_inverse=True)
        self._n_features = x.shape[1]
        self._root = self._grow(x, codes.astype(float), depth=0)
        return self

    def predict(self, x) -> np.ndarray:
        if self.classes_ is None:
            raise NotTrainedError("DecisionTreeClassifier.predict called before fit")
        codes = self._predict_values(x).astype(int)
        return self.classes_[codes]

    def _impurity(self, y: np.ndarray) -> float:
        if y.shape[0] == 0:
            return 0.0
        _, counts = np.unique(y, return_counts=True)
        p = counts / y.shape[0]
        return float(1.0 - np.sum(p**2))

    def _leaf_value(self, y: np.ndarray) -> float:
        codes, counts = np.unique(y, return_counts=True)
        return float(codes[counts.argmax()])

    def _is_pure(self, y: np.ndarray) -> bool:
        return bool(np.all(y == y[0]))
