"""Linear models: ordinary least squares and ridge regression.

These are the workhorse "answer-space models" (RT1.2): per query-quantum the
SEA agent fits a small linear (or low-degree polynomial) model mapping query
parameters to the answer.  Solved via ``numpy.linalg.lstsq`` /
Cholesky-free normal equations with regularisation, which is numerically
adequate at the model sizes used here (tens of features).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.errors import NotTrainedError
from repro.common.validation import require, require_matrix


def _row_stable_matvec(x: np.ndarray, coef: np.ndarray) -> np.ndarray:
    """``x @ coef`` with each row's result independent of the batch size.

    BLAS matvec kernels may pick different accumulation orders depending on
    the number of rows, so ``(X @ c)[i]`` is not always bitwise equal to
    ``X[i:i+1] @ c``.  Batched serving promises byte-identical answers to
    the sequential path, so predictions go through einsum, whose per-row
    accumulation depends only on the feature count.
    """
    return np.einsum("ij,j->i", x, coef)


def polynomial_features(x, degree: int = 2, interaction: bool = True) -> np.ndarray:
    """Expand features with powers (and optionally pairwise interactions).

    For degree 2 and input columns (a, b) the output columns are
    (a, b, a^2, b^2[, a*b]).  The bias column is *not* added here — the
    linear models manage their own intercepts.
    """
    x = require_matrix(x, "x")
    require(degree >= 1, f"degree must be >= 1, got {degree}")
    columns = [x]
    for power in range(2, degree + 1):
        columns.append(x**power)
    if interaction and x.shape[1] > 1 and degree >= 2:
        n = x.shape[1]
        pairs = [x[:, i] * x[:, j] for i in range(n) for j in range(i + 1, n)]
        columns.append(np.stack(pairs, axis=1))
    return np.hstack(columns)


class LinearRegression:
    """Ordinary least squares with an intercept.

    ``fit`` accepts per-sample weights, which the maintenance machinery uses
    to age out stale training queries (RT1.4).
    """

    def __init__(self) -> None:
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, x, y, sample_weight=None) -> "LinearRegression":
        x = require_matrix(x, "x")
        y = np.asarray(y, dtype=float).ravel()
        require(x.shape[0] == y.shape[0], "x and y row counts differ")
        design = np.hstack([np.ones((x.shape[0], 1)), x])
        if sample_weight is not None:
            w = np.sqrt(np.asarray(sample_weight, dtype=float).ravel())
            require(w.shape[0] == y.shape[0], "sample_weight length mismatch")
            design = design * w[:, None]
            y = y * w
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        self.intercept_ = float(solution[0])
        self.coef_ = solution[1:]
        return self

    def predict(self, x) -> np.ndarray:
        if self.coef_ is None:
            raise NotTrainedError("LinearRegression.predict called before fit")
        x = require_matrix(x, "x", n_cols=self.coef_.shape[0])
        return _row_stable_matvec(x, self.coef_) + self.intercept_

    @property
    def n_params(self) -> int:
        """Number of fitted parameters (used for storage-footprint metering)."""
        if self.coef_ is None:
            return 0
        return self.coef_.shape[0] + 1


class RidgeRegression:
    """L2-regularised least squares (intercept not penalised).

    Ridge is the default per-quantum model: quanta can hold very few
    training queries early on, and the regulariser keeps the fit stable
    until more arrive.
    """

    def __init__(self, alpha: float = 1.0) -> None:
        require(alpha >= 0, f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, x, y, sample_weight=None) -> "RidgeRegression":
        x = require_matrix(x, "x")
        y = np.asarray(y, dtype=float).ravel()
        require(x.shape[0] == y.shape[0], "x and y row counts differ")
        if sample_weight is not None:
            w = np.asarray(sample_weight, dtype=float).ravel()
            require(w.shape[0] == y.shape[0], "sample_weight length mismatch")
        else:
            w = np.ones(y.shape[0])
        # Centre so the intercept absorbs the (weighted) means and the
        # penalty applies only to slopes.
        w_sum = w.sum()
        if w_sum <= 0:
            raise ValueError("sample weights must not sum to zero")
        x_mean = (x * w[:, None]).sum(axis=0) / w_sum
        y_mean = float((y * w).sum() / w_sum)
        xc = (x - x_mean) * np.sqrt(w)[:, None]
        yc = (y - y_mean) * np.sqrt(w)
        gram = xc.T @ xc + self.alpha * np.eye(x.shape[1])
        self.coef_ = np.linalg.solve(gram, xc.T @ yc)
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        return self

    def predict(self, x) -> np.ndarray:
        if self.coef_ is None:
            raise NotTrainedError("RidgeRegression.predict called before fit")
        x = require_matrix(x, "x", n_cols=self.coef_.shape[0])
        return _row_stable_matvec(x, self.coef_) + self.intercept_

    @property
    def n_params(self) -> int:
        if self.coef_ is None:
            return 0
        return self.coef_.shape[0] + 1
