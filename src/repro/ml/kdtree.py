"""An exact k-d tree for nearest-neighbour and range search.

This is the workhorse access structure of the big-data-less suite (RT2):
the distributed kNN operator builds one per data node, the imputation
engine uses it to find donor rows, and :class:`repro.ml.knn` uses it when
data is large enough to amortise construction.

The implementation is array-based (no per-node Python objects for points):
nodes store index ranges into a permutation of the input, median-split on
the widest-spread dimension.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.common.validation import require, require_matrix

_LEAF_SIZE = 16


@dataclass
class _KDNode:
    lo: int
    hi: int
    dim: int = -1
    split: float = 0.0
    left: Optional["_KDNode"] = None
    right: Optional["_KDNode"] = None
    mins: Optional[np.ndarray] = None
    maxs: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class KDTree:
    """Static k-d tree over an (n, d) point matrix."""

    def __init__(self, points, leaf_size: int = _LEAF_SIZE) -> None:
        points = require_matrix(points, "points")
        require(points.shape[0] >= 1, "KDTree needs at least one point")
        require(leaf_size >= 1, "leaf_size must be >= 1")
        self._points = points
        self._leaf_size = leaf_size
        self._order = np.arange(points.shape[0])
        self._root = self._build(0, points.shape[0])
        self.n_nodes_visited = 0  # instrumentation for cost accounting

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def dim(self) -> int:
        return self._points.shape[1]

    def _build(self, lo: int, hi: int) -> _KDNode:
        idx = self._order[lo:hi]
        pts = self._points[idx]
        node = _KDNode(lo=lo, hi=hi, mins=pts.min(axis=0), maxs=pts.max(axis=0))
        if hi - lo <= self._leaf_size:
            return node
        spread = node.maxs - node.mins
        dim = int(spread.argmax())
        if spread[dim] == 0.0:
            return node  # all points identical: keep as a leaf
        values = pts[:, dim]
        mid = (hi - lo) // 2
        part = np.argpartition(values, mid)
        self._order[lo:hi] = idx[part]
        node.dim = dim
        node.split = float(self._points[self._order[lo + mid], dim])
        node.left = self._build(lo, lo + mid)
        node.right = self._build(lo + mid, hi)
        return node

    # Nearest neighbours -------------------------------------------------
    def query(self, point, k: int = 1) -> Tuple[np.ndarray, np.ndarray]:
        """Return (distances, indices) of the ``k`` nearest points.

        Distances are euclidean and sorted ascending.  ``k`` is clipped to
        the number of stored points.
        """
        q = np.asarray(point, dtype=float).ravel()
        require(q.shape[0] == self.dim, f"query must be {self.dim}-dimensional")
        k = min(k, self.n_points)
        require(k >= 1, "k must be >= 1")
        # Max-heap of (-dist_sq, index) holding the best k so far.
        heap: List[Tuple[float, int]] = []
        self._search(self._root, q, k, heap)
        best = sorted((-d, i) for d, i in heap)
        dists = np.sqrt(np.array([d for d, _ in best]))
        idxs = np.array([i for _, i in best], dtype=int)
        return dists, idxs

    def _search(self, node: _KDNode, q: np.ndarray, k: int, heap: list) -> None:
        self.n_nodes_visited += 1
        if node.is_leaf:
            idx = self._order[node.lo : node.hi]
            diff = self._points[idx] - q
            dist_sq = np.einsum("ij,ij->i", diff, diff)
            for d, i in zip(dist_sq, idx):
                if len(heap) < k:
                    heapq.heappush(heap, (-d, int(i)))
                elif -d > heap[0][0]:
                    heapq.heapreplace(heap, (-d, int(i)))
            return
        near, far = (
            (node.left, node.right)
            if q[node.dim] <= node.split
            else (node.right, node.left)
        )
        self._search(near, q, k, heap)
        worst = -heap[0][0] if len(heap) == k else np.inf
        if self._box_dist_sq(far, q) < worst:
            self._search(far, q, k, heap)

    def _box_dist_sq(self, node: _KDNode, q: np.ndarray) -> float:
        below = np.maximum(node.mins - q, 0.0)
        above = np.maximum(q - node.maxs, 0.0)
        gap = below + above
        return float(gap @ gap)

    # Range search --------------------------------------------------------
    def query_radius(self, point, radius: float) -> np.ndarray:
        """Indices of all points within euclidean ``radius`` of ``point``."""
        q = np.asarray(point, dtype=float).ravel()
        require(q.shape[0] == self.dim, f"query must be {self.dim}-dimensional")
        require(radius >= 0, "radius must be non-negative")
        hits: List[int] = []
        self._radius_search(self._root, q, radius * radius, hits)
        return np.asarray(sorted(hits), dtype=int)

    def _radius_search(
        self, node: _KDNode, q: np.ndarray, radius_sq: float, hits: list
    ) -> None:
        self.n_nodes_visited += 1
        if self._box_dist_sq(node, q) > radius_sq:
            return
        if node.is_leaf:
            idx = self._order[node.lo : node.hi]
            diff = self._points[idx] - q
            dist_sq = np.einsum("ij,ij->i", diff, diff)
            hits.extend(int(i) for i, d in zip(idx, dist_sq) if d <= radius_sq)
            return
        self._radius_search(node.left, q, radius_sq, hits)
        self._radius_search(node.right, q, radius_sq, hits)

    def query_box(self, lows, highs) -> np.ndarray:
        """Indices of points inside the closed axis-aligned box [lows, highs]."""
        lows = np.asarray(lows, dtype=float).ravel()
        highs = np.asarray(highs, dtype=float).ravel()
        require(lows.shape[0] == self.dim, "box must match tree dimensionality")
        require(highs.shape[0] == self.dim, "box must match tree dimensionality")
        hits: List[int] = []
        self._box_search(self._root, lows, highs, hits)
        return np.asarray(sorted(hits), dtype=int)

    def _box_search(
        self, node: _KDNode, lows: np.ndarray, highs: np.ndarray, hits: list
    ) -> None:
        self.n_nodes_visited += 1
        if np.any(node.maxs < lows) or np.any(node.mins > highs):
            return
        if node.is_leaf:
            idx = self._order[node.lo : node.hi]
            pts = self._points[idx]
            inside = np.all((pts >= lows) & (pts <= highs), axis=1)
            hits.extend(int(i) for i in idx[inside])
            return
        self._box_search(node.left, lows, highs, hits)
        self._box_search(node.right, lows, highs, hits)
