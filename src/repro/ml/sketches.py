"""Streaming summaries: count-min sketch and reservoir sampling.

Sec. II cites "data synopses (e.g., [16])" — the count-min sketch — as
one of the two classical AQP substrates (with sampling).  This module
provides both primitives:

* :class:`CountMinSketch` — point-frequency estimation with the classic
  (epsilon, delta) guarantee, plus *dyadic range counts* for integer
  domains (a stack of sketches, one per resolution level), which turns it
  into a 1-d range-count synopsis.
* :class:`ReservoirSample` — uniform k-out-of-n sampling over a stream.

Both are deliberately small, dependency-free and fully deterministic
given a seed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.common.rng import SeedLike, make_rng
from repro.common.validation import require

_MERSENNE_PRIME = (1 << 61) - 1


class CountMinSketch:
    """The Cormode-Muthukrishnan count-min sketch.

    With ``width = ceil(e / epsilon)`` and ``depth = ceil(ln(1 / delta))``,
    point estimates overcount by at most ``epsilon * N`` with probability
    at least ``1 - delta`` (never undercount).
    """

    def __init__(
        self, width: int = 272, depth: int = 5, seed: SeedLike = 0
    ) -> None:
        require(width >= 2, "width must be >= 2")
        require(depth >= 1, "depth must be >= 1")
        self.width = width
        self.depth = depth
        rng = make_rng(seed)
        self._a = rng.integers(1, _MERSENNE_PRIME, size=depth, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=depth, dtype=np.int64)
        self._table = np.zeros((depth, width), dtype=np.int64)
        self.total = 0

    @classmethod
    def from_error_bounds(
        cls, epsilon: float, delta: float, seed: SeedLike = 0
    ) -> "CountMinSketch":
        require(0 < epsilon < 1, "epsilon must be in (0, 1)")
        require(0 < delta < 1, "delta must be in (0, 1)")
        width = int(np.ceil(np.e / epsilon))
        depth = int(np.ceil(np.log(1.0 / delta)))
        return cls(width=width, depth=max(1, depth), seed=seed)

    def _rows(self, key: int) -> np.ndarray:
        hashed = (self._a * np.int64(key) + self._b) % _MERSENNE_PRIME
        return (hashed % self.width).astype(int)

    def add(self, key: int, count: int = 1) -> None:
        require(count >= 0, "count must be non-negative")
        columns = self._rows(int(key))
        for row, col in enumerate(columns):
            self._table[row, col] += count
        self.total += count

    def estimate(self, key: int) -> int:
        """Point-frequency estimate (never an undercount)."""
        columns = self._rows(int(key))
        return int(min(self._table[row, col] for row, col in enumerate(columns)))

    def state_bytes(self) -> int:
        return int(self._table.nbytes) + int(self._a.nbytes + self._b.nbytes)

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Combine two sketches built with identical parameters/seed.

        Count-min is a linear sketch, so distributed nodes can sketch
        locally and a coordinator merges by addition — the property that
        makes it a *distributed* synopsis.
        """
        require(
            self.width == other.width and self.depth == other.depth,
            "sketch shapes differ",
        )
        require(
            np.array_equal(self._a, other._a) and np.array_equal(self._b, other._b),
            "sketch hash families differ (construct with the same seed)",
        )
        merged = CountMinSketch(self.width, self.depth)
        merged._a, merged._b = self._a, self._b
        merged._table = self._table + other._table
        merged.total = self.total + other.total
        return merged


class DyadicCountMin:
    """Range-count synopsis over an integer domain [0, 2^levels).

    Keeps one count-min sketch per dyadic level; any range decomposes into
    at most ``2 * levels`` dyadic intervals, each a point query on its
    level's sketch.
    """

    def __init__(
        self, levels: int = 16, width: int = 272, depth: int = 5, seed: SeedLike = 0
    ) -> None:
        require(1 <= levels <= 40, "levels must be in [1, 40]")
        self.levels = levels
        self.domain = 1 << levels
        self._sketches = [
            CountMinSketch(width=width, depth=depth, seed=seed)
            for _ in range(levels + 1)
        ]

    def add(self, value: int, count: int = 1) -> None:
        require(0 <= value < self.domain, f"value {value} out of domain")
        for level in range(self.levels + 1):
            self._sketches[level].add(value >> level, count)

    def range_count(self, lo: int, hi: int) -> int:
        """Estimated count of values in [lo, hi] (inclusive)."""
        require(0 <= lo and hi < self.domain, "range out of domain")
        if lo > hi:
            return 0
        total = 0
        for level, start, length in self._decompose(lo, hi + 1):
            total += self._sketches[level].estimate(start >> level)
        return total

    def _decompose(self, lo: int, hi: int):
        """Dyadic intervals covering [lo, hi) exactly."""
        while lo < hi:
            level = 0
            # Largest aligned block starting at lo that fits in [lo, hi).
            while level < self.levels:
                size = 1 << (level + 1)
                if lo % size != 0 or lo + size > hi:
                    break
                level += 1
            yield level, lo, 1 << level
            lo += 1 << level

    def state_bytes(self) -> int:
        return sum(s.state_bytes() for s in self._sketches)


class ReservoirSample:
    """Uniform k-sample over a stream (Vitter's algorithm R)."""

    def __init__(self, capacity: int, seed: SeedLike = 0) -> None:
        require(capacity >= 1, "capacity must be >= 1")
        self.capacity = capacity
        self._rng = make_rng(seed)
        self._items: List = []
        self.n_seen = 0

    def add(self, item) -> None:
        self.n_seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        j = int(self._rng.integers(self.n_seen))
        if j < self.capacity:
            self._items[j] = item

    @property
    def sample(self) -> List:
        return list(self._items)

    def scale_up(self, sample_statistic: float) -> float:
        """Scale a sample count/sum to the stream (n_seen / |sample|)."""
        if not self._items:
            return 0.0
        return sample_statistic * self.n_seen / len(self._items)
