"""Feature scalers.

Learned models in :mod:`repro.core` operate on query vectors whose
coordinates mix very different magnitudes (e.g. a centre coordinate in
[0, 1000] next to a radius in [0, 1]).  Scaling them to comparable ranges is
a precondition for distance-based quantization to be meaningful.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.errors import NotTrainedError
from repro.common.validation import require_matrix


class StandardScaler:
    """Shift to zero mean and scale to unit variance, column-wise.

    Constant columns get a scale of 1 so they map to exactly 0 instead of
    producing NaNs.
    """

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, x) -> "StandardScaler":
        x = require_matrix(x, "x")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, x) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotTrainedError("StandardScaler.transform called before fit")
        x = require_matrix(x, "x", n_cols=self.mean_.shape[0])
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotTrainedError("StandardScaler.inverse_transform called before fit")
        x = require_matrix(x, "x", n_cols=self.mean_.shape[0])
        return x * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale each column to the [0, 1] range seen at fit time.

    Constant columns map to 0.  Values outside the fitted range extrapolate
    linearly (no clipping), which online quantizers rely on to notice
    out-of-distribution queries.
    """

    def __init__(self) -> None:
        self.min_: Optional[np.ndarray] = None
        self.range_: Optional[np.ndarray] = None

    def fit(self, x) -> "MinMaxScaler":
        x = require_matrix(x, "x")
        self.min_ = x.min(axis=0)
        span = x.max(axis=0) - self.min_
        span[span == 0.0] = 1.0
        self.range_ = span
        return self

    def transform(self, x) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise NotTrainedError("MinMaxScaler.transform called before fit")
        x = require_matrix(x, "x", n_cols=self.min_.shape[0])
        return (x - self.min_) / self.range_

    def fit_transform(self, x) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise NotTrainedError("MinMaxScaler.inverse_transform called before fit")
        x = require_matrix(x, "x", n_cols=self.min_.shape[0])
        return x * self.range_ + self.min_
