"""Unit tests for repro.engine: BDAS stack, resources, MapReduce, coordinator."""

import numpy as np
import pytest

from repro.common import CostMeter
from repro.cluster import ClusterTopology, DistributedStore
from repro.data import Table, uniform_table
from repro.engine import (
    BDASStack,
    CoordinatorEngine,
    MapReduceEngine,
    ResourceManager,
)
from repro.engine.bdas import agent_stack
from repro.engine.mapreduce import estimate_payload_bytes, stable_hash


@pytest.fixture
def cluster():
    topo = ClusterTopology.single_datacenter(4)
    store = DistributedStore(topo)
    store.put_table(uniform_table(1000, seed=0, name="t"), partitions_per_node=2)
    return store


class TestBDASStack:
    def test_depth_and_layers(self):
        stack = BDASStack()
        assert stack.depth == 5
        assert agent_stack().depth == 2

    def test_submission_charges_every_engaged_node(self):
        stack = BDASStack()
        meter = CostMeter()
        stack.charge_submission(meter, "driver", ["n1", "n2", "n3"])
        report = meter.freeze()
        assert report.nodes_touched == 4
        assert report.layers_crossed >= stack.depth + 3

    def test_deeper_stack_costs_more(self):
        shallow = BDASStack(layers=("client",))
        deep = BDASStack(layers=tuple(f"l{i}" for i in range(10)))
        m1, m2 = CostMeter(), CostMeter()
        t_shallow = shallow.charge_submission(m1, "d", ["n1"])
        t_deep = deep.charge_submission(m2, "d", ["n1"])
        assert t_deep > t_shallow


class TestResourceManager:
    def test_makespan_single_slot_is_sum(self):
        topo = ClusterTopology.single_datacenter(1)
        rm = ResourceManager(topo, slots_per_node=1)
        assert rm.makespan([1.0, 2.0, 3.0], n_slots=1) == pytest.approx(6.0)

    def test_makespan_parallel_slots(self):
        topo = ClusterTopology.single_datacenter(1)
        rm = ResourceManager(topo)
        assert rm.makespan([1.0] * 8, n_slots=8) == pytest.approx(1.0)
        assert rm.makespan([1.0] * 8, n_slots=4) == pytest.approx(2.0)

    def test_makespan_empty(self):
        rm = ResourceManager(ClusterTopology.single_datacenter(1))
        assert rm.makespan([]) == 0.0

    def test_makespan_lpt_reasonable(self):
        rm = ResourceManager(ClusterTopology.single_datacenter(1))
        # LPT on [3,3,2,2,2] with 2 slots assigns {3,2,2} and {3,2}: 7.
        # (Optimal is 6; LPT is within its 4/3 guarantee.)
        assert rm.makespan([3, 3, 2, 2, 2], n_slots=2) == pytest.approx(7.0)

    def test_makespan_per_node_is_worst_node(self):
        topo = ClusterTopology.single_datacenter(2)
        rm = ResourceManager(topo, slots_per_node=1)
        node_tasks = {"a": [1.0, 1.0], "b": [5.0]}
        assert rm.makespan_per_node(node_tasks) == pytest.approx(5.0)

    def test_negative_duration_rejected(self):
        rm = ResourceManager(ClusterTopology.single_datacenter(1))
        with pytest.raises(ValueError):
            rm.makespan([-1.0])

    def test_queueing_delay_zero_when_idle(self):
        rm = ResourceManager(ClusterTopology.single_datacenter(4))
        assert rm.queueing_delay(0, 1.0) == 0.0
        assert rm.queueing_delay(8, 1.0) > 0.0

    def test_total_slots(self):
        topo = ClusterTopology.single_datacenter(3)
        rm = ResourceManager(topo, slots_per_node=2)
        assert rm.total_slots() == 6


class TestMapReduce:
    def test_count_rows_job(self, cluster):
        engine = MapReduceEngine(cluster)
        results, report = engine.run(
            "t",
            map_fn=lambda part: [(0, part.n_rows)],
            reduce_fn=lambda key, values: sum(values),
            n_reducers=1,
        )
        assert results[0] == 1000
        assert report.tasks_launched >= 8  # one map task per partition

    def test_scans_entire_table(self, cluster):
        engine = MapReduceEngine(cluster)
        _, report = engine.run(
            "t", lambda p: [(0, 1)], lambda k, v: len(v), n_reducers=1
        )
        assert report.bytes_scanned == cluster.table("t").n_bytes
        assert report.nodes_touched == 4

    def test_grouped_keys_route_to_reducers(self, cluster):
        engine = MapReduceEngine(cluster)
        results, _ = engine.run(
            "t",
            map_fn=lambda part: [
                (int(v > 50.0), 1.0) for v in part["x0"]
            ],
            reduce_fn=lambda key, values: len(values),
            n_reducers=2,
        )
        assert results[0] + results[1] == 1000

    def test_elapsed_grows_with_data(self):
        topo = ClusterTopology.single_datacenter(4)
        store = DistributedStore(topo)
        store.put_table(uniform_table(1000, seed=1, name="small"))
        store.put_table(uniform_table(100000, seed=2, name="big"))
        engine = MapReduceEngine(store)
        _, small = engine.run("small", lambda p: [(0, 1)], lambda k, v: 1)
        _, big = engine.run("big", lambda p: [(0, 1)], lambda k, v: 1)
        assert big.elapsed_sec > small.elapsed_sec

    def test_stable_hash_deterministic(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash(1) != stable_hash(2)

    def test_estimate_payload_bytes(self):
        assert estimate_payload_bytes(1.0) == 8
        assert estimate_payload_bytes(np.zeros(10)) == 80
        assert estimate_payload_bytes("abcd") == 4
        assert estimate_payload_bytes([1.0, 2.0]) == 24
        table = Table({"a": np.zeros(4)})
        assert estimate_payload_bytes(table) == table.n_bytes


class TestCoordinator:
    def test_fetch_rows_returns_exact_rows(self, cluster):
        stored = cluster.table("t")
        engine = CoordinatorEngine(cluster)
        data, report = engine.fetch_rows(stored, {0: [0, 1], 2: [3]})
        assert data.n_rows == 3
        expected = stored.partitions[0].data.take([0, 1])
        assert np.allclose(data["x0"][:2], expected["x0"])

    def test_untouched_partitions_not_scanned(self, cluster):
        stored = cluster.table("t")
        engine = CoordinatorEngine(cluster)
        _, report = engine.fetch_rows(stored, {0: [0]})
        assert report.bytes_scanned == stored.partitions[0].data.row_bytes
        # Far fewer nodes than a full job.
        assert report.nodes_touched <= 2

    def test_empty_request_returns_empty_table(self, cluster):
        stored = cluster.table("t")
        engine = CoordinatorEngine(cluster)
        data, _ = engine.fetch_rows(stored, {})
        assert data.n_rows == 0
        assert data.column_names == stored.column_names

    def test_out_of_range_partition_rejected(self, cluster):
        stored = cluster.table("t")
        engine = CoordinatorEngine(cluster)
        with pytest.raises(Exception):
            engine.fetch_rows(stored, {99: [0]})

    def test_charge_stack_false_is_cheaper(self, cluster):
        stored = cluster.table("t")
        engine = CoordinatorEngine(cluster)
        _, with_stack = engine.fetch_rows(stored, {0: [0]})
        _, without = engine.fetch_rows(stored, {0: [0]}, charge_stack=False)
        assert without.elapsed_sec < with_stack.elapsed_sec

    def test_scatter_gather_parallel_elapsed(self, cluster):
        engine = CoordinatorEngine(cluster)
        nodes = cluster.topology.node_ids
        report = engine.scatter_gather(
            {n: 100 for n in nodes}, {n: 1000 for n in nodes}
        )
        assert report.messages == 2 * len(nodes)
        # Parallel: elapsed is one round trip, not the sum.
        single = engine.scatter_gather({nodes[0]: 100}, {nodes[0]: 1000})
        assert report.elapsed_sec < len(nodes) * single.elapsed_sec


class TestMapReduceEquivalenceProperty:
    """MapReduce partial/merge jobs must equal direct centralized compute."""

    @pytest.mark.parametrize("partitions_per_node", [1, 3])
    def test_aggregate_jobs_match_direct(self, partitions_per_node):
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from repro.queries import Count, Mean, Std, Sum

        topo = ClusterTopology.single_datacenter(3)
        store = DistributedStore(topo)
        table = uniform_table(997, seed=33, name="t")  # odd size: ragged splits
        store.put_table(table, partitions_per_node=partitions_per_node)
        engine = MapReduceEngine(store)
        for aggregate in (Count(), Sum("value"), Mean("value"), Std("value")):
            results, _ = engine.run(
                "t",
                map_fn=lambda part, agg=aggregate: [(0, agg.partial(part))],
                reduce_fn=lambda key, values, agg=aggregate: agg.merge(values),
                n_reducers=1,
            )
            direct = aggregate.compute(table)
            assert results[0] == pytest.approx(direct), aggregate.name

    def test_multi_key_grouping_sums_match(self):
        topo = ClusterTopology.single_datacenter(4)
        store = DistributedStore(topo)
        rng = np.random.default_rng(34)
        table = Table(
            {
                "group": rng.integers(0, 7, size=2000).astype(float),
                "value": rng.normal(size=2000),
            },
            name="g",
        )
        store.put_table(table, partitions_per_node=2)
        engine = MapReduceEngine(store)

        def map_fn(part):
            return [
                (int(g), float(v))
                for g, v in zip(part["group"], part["value"])
            ]

        results, _ = engine.run(
            "g", map_fn, lambda key, values: sum(values), n_reducers=3
        )
        for group in range(7):
            expected = table["value"][table["group"] == group].sum()
            assert results[group] == pytest.approx(expected)


class TestRatesInjection:
    def test_custom_rates_flow_through_engines(self):
        from repro.common import CostRates

        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        store.put_table(uniform_table(50_000, seed=40, name="t"))
        slow_disk = CostRates(disk_bytes_per_sec=1e6)
        fast = MapReduceEngine(store)
        slow = MapReduceEngine(store, rates=slow_disk)
        _, r_fast = fast.run("t", lambda p: [(0, 1)], lambda k, v: 1)
        _, r_slow = slow.run("t", lambda p: [(0, 1)], lambda k, v: 1)
        assert r_slow.elapsed_sec > r_fast.elapsed_sec * 2

    def test_coordinator_rates_injection(self):
        from repro.common import CostRates

        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        stored = store.put_table(uniform_table(5000, seed=41, name="t"))
        slow_lan = CostRates(lan_rtt_sec=0.1)
        fast = CoordinatorEngine(store)
        slow = CoordinatorEngine(store, rates=slow_lan)
        _, r_fast = fast.fetch_rows(stored, {0: list(range(100))})
        _, r_slow = slow.fetch_rows(stored, {0: list(range(100))})
        assert r_slow.elapsed_sec > r_fast.elapsed_sec * 2
