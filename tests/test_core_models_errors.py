"""Unit tests for repro.core.answer_models and repro.core.error."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, NotTrainedError
from repro.core import AnswerModelFactory, PrequentialErrorEstimator, QuantumModel
from repro.core.answer_models import FAMILIES


class TestAnswerModelFactory:
    def test_all_families_buildable(self):
        for family in FAMILIES:
            model = AnswerModelFactory(family).build()
            x = np.random.default_rng(0).normal(size=(20, 2))
            y = x[:, 0] * 2
            model.fit(x, y)
            assert np.all(np.isfinite(model.predict(x)))

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            AnswerModelFactory("transformer")

    def test_min_samples_ordering(self):
        mins = {f: AnswerModelFactory(f).min_samples() for f in FAMILIES}
        assert mins["mean"] <= mins["linear"] <= mins["quadratic"]

    def test_mean_model_predicts_mean(self):
        model = AnswerModelFactory("mean").build()
        model.fit(np.zeros((3, 1)), [1.0, 2.0, 3.0])
        assert model.predict([[0.0]])[0] == pytest.approx(2.0)

    def test_quadratic_beats_linear_on_curvature(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-2, 2, size=(100, 1))
        y = x[:, 0] ** 2
        lin = AnswerModelFactory("linear").build()
        quad = AnswerModelFactory("quadratic").build()
        lin.fit(x, y)
        quad.fit(x, y)
        lin_err = np.abs(lin.predict(x) - y).mean()
        quad_err = np.abs(quad.predict(x) - y).mean()
        assert quad_err < lin_err / 10


class TestQuantumModel:
    def factory(self):
        return AnswerModelFactory("linear")

    def test_not_trained_until_min_samples(self):
        model = QuantumModel(self.factory())
        model.add([0.0, 0.0], 1.0)
        assert not model.is_trained
        with pytest.raises(NotTrainedError):
            model.predict([0.0, 0.0])

    def test_trains_and_predicts_linear_map(self):
        model = QuantumModel(self.factory())
        rng = np.random.default_rng(2)
        for _ in range(30):
            v = rng.normal(size=2)
            model.add(v, 3.0 * v[0] - v[1] + 1.0)
        pred = model.predict([1.0, 1.0])
        assert pred[0] == pytest.approx(3.0, abs=0.15)

    def test_vector_answers(self):
        model = QuantumModel(self.factory(), answer_dim=2)
        rng = np.random.default_rng(3)
        for _ in range(20):
            v = rng.normal(size=2)
            model.add(v, [v[0], -v[1]])
        pred = model.predict([2.0, 3.0])
        assert pred.shape == (2,)
        assert pred[0] == pytest.approx(2.0, abs=0.15)
        assert pred[1] == pytest.approx(-3.0, abs=0.15)

    def test_answer_dim_mismatch_rejected(self):
        model = QuantumModel(self.factory(), answer_dim=2)
        with pytest.raises(ConfigurationError):
            model.add([0.0], 1.0)

    def test_buffer_bounded(self):
        model = QuantumModel(self.factory(), max_buffer=16)
        for i in range(100):
            model.add([float(i)], float(i))
        assert model.n_samples == 16

    def test_reset_clears_state(self):
        model = QuantumModel(self.factory())
        for i in range(10):
            model.add([float(i)], float(i))
        model.reset()
        assert model.n_samples == 0
        assert not model.is_trained

    def test_refit_is_lazy(self):
        model = QuantumModel(self.factory())
        for i in range(10):
            model.add([float(i)], 2.0 * i)
        model.predict([0.0])
        assert not model._dirty
        model.add([99.0], 198.0)
        assert model._dirty

    def test_decay_rate_prefers_recent_samples(self):
        model = QuantumModel(self.factory(), max_buffer=512)
        # Old regime: y = x; new regime: y = 10x.
        for i in range(50):
            model.add([float(i % 5)], float(i % 5))
        for i in range(50):
            model.add([float(i % 5)], 10.0 * (i % 5))
        model.decay_rate = 0.2
        aged = model.predict([4.0])[0]
        model.decay_rate = 0.0
        model._dirty = True
        flat = model.predict([4.0])[0]
        assert aged > flat  # aged fit leans toward the recent regime

    def test_state_bytes_grows_with_buffer(self):
        model = QuantumModel(self.factory())
        model.add([0.0, 0.0], 1.0)
        small = model.state_bytes()
        for i in range(20):
            model.add([float(i), 0.0], 1.0)
        assert model.state_bytes() > small


class TestPrequentialErrorEstimator:
    def test_no_estimate_until_min_observations(self):
        est = PrequentialErrorEstimator(min_observations=5)
        for _ in range(4):
            est.record(0, 1.0, 1.0)
        assert est.estimate(0) is None
        est.record(0, 1.0, 1.0)
        assert est.estimate(0) == pytest.approx(0.0)

    def test_estimate_is_quantile_of_relative_errors(self):
        est = PrequentialErrorEstimator(quantile=0.5, min_observations=3)
        est.record(0, 90.0, 100.0)   # rel err 0.1
        est.record(0, 80.0, 100.0)   # 0.2
        est.record(0, 70.0, 100.0)   # 0.3
        assert est.estimate(0) == pytest.approx(0.2)

    def test_relative_floor_guards_small_answers(self):
        est = PrequentialErrorEstimator(relative_floor=10.0)
        rel = est.record(0, 5.0, 0.0)
        assert rel == pytest.approx(0.5)

    def test_window_bounds_memory_and_adapts(self):
        est = PrequentialErrorEstimator(window=8, min_observations=3)
        for _ in range(20):
            est.record(0, 0.0, 100.0)  # terrible
        for _ in range(8):
            est.record(0, 100.0, 100.0)  # perfect, fills window
        assert est.estimate(0) == pytest.approx(0.0)

    def test_per_quantum_isolation(self):
        est = PrequentialErrorEstimator(min_observations=1)
        est.record(0, 100.0, 100.0)
        est.record(1, 0.0, 100.0)
        assert est.estimate(0) == pytest.approx(0.0)
        assert est.estimate(1) == pytest.approx(1.0)

    def test_vector_answers_use_norms(self):
        est = PrequentialErrorEstimator(min_observations=1)
        rel = est.record(0, np.array([3.0, 0.0]), np.array([0.0, 4.0]))
        assert rel == pytest.approx(np.sqrt(9 + 16) / 4.0)

    def test_forget_clears_history(self):
        est = PrequentialErrorEstimator(min_observations=1)
        est.record(0, 1.0, 1.0)
        est.forget(0)
        assert est.estimate(0) is None
        assert est.n_observations(0) == 0

    def test_recent_vs_historical_mean(self):
        est = PrequentialErrorEstimator(window=64, min_observations=1)
        for _ in range(20):
            est.record(0, 100.0, 100.0)
        for _ in range(4):
            est.record(0, 0.0, 100.0)
        assert est.recent_mean(0, last=4) == pytest.approx(1.0)
        assert est.historical_mean(0) < 0.5

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ConfigurationError):
            PrequentialErrorEstimator(quantile=0.3)
