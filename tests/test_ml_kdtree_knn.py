"""Unit + property tests for repro.ml.kdtree and repro.ml.knn."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.common.errors import ConfigurationError, NotTrainedError
from repro.ml import KDTree, KNeighborsClassifier, KNeighborsRegressor


def brute_knn(points, q, k):
    diff = points - q
    dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    idx = np.argsort(dist)[:k]
    return dist[idx], idx


finite_points = hnp.arrays(
    dtype=float,
    shape=st.tuples(
        st.integers(min_value=1, max_value=80), st.integers(min_value=1, max_value=4)
    ),
    elements=st.floats(-1e3, 1e3, allow_nan=False),
)


class TestKDTree:
    def test_query_matches_brute_force(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(300, 3))
        tree = KDTree(points)
        for q in rng.normal(size=(20, 3)):
            d_tree, i_tree = tree.query(q, k=5)
            d_bf, _ = brute_knn(points, q, 5)
            assert np.allclose(np.sort(d_tree), d_bf)

    def test_k_clipped_to_population(self):
        tree = KDTree(np.array([[0.0], [1.0]]))
        dists, idx = tree.query([0.5], k=10)
        assert len(idx) == 2

    def test_query_radius_matches_brute_force(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(0, 10, size=(500, 2))
        tree = KDTree(points)
        q = np.array([5.0, 5.0])
        hits = tree.query_radius(q, 1.5)
        diff = points - q
        expected = np.flatnonzero(np.einsum("ij,ij->i", diff, diff) <= 1.5**2)
        assert np.array_equal(hits, expected)

    def test_query_box_matches_brute_force(self):
        rng = np.random.default_rng(2)
        points = rng.uniform(0, 10, size=(400, 2))
        tree = KDTree(points)
        hits = tree.query_box([2.0, 3.0], [4.0, 6.0])
        inside = np.all((points >= [2, 3]) & (points <= [4, 6]), axis=1)
        assert np.array_equal(hits, np.flatnonzero(inside))

    def test_identical_points(self):
        tree = KDTree(np.zeros((100, 2)))
        dists, idx = tree.query([0.0, 0.0], k=3)
        assert np.allclose(dists, 0.0)
        assert len(set(idx.tolist())) == 3

    def test_wrong_dimension_query_rejected(self):
        tree = KDTree(np.zeros((10, 2)))
        with pytest.raises(ConfigurationError):
            tree.query([0.0, 0.0, 0.0])

    def test_negative_radius_rejected(self):
        tree = KDTree(np.zeros((10, 2)))
        with pytest.raises(ConfigurationError):
            tree.query_radius([0.0, 0.0], -1.0)

    @given(finite_points, st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_nearest_distances_match_brute_force_property(self, points, k):
        tree = KDTree(points)
        q = points[0] + 0.5
        d_tree, _ = tree.query(q, k=min(k, len(points)))
        d_bf, _ = brute_knn(points, q, min(k, len(points)))
        assert np.allclose(np.sort(d_tree), np.sort(d_bf), rtol=1e-9, atol=1e-9)

    @given(finite_points, st.floats(0.0, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_radius_search_is_exact_property(self, points, radius):
        tree = KDTree(points)
        q = points[len(points) // 2]
        hits = set(tree.query_radius(q, radius).tolist())
        diff = points - q
        dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        expected = set(np.flatnonzero(dist <= radius).tolist())
        assert hits == expected


class TestKNNRegressor:
    def test_exact_match_returns_training_target(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([10.0, 20.0, 30.0])
        model = KNeighborsRegressor(n_neighbors=1).fit(x, y)
        assert model.predict([[1.0]])[0] == pytest.approx(20.0)

    def test_uniform_weights_average(self):
        x = np.array([[0.0], [2.0]])
        y = np.array([0.0, 10.0])
        model = KNeighborsRegressor(n_neighbors=2).fit(x, y)
        assert model.predict([[1.0]])[0] == pytest.approx(5.0)

    def test_distance_weights_favor_closer(self):
        x = np.array([[0.0], [10.0]])
        y = np.array([0.0, 10.0])
        model = KNeighborsRegressor(n_neighbors=2, weights="distance").fit(x, y)
        assert model.predict([[1.0]])[0] < 5.0

    def test_distance_weight_exact_match_dominates(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([7.0, 100.0])
        model = KNeighborsRegressor(n_neighbors=2, weights="distance").fit(x, y)
        assert model.predict([[0.0]])[0] == pytest.approx(7.0)

    def test_large_data_uses_tree_and_agrees_with_small(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(500, 2))
        y = x[:, 0] * 2
        big = KNeighborsRegressor(n_neighbors=3).fit(x, y)
        small = KNeighborsRegressor(n_neighbors=3).fit(x[:50], y[:50])
        assert big._tree is not None
        assert small._tree is None
        probe = np.array([[0.1, 0.2]])
        d_big, i_big = big._neighbors(probe[0])
        d_bf, i_bf = brute_knn(x, probe[0], 3)
        assert np.allclose(np.sort(d_big), d_bf)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotTrainedError):
            KNeighborsRegressor().predict([[0.0]])

    def test_invalid_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            KNeighborsRegressor(weights="gaussian")


class TestKNNClassifier:
    def test_majority_vote(self):
        x = np.array([[0.0], [0.1], [0.2], [5.0]])
        y = np.array(["a", "a", "a", "b"])
        model = KNeighborsClassifier(n_neighbors=3).fit(x, y)
        assert model.predict([[0.05]])[0] == "a"

    def test_distance_weighted_vote_breaks_ties(self):
        x = np.array([[0.0], [1.0]])
        y = np.array(["near", "far"])
        model = KNeighborsClassifier(n_neighbors=2, weights="distance").fit(x, y)
        assert model.predict([[0.1]])[0] == "near"

    def test_integer_labels_preserved(self):
        x = np.random.rand(20, 2)
        y = np.arange(20) % 2
        model = KNeighborsClassifier(n_neighbors=1).fit(x, y)
        assert model.predict(x[:3]).dtype == y.dtype
