"""Unit tests for repro.data.generators and repro.data.workload."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.data import (
    InterestProfile,
    WorkloadGenerator,
    gaussian_mixture_table,
    scored_relation,
    table_with_missing,
    train_test_split_queries,
    uniform_table,
)
from repro.queries import Mean, RadiusSelection, RangeSelection


class TestGenerators:
    def test_gaussian_mixture_shape_and_domain(self):
        t = gaussian_mixture_table(1000, dims=("a", "b", "c"), seed=0)
        assert t.n_rows == 1000
        assert set(t.column_names) == {"a", "b", "c", "value"}
        for dim in ("a", "b", "c"):
            assert t[dim].min() >= 0.0 and t[dim].max() <= 100.0

    def test_gaussian_mixture_deterministic(self):
        a = gaussian_mixture_table(100, seed=5)
        b = gaussian_mixture_table(100, seed=5)
        assert np.array_equal(a["x0"], b["x0"])

    def test_gaussian_mixture_is_clustered(self):
        # Compared to uniform, mixture data concentrates: the densest
        # decile cell should hold far more than 1/100 of the points.
        t = gaussian_mixture_table(5000, n_components=3, seed=1)
        hist, _, _ = np.histogram2d(t["x0"], t["x1"], bins=10)
        assert hist.max() > 3 * 5000 / 100

    def test_uniform_table(self):
        t = uniform_table(500, dims=("a",), seed=2, domain=(10.0, 20.0))
        assert t["a"].min() >= 10.0 and t["a"].max() <= 20.0

    def test_uniform_without_value_column(self):
        t = uniform_table(10, value_column=None, seed=0)
        assert "value" not in t.column_names

    def test_scored_relation_selectivity(self):
        t = scored_relation(10000, key_space=100, seed=3)
        assert t["key"].max() < 100
        assert 0.0 <= t["score"].min() and t["score"].max() <= 1.0
        # Expected matches per key ~ n/key_space.
        _, counts = np.unique(t["key"], return_counts=True)
        assert abs(counts.mean() - 100.0) < 10.0

    def test_score_skew_concentrates_low(self):
        skewed = scored_relation(10000, key_space=10, score_skew=4.0, seed=4)
        assert np.median(skewed["score"]) < 0.2

    def test_table_with_missing_rate_and_truth(self):
        base = uniform_table(2000, seed=5)
        t, truth = table_with_missing(base, ["value"], 0.1, seed=6)
        nan_rate = np.isnan(t["value"]).mean()
        assert 0.05 < nan_rate < 0.15
        # Truth preserves the original values.
        assert not np.any(np.isnan(truth["value"]))
        assert np.allclose(
            truth["value"][~np.isnan(t["value"])],
            t["value"][~np.isnan(t["value"])],
        )

    def test_table_with_missing_invalid_rate(self):
        base = uniform_table(10, seed=0)
        with pytest.raises(ConfigurationError):
            table_with_missing(base, ["value"], 1.5)


class TestInterestProfile:
    def test_random_profile_within_domain(self):
        p = InterestProfile.random(5, 2, domain=(0.0, 100.0), seed=0)
        assert p.hotspots.shape == (5, 2)
        assert p.hotspots.min() >= 0.0 and p.hotspots.max() <= 100.0

    def test_from_table_uses_data_points(self):
        t = uniform_table(100, seed=1)
        p = InterestProfile.from_table(t, ("x0", "x1"), 3, seed=2)
        pts = t.matrix(("x0", "x1"))
        for hotspot in p.hotspots:
            assert np.any(np.all(np.isclose(pts, hotspot), axis=1))

    def test_drifted_moves_hotspots(self):
        p = InterestProfile.random(4, 2, seed=3)
        moved = p.drifted(shift=10.0, seed=4)
        assert not np.allclose(moved.hotspots, p.hotspots)
        assert moved.hotspots.shape == p.hotspots.shape

    def test_drifted_replacement(self):
        p = InterestProfile.random(4, 2, seed=5)
        replaced = p.drifted(shift=0.001, seed=6, replace_fraction=0.5)
        jumps = np.linalg.norm(replaced.hotspots - p.hotspots, axis=1)
        assert (jumps > 1.0).sum() >= 1  # some hotspots jumped far

    def test_invalid_extent_range_rejected(self):
        with pytest.raises(ConfigurationError):
            InterestProfile(np.zeros((1, 2)), extent_range=(5.0, 1.0))


class TestWorkloadGenerator:
    def test_range_queries_concentrate_near_hotspots(self):
        profile = InterestProfile(
            np.array([[50.0, 50.0]]), hotspot_scale=1.0, extent_range=(1, 2)
        )
        wg = WorkloadGenerator("t", ("a", "b"), profile, seed=0)
        centers = np.array([q.selection.center for q in wg.batch(200)])
        assert np.all(np.abs(centers - 50.0) < 6.0)

    def test_radius_kind(self):
        profile = InterestProfile.random(2, 2, seed=1)
        wg = WorkloadGenerator("t", ("a", "b"), profile, kind="radius", seed=2)
        q = wg.next_query()
        assert isinstance(q.selection, RadiusSelection)

    def test_default_aggregate_is_count(self):
        profile = InterestProfile.random(1, 1, seed=3)
        wg = WorkloadGenerator("t", ("a",), profile, seed=4)
        assert wg.next_query().aggregate.name == "count"

    def test_custom_aggregate(self):
        profile = InterestProfile.random(1, 1, seed=5)
        wg = WorkloadGenerator("t", ("a",), profile, aggregate=Mean("v"), seed=6)
        assert wg.next_query().aggregate.name.startswith("mean")

    def test_dimension_mismatch_rejected(self):
        profile = InterestProfile.random(1, 2, seed=7)
        with pytest.raises(ConfigurationError):
            WorkloadGenerator("t", ("a",), profile)

    def test_extent_within_configured_range(self):
        profile = InterestProfile.random(1, 2, seed=8, extent_range=(2.0, 3.0))
        wg = WorkloadGenerator("t", ("a", "b"), profile, seed=9)
        for q in wg.batch(50):
            assert np.all(q.selection.half_widths >= 2.0)
            assert np.all(q.selection.half_widths <= 3.0)

    def test_with_profile_switches_hotspots(self):
        p1 = InterestProfile(np.array([[10.0, 10.0]]), hotspot_scale=0.5,
                             extent_range=(1, 2))
        p2 = InterestProfile(np.array([[90.0, 90.0]]), hotspot_scale=0.5,
                             extent_range=(1, 2))
        wg = WorkloadGenerator("t", ("a", "b"), p1, seed=10)
        drifted = wg.with_profile(p2)
        q = drifted.next_query()
        assert np.all(q.selection.center > 80.0)

    def test_stream_is_infinite_iterator(self):
        profile = InterestProfile.random(1, 1, seed=11)
        wg = WorkloadGenerator("t", ("a",), profile, seed=12)
        stream = wg.stream()
        assert next(stream).table_name == "t"


class TestTrainTestSplit:
    def test_split_sizes(self):
        profile = InterestProfile.random(1, 1, seed=13)
        wg = WorkloadGenerator("t", ("a",), profile, seed=14)
        queries = wg.batch(100)
        train, test = train_test_split_queries(queries, 0.7, seed=15)
        assert len(train) == 70 and len(test) == 30
        assert {id(q) for q in train} | {id(q) for q in test} == {
            id(q) for q in queries
        }

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            train_test_split_queries([], 1.5)
