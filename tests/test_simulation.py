"""Tests for the event-driven arrival simulators (repro.engine.simulation)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.engine import ClosedLoopSimulator, OpenLoopSimulator


class TestOpenLoop:
    def test_low_load_response_near_service_time(self):
        sim = OpenLoopSimulator.deterministic(n_servers=4, service_sec=0.1, seed=0)
        result = sim.run(arrival_rate=1.0, n_jobs=2000)
        assert result.mean_response == pytest.approx(0.1, rel=0.1)
        assert result.utilisation < 0.1

    def test_utilisation_matches_theory(self):
        # rho = lambda * s / c
        sim = OpenLoopSimulator.deterministic(n_servers=2, service_sec=0.1, seed=1)
        result = sim.run(arrival_rate=10.0, n_jobs=5000)
        assert result.utilisation == pytest.approx(0.5, abs=0.05)

    def test_response_time_blows_up_past_saturation(self):
        sim = OpenLoopSimulator.deterministic(n_servers=1, service_sec=0.1, seed=2)
        stable = sim.run(arrival_rate=5.0, n_jobs=3000).mean_response
        overloaded = OpenLoopSimulator.deterministic(
            n_servers=1, service_sec=0.1, seed=2
        ).run(arrival_rate=20.0, n_jobs=3000).mean_response
        assert overloaded > stable * 10

    def test_matches_mdc_approximation_moderate_load(self):
        """The analytic shortcut used by E3 agrees with the exact queue."""
        from repro.engine import mdc_response_time

        service, servers, rate = 0.2, 4, 10.0
        sim = OpenLoopSimulator.deterministic(servers, service, seed=3)
        simulated = sim.run(rate, n_jobs=20000).mean_response
        approx, _ = mdc_response_time(rate, service, servers)
        assert simulated == pytest.approx(approx, rel=0.5)

    def test_mixture_sampler(self):
        sim = OpenLoopSimulator.mixture(
            n_servers=2, demands=[0.001, 0.1], weights=[0.9, 0.1], seed=4
        )
        result = sim.run(arrival_rate=5.0, n_jobs=5000)
        expected_mean_service = 0.9 * 0.001 + 0.1 * 0.1
        assert result.mean_response == pytest.approx(
            expected_mean_service, rel=0.5
        )

    def test_throughput_equals_arrival_rate_when_stable(self):
        sim = OpenLoopSimulator.deterministic(n_servers=4, service_sec=0.05, seed=5)
        result = sim.run(arrival_rate=10.0, n_jobs=5000)
        assert result.throughput == pytest.approx(10.0, rel=0.1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            OpenLoopSimulator.deterministic(0, 0.1)
        sim = OpenLoopSimulator.deterministic(1, 0.1)
        with pytest.raises(ConfigurationError):
            sim.run(arrival_rate=0.0)


class TestClosedLoop:
    def test_all_queries_complete(self):
        sim = ClosedLoopSimulator(
            n_servers=2,
            service_sampler=lambda rng: 0.05,
            think_time_sec=0.5,
            seed=6,
        )
        result = sim.run(n_analysts=8, queries_per_analyst=20)
        assert result.completed == 8 * 20

    def test_more_analysts_raise_utilisation(self):
        def run(m):
            sim = ClosedLoopSimulator(
                n_servers=2,
                service_sampler=lambda rng: 0.1,
                think_time_sec=0.2,
                seed=7,
            )
            return sim.run(n_analysts=m, queries_per_analyst=30).utilisation

        assert run(16) > run(2)

    def test_fast_service_keeps_waits_negligible(self):
        sim = ClosedLoopSimulator(
            n_servers=4,
            service_sampler=lambda rng: 0.001,  # the data-less agent
            think_time_sec=0.1,
            seed=8,
        )
        result = sim.run(n_analysts=64, queries_per_analyst=20)
        assert result.mean_response < 0.01

    def test_slow_service_queues_large_populations(self):
        sim = ClosedLoopSimulator(
            n_servers=4,
            service_sampler=lambda rng: 0.15,  # the exact engine
            think_time_sec=0.1,
            seed=9,
        )
        result = sim.run(n_analysts=64, queries_per_analyst=20)
        assert result.waits.mean() > 0.1  # analysts visibly queue
