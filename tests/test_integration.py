"""End-to-end integration scenarios spanning multiple subsystems.

Each test tells one complete story from the paper: data placement ->
workload -> learned serving -> maintenance -> verification, crossing
cluster, engine, core, bigdataless and explain package boundaries.
"""

import numpy as np
import pytest

from repro import (
    AdHocMLEngine,
    AgentConfig,
    AnalyticsQuery,
    ClusterTopology,
    CoordinatorKNN,
    Count,
    DistributedGridIndex,
    DistributedStore,
    ExactEngine,
    ExplanationBuilder,
    InterestProfile,
    KNNBaseline,
    Mean,
    RangeSelection,
    SEAAgent,
    WorkloadGenerator,
    gaussian_mixture_table,
)
from repro.optimizer import ExecutionLog, LearnedSelector, TaskFeatures


@pytest.fixture(scope="module")
def world():
    topo = ClusterTopology.single_datacenter(6)
    store = DistributedStore(topo, replication=2)
    table = gaussian_mixture_table(
        30_000, dims=("x0", "x1"), seed=31, name="data"
    )
    store.put_table(table, partitions_per_node=2)
    return topo, store, table


class TestFullAnalystSession:
    """A full Fig.-2 session: train, serve, explain, update, recover."""

    def test_lifecycle(self, world):
        topo, store, table = world
        agent = SEAAgent(
            ExactEngine(store),
            AgentConfig(training_budget=300, error_threshold=0.25),
        )
        profile = InterestProfile.from_table(
            table, ("x0", "x1"), 3, seed=32, hotspot_scale=2.5,
            extent_range=(3, 8),
        )
        workload = WorkloadGenerator(
            "data", ("x0", "x1"), profile, aggregate=Count(), seed=33
        )

        # Phase 1: train + serve.
        for query in workload.batch(800):
            agent.submit(query)
        stats = agent.stats()
        assert stats["dataless_fraction"] > 0.05

        # Phase 2: an explanation built from the trained models.
        base = workload.next_query()
        explanation = ExplanationBuilder(
            n_probes=9, span=(0.7, 1.3)
        ).from_predictor(base, agent.predictor(base))
        assert explanation.cost.bytes_scanned == 0
        assert np.all(np.isfinite(explanation.answers))

        # Phase 3: base data changes; the agent is notified and recovers.
        hot = profile.hotspots[0]
        from repro.data import Table

        rng = np.random.default_rng(34)
        store.append_rows(
            "data",
            Table(
                {
                    "x0": rng.normal(hot[0], 2.0, size=5000),
                    "x1": rng.normal(hot[1], 2.0, size=5000),
                    "value": rng.normal(size=5000),
                },
                name="data",
            ),
        )
        invalidated = agent.notify_data_update("data", hot - 8, hot + 8)
        assert invalidated >= 1
        updated = store.table("data").full_table()
        late = [agent.submit(q) for q in workload.batch(400)]
        served = [r for r in late if r.mode == "predicted"]
        errors = [
            abs(r.answer - r.query.evaluate(updated))
            / max(r.query.evaluate(updated), 1.0)
            for r in served
        ]
        if errors:
            assert np.median(errors) < 0.3  # re-learned, not stale


class TestOperatorsShareOneIndex:
    """One grid index serves kNN, ad hoc ML and subspace gathering."""

    def test_shared_index(self, world):
        topo, store, table = world
        index = DistributedGridIndex(
            store, "data", ("x0", "x1"), cells_per_dim=24
        )
        index.build()

        # kNN through the index agrees with the full-scan baseline.
        point = table.matrix(("x0", "x1")).mean(axis=0)
        base, _ = KNNBaseline(store, ("x0", "x1")).query("data", point, 7)
        coord, _ = CoordinatorKNN(store, index).query("data", point, 7)
        assert np.allclose(
            np.sort(base.column("_dist")), np.sort(coord.column("_dist"))
        )

        # Ad hoc regression over an index-gathered subspace matches the
        # full-scan gather, and a learned selector routes between them.
        engine = AdHocMLEngine(store, index)
        selection = RangeSelection(("x0", "x1"), [30, 30], [70, 70])
        model_a, _ = engine.regress(
            "data", selection, ("x0", "x1"), "value", method="index"
        )
        model_b, _ = engine.regress(
            "data", selection, ("x0", "x1"), "value", method="fullscan"
        )
        assert np.allclose(model_a.coef_, model_b.coef_, atol=1e-9)

    def test_selector_trained_on_this_cluster_routes_sanely(self, world):
        topo, store, table = world
        index = DistributedGridIndex(
            store, "data", ("x0", "x1"), cells_per_dim=24
        )
        index.build()
        engine = AdHocMLEngine(store, index)
        rng = np.random.default_rng(35)
        log = ExecutionLog()
        for _ in range(40):
            width = float(10 ** rng.uniform(0.3, 2.0))
            lo = rng.uniform(0, max(0.1, 100 - width), size=2)
            selection = RangeSelection(
                ("x0", "x1"), lo, np.minimum(lo + width, 100)
            )
            selectivity = float(selection.mask(table).mean())
            _, full = engine.gather("data", selection, method="fullscan")
            _, idx = engine.gather("data", selection, method="index")
            log.record(
                TaskFeatures.for_subspace_aggregate(
                    table.n_rows, selectivity, 2, len(topo)
                ),
                {"mapreduce": full.elapsed_sec, "coordinator": idx.elapsed_sec},
            )
        selector = LearnedSelector(max_depth=4).fit(log)
        tiny = selector.choose(
            TaskFeatures.for_subspace_aggregate(table.n_rows, 1e-5, 2, len(topo))
        )
        assert tiny == "coordinator"


class TestMultiAggregateAgent:
    """One agent concurrently learns several query classes."""

    def test_parallel_learning(self, world):
        topo, store, table = world
        agent = SEAAgent(
            ExactEngine(store),
            AgentConfig(training_budget=10_000, error_threshold=0.2),
        )
        profile = InterestProfile.from_table(
            table, ("x0", "x1"), 2, seed=36, hotspot_scale=2.0,
            extent_range=(4, 9),
        )
        count_wl = WorkloadGenerator(
            "data", ("x0", "x1"), profile, aggregate=Count(), seed=37
        )
        mean_wl = WorkloadGenerator(
            "data", ("x0", "x1"), profile, aggregate=Mean("value"), seed=38
        )
        for count_query, mean_query in zip(count_wl.batch(200), mean_wl.batch(200)):
            agent.submit(count_query)
            agent.submit(mean_query)
        count_pred = agent.predictor(count_wl.next_query())
        mean_pred = agent.predictor(mean_wl.next_query())
        assert count_pred is not mean_pred
        assert count_pred.n_observed == 200
        assert mean_pred.n_observed == 200
        # Both can answer in their own units.
        q = count_wl.next_query()
        assert count_pred.predict(q.vector()).scalar > 1.0
        q = mean_wl.next_query()
        assert abs(mean_pred.predict(q.vector()).scalar) < 100.0


class TestZoomSessionsAreTheBestCase:
    """Drill-down sessions (maximal overlap) are where learned/cached
    systems shine — the workload property P2 leans on."""

    def test_agent_serves_zoom_tails_datalessly(self, world):
        topo, store, table = world
        from repro.data import InterestProfile

        agent = SEAAgent(
            ExactEngine(store),
            AgentConfig(training_budget=0, error_threshold=0.3,
                        warmup=16, n_quanta=4),
        )
        profile = InterestProfile.from_table(
            table, ("x0", "x1"), 1, seed=70, hotspot_scale=1.0,
            extent_range=(8, 10),
        )
        workload = WorkloadGenerator(
            "data", ("x0", "x1"), profile, aggregate=Count(), seed=71
        )
        served_late = 0
        for _ in range(60):
            session = workload.zoom_session(depth=4, shrink=0.8)
            for query in session:
                record = agent.submit(query)
                if record.mode == "predicted":
                    served_late += 1
        assert served_late > 0
        # Accuracy on the served answers stays within the loose gate.
        errors = []
        for record in agent.history:
            if record.mode == "predicted":
                truth = record.query.evaluate(table)
                errors.append(abs(record.answer - truth) / max(truth, 1.0))
        assert np.median(errors) < 0.3
