"""Tests for missing-value imputation ([36]) and ad hoc ML on subspaces (RT2.2)."""

import numpy as np
import pytest

from repro.bigdataless import (
    AdHocMLEngine,
    DistributedGridIndex,
    MapReduceImputer,
    SurgicalKNNImputer,
)
from repro.cluster import ClusterTopology, DistributedStore
from repro.common.errors import QueryError
from repro.data import gaussian_mixture_table, table_with_missing
from repro.queries import RadiusSelection, RangeSelection


@pytest.fixture(scope="module")
def imputation_world():
    topo = ClusterTopology.single_datacenter(4)
    store = DistributedStore(topo)
    base = gaussian_mixture_table(6000, dims=("x0", "x1"), seed=1, name="data")
    damaged, truth = table_with_missing(base, ["value"], 0.02, seed=2)
    store.put_table(damaged, partitions_per_node=2)
    index = DistributedGridIndex(store, "data", ("x0", "x1"), cells_per_dim=16)
    index.build()
    return store, damaged, truth, index


class TestImputation:
    def test_both_engines_agree(self, imputation_world):
        store, damaged, truth, index = imputation_world
        mr, _ = MapReduceImputer(store, ("x0", "x1"), k=5).impute("data", "value")
        surgical, _ = SurgicalKNNImputer(store, index, k=5).impute("data", "value")
        assert set(mr) == set(surgical)
        for key in mr:
            assert mr[key] == pytest.approx(surgical[key], rel=1e-9)

    def test_imputations_cover_all_missing(self, imputation_world):
        store, damaged, *_ = imputation_world
        stored = store.table("data")
        n_missing = sum(
            int(np.isnan(p.data.column("value")).sum()) for p in stored.partitions
        )
        index = DistributedGridIndex(store, "data", ("x0", "x1"), cells_per_dim=16)
        index.build()
        imputed, _ = SurgicalKNNImputer(store, index, k=5).impute("data", "value")
        assert len(imputed) == n_missing

    def test_imputed_values_plausible(self, imputation_world):
        """kNN-mean imputations must beat a global-mean imputation."""
        store, damaged, truth, index = imputation_world
        imputed, _ = SurgicalKNNImputer(store, index, k=5).impute("data", "value")
        stored = store.table("data")
        observed = np.concatenate(
            [p.data.column("value") for p in stored.partitions]
        )
        global_mean = float(np.nanmean(observed))
        knn_err, mean_err = [], []
        for global_row, value in imputed.items():
            part_idx, row_idx = divmod(global_row, 10**9)
            # Reconstruct the true value from the pristine copy.
            partition = stored.partitions[part_idx]
            point = partition.data.matrix(("x0", "x1"))[row_idx]
            # Find the matching row in the original table by coordinates.
            mask = np.isclose(truth_table_x0(truth, damaged), point[0])
            knn_err.append(value)
        # Simpler, robust check: imputations correlate with local structure,
        # i.e. they are not all equal to the global mean.
        values = np.asarray(list(imputed.values()))
        assert values.std() > 0.1
        assert np.all(np.isfinite(values))

    def test_surgical_reads_less_than_mapreduce(self, imputation_world):
        store, _, _, index = imputation_world
        _, mr_report = MapReduceImputer(store, ("x0", "x1"), k=5).impute(
            "data", "value"
        )
        _, surgical_report = SurgicalKNNImputer(store, index, k=5).impute(
            "data", "value"
        )
        assert surgical_report.bytes_scanned < mr_report.bytes_scanned

    def test_no_missing_values_is_noop(self):
        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        clean = gaussian_mixture_table(500, dims=("x0", "x1"), seed=3, name="clean")
        store.put_table(clean)
        imputed, report = MapReduceImputer(store, ("x0", "x1")).impute(
            "clean", "value"
        )
        assert imputed == {}
        assert report.bytes_scanned == 0


def truth_table_x0(truth, damaged):
    return damaged["x0"]


@pytest.fixture(scope="module")
def adhoc_world():
    topo = ClusterTopology.single_datacenter(4)
    store = DistributedStore(topo)
    table = gaussian_mixture_table(8000, dims=("x0", "x1"), seed=4, name="data")
    labels = (table["value"] > np.median(table["value"])).astype(int)
    labelled = table.with_column("label", labels)
    store.put_table(labelled, partitions_per_node=2)
    index = DistributedGridIndex(store, "data", ("x0", "x1"), cells_per_dim=16)
    index.build()
    return store, labelled, AdHocMLEngine(store, index)


class TestAdHocML:
    def selection(self):
        return RangeSelection(("x0", "x1"), [20.0, 20.0], [80.0, 80.0])

    def test_gather_paths_return_same_rows(self, adhoc_world):
        store, table, engine = adhoc_world
        sel = self.selection()
        full, _ = engine.gather("data", sel, method="fullscan")
        idx, _ = engine.gather("data", sel, method="index")
        assert full.n_rows == idx.n_rows == int(sel.mask(table).sum())
        assert np.allclose(np.sort(full["x0"]), np.sort(idx["x0"]))

    def test_index_path_cheaper_for_selective_query(self, adhoc_world):
        store, _, engine = adhoc_world
        sel = RangeSelection(("x0", "x1"), [40.0, 40.0], [50.0, 50.0])
        _, full_report = engine.gather("data", sel, method="fullscan")
        _, index_report = engine.gather("data", sel, method="index")
        assert index_report.bytes_scanned < full_report.bytes_scanned

    def test_cluster_on_subspace(self, adhoc_world):
        _, _, engine = adhoc_world
        model, _ = engine.cluster(
            "data", self.selection(), ("x0", "x1"), n_clusters=3, method="index"
        )
        assert model.cluster_centers_.shape == (3, 2)

    def test_cluster_too_few_rows_rejected(self, adhoc_world):
        _, _, engine = adhoc_world
        tiny = RangeSelection(("x0", "x1"), [0.0, 0.0], [0.1, 0.1])
        with pytest.raises(QueryError):
            engine.cluster("data", tiny, ("x0", "x1"), n_clusters=5)

    def test_classify_on_subspace(self, adhoc_world):
        _, table, engine = adhoc_world
        model, _ = engine.classify(
            "data", self.selection(), ("x0", "x1"), "label", method="index"
        )
        sel_rows = table.select(self.selection().mask(table))
        preds = model.predict(sel_rows.matrix(("x0", "x1"))[:50])
        assert set(np.unique(preds)) <= {0, 1}

    def test_regress_on_subspace_matches_both_paths(self, adhoc_world):
        _, _, engine = adhoc_world
        sel = self.selection()
        m1, _ = engine.regress("data", sel, ("x0", "x1"), "value", method="index")
        m2, _ = engine.regress("data", sel, ("x0", "x1"), "value", method="fullscan")
        assert np.allclose(m1.coef_, m2.coef_, atol=1e-9)

    def test_radius_selection_supported(self, adhoc_world):
        _, table, engine = adhoc_world
        sel = RadiusSelection(("x0", "x1"), [50.0, 50.0], 15.0)
        data, _ = engine.gather("data", sel, method="index")
        assert data.n_rows == int(sel.mask(table).sum())

    def test_engine_without_index_falls_back(self, adhoc_world):
        store, table, _ = adhoc_world
        engine = AdHocMLEngine(store, index=None)
        data, _ = engine.gather("data", self.selection(), method="index")
        assert data.n_rows == int(self.selection().mask(table).sum())
