"""Cross-module property-based invariants (hypothesis).

Each property pins an invariant two or more subsystems rely on jointly:
cost-report algebra, index-vs-bruteforce agreement, selection algebra,
and the exactness of the surgical operators under random inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import CostMeter, CostReport
from repro.cluster import ClusterTopology, DistributedStore
from repro.data import Table
from repro.queries import Count, RangeSelection, AnalyticsQuery


reports = st.builds(
    CostReport,
    elapsed_sec=st.floats(0, 100),
    node_sec=st.floats(0, 100),
    bytes_scanned=st.integers(0, 10**9),
    bytes_shipped_lan=st.integers(0, 10**9),
    bytes_shipped_wan=st.integers(0, 10**9),
    nodes_touched=st.integers(0, 64),
    tasks_launched=st.integers(0, 100),
    layers_crossed=st.integers(0, 100),
    rows_examined=st.integers(0, 10**6),
    messages=st.integers(0, 1000),
)


class TestCostReportAlgebra:
    @given(reports, reports)
    @settings(max_examples=50, deadline=None)
    def test_parallel_merge_is_commutative_in_totals(self, a, b):
        ab = a.merged_parallel(b)
        ba = b.merged_parallel(a)
        assert ab.as_dict() == ba.as_dict()

    @given(reports, reports, reports)
    @settings(max_examples=50, deadline=None)
    def test_sequential_merge_is_associative(self, a, b, c):
        left = a.merged_sequential(b).merged_sequential(c)
        right = a.merged_sequential(b.merged_sequential(c))
        assert left.as_dict() == pytest.approx(right.as_dict())

    @given(reports, reports)
    @settings(max_examples=50, deadline=None)
    def test_parallel_elapsed_never_exceeds_sequential(self, a, b):
        par = a.merged_parallel(b)
        seq = a.merged_sequential(b)
        assert par.elapsed_sec <= seq.elapsed_sec + 1e-12
        assert par.node_sec == pytest.approx(seq.node_sec)

    @given(reports)
    @settings(max_examples=30, deadline=None)
    def test_dollars_non_negative_and_monotone_in_wan(self, r):
        assert r.dollars() >= 0
        more_wan = CostReport(**{**r.as_dict(),
                                 "bytes_shipped_wan": r.bytes_shipped_wan + 10**9})
        assert more_wan.dollars() >= r.dollars()


points_tables = st.integers(50, 400).flatmap(
    lambda n: st.builds(
        lambda seed: _make_table(n, seed),
        st.integers(0, 10_000),
    )
)


def _make_table(n, seed):
    rng = np.random.default_rng(seed)
    return Table(
        {
            "x0": rng.uniform(0, 100, n),
            "x1": rng.uniform(0, 100, n),
            "value": rng.normal(size=n),
        },
        name="t",
    )


class TestIndexAgainstBruteForce:
    @given(
        st.integers(0, 5000),
        st.floats(5, 95),
        st.floats(5, 95),
        st.floats(1, 30),
    )
    @settings(max_examples=25, deadline=None)
    def test_grid_gather_equals_mask_count(self, seed, cx, cy, half):
        from repro.bigdataless import AdHocMLEngine, DistributedGridIndex

        table = _make_table(300, seed)
        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        store.put_table(table, partitions_per_node=2)
        index = DistributedGridIndex(store, "t", ("x0", "x1"), cells_per_dim=8)
        index.build()
        engine = AdHocMLEngine(store, index)
        selection = RangeSelection.around(
            ("x0", "x1"), [cx, cy], [half, half]
        )
        gathered, _ = engine.gather("t", selection, method="index")
        assert gathered.n_rows == int(selection.mask(table).sum())

    @given(st.integers(0, 5000), st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_coordinator_knn_matches_reference(self, seed, k):
        from repro.bigdataless import (
            CoordinatorKNN,
            DistributedGridIndex,
            knn_reference,
        )

        table = _make_table(250, seed)
        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        store.put_table(table, partitions_per_node=2)
        index = DistributedGridIndex(store, "t", ("x0", "x1"), cells_per_dim=6)
        index.build()
        rng = np.random.default_rng(seed + 1)
        q = rng.uniform(0, 100, size=2)
        result, _ = CoordinatorKNN(store, index).query("t", q, k)
        ref_idx = knn_reference(table, ("x0", "x1"), q, k)
        ref_dists = np.sort(
            np.linalg.norm(table.matrix(("x0", "x1"))[ref_idx] - q, axis=1)
        )
        assert np.allclose(np.sort(result.column("_dist")), ref_dists)


class TestSelectionAlgebra:
    @given(
        st.floats(0, 100), st.floats(0, 100),
        st.floats(0.1, 40), st.floats(0.1, 40),
        st.integers(0, 3000),
    )
    @settings(max_examples=40, deadline=None)
    def test_nested_ranges_select_subsets(self, cx, cy, big, shrink, seed):
        table = _make_table(200, seed)
        small = min(big, shrink)
        outer = RangeSelection.around(("x0", "x1"), [cx, cy], [big, big])
        inner = RangeSelection.around(("x0", "x1"), [cx, cy], [small, small])
        outer_mask = outer.mask(table)
        inner_mask = inner.mask(table)
        assert np.all(outer_mask | ~inner_mask)  # inner => outer

    @given(st.integers(0, 3000), st.floats(0.5, 30))
    @settings(max_examples=30, deadline=None)
    def test_radius_inside_its_bounding_box(self, seed, radius):
        from repro.queries import RadiusSelection

        table = _make_table(200, seed)
        sphere = RadiusSelection(("x0", "x1"), [50.0, 50.0], radius)
        lows, highs = sphere.bounding_box()
        box = RangeSelection(("x0", "x1"), lows, highs)
        sphere_mask = sphere.mask(table)
        box_mask = box.mask(table)
        assert np.all(box_mask | ~sphere_mask)  # sphere => box


class TestExactEngineProperty:
    @given(
        st.floats(5, 95), st.floats(5, 95), st.floats(0.5, 40),
        st.integers(0, 3000),
    )
    @settings(max_examples=15, deadline=None)
    def test_distributed_count_equals_local_count(self, cx, cy, half, seed):
        from repro.baselines import ExactEngine

        table = _make_table(300, seed)
        topo = ClusterTopology.single_datacenter(3)
        store = DistributedStore(topo)
        store.put_table(table, partitions_per_node=2)
        query = AnalyticsQuery(
            "t",
            RangeSelection.around(("x0", "x1"), [cx, cy], [half, half]),
            Count(),
        )
        answer, _ = ExactEngine(store).execute(query)
        assert answer == query.evaluate(table)


class TestCrackerSequenceProperty:
    @given(
        st.integers(0, 2000),
        st.lists(
            st.tuples(st.floats(0, 900), st.floats(1, 100)),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_cracking_exact_across_random_sequences(self, seed, queries):
        from repro.bigdataless import AdaptiveCrackingEngine, RawDataStore

        topo = ClusterTopology.single_datacenter(2)
        store = RawDataStore.synthetic(topo, 2000, seed=seed)
        engine = AdaptiveCrackingEngine(store)
        for lo, width in queries:
            hi = lo + width
            count, _ = engine.range_count(lo, hi)
            assert count == store.true_range_count(lo, hi)
